"""Tests for the benchmark harness utilities (table formatting, driver).

These run from the repository root (the benchmarks package lives beside
src/), matching how pytest and ``python -m benchmarks.run_all`` are
invoked per the README.
"""

from __future__ import annotations

import pytest

pytest.importorskip("benchmarks.common", reason="requires repo-root cwd")

from benchmarks.common import benchmark_split, format_table, records_and_ids
from benchmarks.run_all import EXPERIMENTS, main


class TestFormatTable:
    def test_alignment_and_float_formatting(self):
        rows = [
            {"name": "a", "value": 0.123456},
            {"name": "longer", "value": 2.0},
        ]
        text = format_table(rows, "demo")
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "0.123" in text
        assert "2.000" in text
        # Header and rows align on the same column start.
        assert lines[1].index("value") == lines[3].index("0.123")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], "empty")

    def test_missing_keys_render_as_none(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], "t")
        assert "None" not in text.splitlines()[1]  # header from first row only


class TestRunAllDriver:
    def test_registry_covers_all_experiments(self):
        ids = set(EXPERIMENTS)
        assert {f"e{i}" for i in range(1, 17)} <= ids
        assert {"a1", "a2", "a3"} <= ids

    def test_unknown_id_rejected(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_registered_modules_importable(self):
        import importlib

        for module_name, _ in EXPERIMENTS.values():
            module = importlib.import_module(f"benchmarks.{module_name}")
            assert hasattr(module, "run_experiment")


class TestCommonHelpers:
    def test_benchmark_split_shapes(self, small_benchmark):
        train, test_pairs, test_labels = benchmark_split(small_benchmark)
        assert len(test_pairs) == len(test_labels)
        assert all(len(t) == 3 for t in train)
        assert set(test_labels) <= {0, 1}

    def test_records_and_ids_aligned(self, small_benchmark):
        records_a, ids_a, records_b, ids_b = records_and_ids(small_benchmark)
        assert len(records_a) == len(ids_a) == small_benchmark.table_a.num_rows
        assert len(records_b) == len(ids_b) == small_benchmark.table_b.num_rows
        assert records_a[0][small_benchmark.id_column] == ids_a[0]
