"""Figure-4 heterogeneous-graph conversion tests."""

from __future__ import annotations

import pytest

from repro.data import FunctionalDependency, Table, cell_node, graph_statistics, table_to_graph


@pytest.fixture
def table_and_fds():
    table = Table(
        "emp",
        ["eid", "dept_id", "dept_name"],
        rows=[
            ["1", "10", "hr"],
            ["2", "20", "sales"],
            ["3", "10", "hr"],
        ],
    )
    fds = [FunctionalDependency(("dept_id",), "dept_name")]
    return table, fds


class TestTableToGraph:
    def test_nodes_are_unique_values(self, table_and_fds):
        table, fds = table_and_fds
        graph = table_to_graph(table, fds)
        # 3 eids + 2 dept_ids + 2 dept_names = 7 unique (column, value) nodes.
        assert graph.number_of_nodes() == 7
        assert graph.has_node(cell_node("dept_id", "10"))

    def test_cooccurrence_edges(self, table_and_fds):
        table, fds = table_and_fds
        graph = table_to_graph(table, fds)
        edge = graph[cell_node("eid", "1")][cell_node("dept_id", "10")]
        assert "cooccurrence" in edge["kinds"]

    def test_fd_edges_marked_and_weighted(self, table_and_fds):
        table, fds = table_and_fds
        graph = table_to_graph(table, fds, cooccurrence_weight=1.0, fd_weight=2.0)
        edge = graph[cell_node("dept_id", "10")][cell_node("dept_name", "hr")]
        assert "fd" in edge["kinds"]
        # 2 supporting tuples x (1.0 co-occurrence + 2.0 fd) = 6.0.
        assert edge["weight"] == pytest.approx(6.0)

    def test_repeated_cooccurrence_accumulates(self, table_and_fds):
        table, fds = table_and_fds
        graph = table_to_graph(table, [])
        edge = graph[cell_node("dept_id", "10")][cell_node("dept_name", "hr")]
        assert edge["weight"] == pytest.approx(2.0)

    def test_missing_values_skipped(self):
        table = Table("t", ["a", "b"], rows=[["x", None]])
        graph = table_to_graph(table)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0

    def test_fd_with_missing_lhs_skipped(self):
        table = Table("t", ["a", "b"], rows=[[None, "y"]])
        fds = [FunctionalDependency(("a",), "b")]
        graph = table_to_graph(table, fds)
        assert graph.number_of_edges() == 0

    def test_statistics(self, table_and_fds):
        table, fds = table_and_fds
        stats = graph_statistics(table_to_graph(table, fds))
        assert stats["nodes"] == 7
        assert 0.0 < stats["fd_edge_fraction"] <= 1.0
        assert stats["density"] > 0

    def test_statistics_empty_graph(self):
        import networkx as nx

        stats = graph_statistics(nx.Graph())
        assert stats["edges"] == 0.0
        assert stats["fd_edge_fraction"] == 0.0
