"""Type inference and missing-value semantics."""

from __future__ import annotations

import math

import pytest

from repro.data import ColumnType, coerce_numeric, infer_column_type, is_missing


class TestIsMissing:
    @pytest.mark.parametrize("value", [None, "", float("nan")])
    def test_missing_values(self, value):
        assert is_missing(value)

    @pytest.mark.parametrize("value", [0, 0.0, "0", " ", "x", False])
    def test_present_values(self, value):
        assert not is_missing(value)


class TestInference:
    def test_numeric(self):
        assert infer_column_type([1, 2.5, "3"]) == ColumnType.NUMERIC

    def test_numeric_with_missing(self):
        assert infer_column_type([1, None, 3]) == ColumnType.NUMERIC

    def test_categorical(self):
        assert infer_column_type(["red", "blue", "red"] * 5) == ColumnType.CATEGORICAL

    def test_id_like(self):
        values = [f"user_{i}" for i in range(20)]
        assert infer_column_type(values) == ColumnType.ID

    def test_text(self):
        values = ["the quick brown fox jumps", "over the lazy dog today"] * 3
        assert infer_column_type(values) == ColumnType.TEXT

    def test_all_missing_defaults_categorical(self):
        assert infer_column_type([None, None]) == ColumnType.CATEGORICAL

    def test_small_unique_not_id(self):
        # Few values: unique ratio 1.0 but too small to call ID.
        assert infer_column_type(["a", "b"]) == ColumnType.CATEGORICAL


class TestCoerceNumeric:
    def test_parses_strings(self):
        assert coerce_numeric("3.5") == 3.5

    def test_passes_numbers(self):
        assert coerce_numeric(2) == 2.0

    def test_missing_returns_none(self):
        assert coerce_numeric(None) is None
        assert coerce_numeric("") is None

    def test_unparseable_returns_none(self):
        assert coerce_numeric("abc") is None
