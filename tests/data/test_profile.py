"""Table-profiling tests."""

from __future__ import annotations

import pytest

from repro.data import (
    ColumnType,
    Table,
    World,
    find_candidate_keys,
    profile_column,
    profile_table,
)


@pytest.fixture
def sample_table():
    return Table(
        "sample",
        ["id", "color", "price"],
        rows=[
            ["1", "red", 10.0],
            ["2", "blue", 20.0],
            ["3", "red", 30.0],
            ["4", None, None],
        ],
    )


class TestColumnProfile:
    def test_missing_rate(self, sample_table):
        profile = profile_column(sample_table, "color")
        assert profile.missing_rate == 0.25

    def test_distinct_counts(self, sample_table):
        profile = profile_column(sample_table, "color")
        assert profile.distinct_count == 2
        assert profile.distinct_ratio == pytest.approx(2 / 3)

    def test_top_values_ordered(self, sample_table):
        profile = profile_column(sample_table, "color")
        assert profile.top_values[0] == ("red", 2)

    def test_numeric_stats(self, sample_table):
        profile = profile_column(sample_table, "price")
        assert profile.inferred_type == ColumnType.NUMERIC
        assert profile.minimum == 10.0
        assert profile.maximum == 30.0
        assert profile.mean == 20.0

    def test_categorical_has_no_numeric_stats(self, sample_table):
        profile = profile_column(sample_table, "color")
        assert profile.mean is None

    def test_key_like_flag(self, sample_table):
        assert profile_column(sample_table, "id").is_key_like
        assert not profile_column(sample_table, "color").is_key_like

    def test_constant_flag(self):
        table = Table("t", ["c"], rows=[["x"], ["x"], [None]])
        assert profile_column(table, "c").is_constant


class TestCandidateKeys:
    def test_single_column_key(self, sample_table):
        keys = find_candidate_keys(sample_table)
        assert ("id",) in keys

    def test_minimality(self, sample_table):
        keys = find_candidate_keys(sample_table, max_columns=2)
        assert all(len(k) == 1 or "id" not in k for k in keys)

    def test_composite_key(self):
        table = Table("t", ["a", "b"], rows=[
            ["1", "x"], ["1", "y"], ["2", "x"], ["2", "y"],
        ])
        keys = find_candidate_keys(table, max_columns=2)
        assert ("a", "b") in keys
        assert ("a",) not in keys

    def test_missing_rows_skipped(self):
        table = Table("t", ["a"], rows=[["1"], [None], ["2"]])
        assert ("a",) in find_candidate_keys(table)

    def test_no_keys_when_duplicated(self):
        table = Table("t", ["a"], rows=[["1"], ["1"]])
        assert find_candidate_keys(table) == []


class TestTableProfile:
    def test_full_profile(self, sample_table):
        profile = profile_table(sample_table)
        assert profile.num_rows == 4
        assert len(profile.columns) == 3
        assert profile.column("price").inferred_type == ColumnType.NUMERIC
        assert ("id",) in profile.candidate_keys

    def test_unknown_column_raises(self, sample_table):
        with pytest.raises(KeyError):
            profile_table(sample_table).column("ghost")

    def test_overall_missing_rate(self, sample_table):
        profile = profile_table(sample_table)
        assert profile.overall_missing_rate == pytest.approx((0 + 0.25 + 0.25) / 3)

    def test_summary_renders(self, sample_table):
        text = profile_table(sample_table).summary()
        assert "sample" in text
        assert "key-like" in text
        assert "candidate keys" in text

    def test_world_employee_profile(self):
        table, _ = World(0).employees_table(60)
        profile = profile_table(table)
        assert ("employee_id",) in profile.candidate_keys
        assert profile.column("department_id").distinct_count <= 6
