"""Approximate FD (g3 error) tests."""

from __future__ import annotations

import pytest

from repro.data import (
    ErrorGenerator,
    FunctionalDependency,
    Table,
    World,
    discover_approximate_fds,
    discover_fds,
    fd_error,
)


class TestFdError:
    def test_zero_when_holds(self):
        table = Table("t", ["a", "b"], rows=[["1", "x"], ["1", "x"], ["2", "y"]])
        assert fd_error(FunctionalDependency(("a",), "b"), table) == 0.0

    def test_counts_minority_rows(self):
        table = Table(
            "t", ["a", "b"],
            rows=[["1", "x"], ["1", "x"], ["1", "y"], ["2", "z"]],
        )
        # One of four participating rows must be removed.
        assert fd_error(FunctionalDependency(("a",), "b"), table) == 0.25

    def test_missing_rows_excluded(self):
        table = Table("t", ["a", "b"], rows=[["1", "x"], ["1", None], [None, "y"]])
        assert fd_error(FunctionalDependency(("a",), "b"), table) == 0.0

    def test_empty_table(self):
        assert fd_error(FunctionalDependency(("a",), "b"), Table("t", ["a", "b"])) == 0.0


class TestApproximateDiscovery:
    def test_survives_dirty_data_where_exact_fails(self):
        """The reason approximate discovery exists: a few injected FD
        violations kill exact discovery but not approximate."""
        table, fds = World(0).locations_table(150)
        dirty, _ = ErrorGenerator(rng=0).corrupt(
            table, fd_violation_rate=0.03, fds=fds
        )
        exact = discover_fds(dirty, max_lhs=1)
        assert fds[0] not in exact
        approx = discover_approximate_fds(dirty, max_error=0.1, max_lhs=1)
        assert any(fd == fds[0] for fd, _ in approx)

    def test_errors_reported_and_sorted(self):
        table = Table(
            "t", ["a", "b", "c"],
            rows=[["1", "x", "p"], ["1", "x", "q"], ["2", "y", "r"],
                  ["2", "y", "r"], ["3", "z", "s"], ["3", "z", "s"]],
        )
        found = discover_approximate_fds(table, max_error=0.5, max_lhs=1)
        errors = [e for _, e in found]
        assert errors == sorted(errors)
        by_fd = {str(fd): e for fd, e in found}
        assert by_fd.get("a -> b") == 0.0

    def test_max_error_zero_equals_exact(self):
        table, fds = World(1).locations_table(80)
        exact = set(map(str, discover_fds(table, max_lhs=1)))
        approx = {str(fd) for fd, _ in discover_approximate_fds(table, max_error=0.0, max_lhs=1)}
        assert exact == approx

    def test_minimality(self):
        table = Table(
            "t", ["a", "b", "c"],
            rows=[["1", "x", "p"], ["1", "y", "p"], ["2", "x", "q"], ["2", "y", "q"]],
        )
        found = discover_approximate_fds(table, max_error=0.0, max_lhs=2)
        lhs_for_c = [fd.lhs for fd, _ in found if fd.rhs == "c"]
        assert all(len(lhs) == 1 for lhs in lhs_for_c)
