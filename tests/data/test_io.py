"""CSV round-trip tests."""

from __future__ import annotations

import pytest

from repro.data import Table, read_csv, write_csv


class TestCSV:
    def test_roundtrip(self, tmp_path):
        table = Table("t", ["a", "b"], rows=[["1", "x"], ["2", None]])
        path = tmp_path / "out.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.columns == ["a", "b"]
        assert loaded.row(0) == ("1", "x")
        assert loaded.row(1) == ("2", None)

    def test_name_from_filename(self, tmp_path):
        table = Table("anything", ["a"], rows=[["1"]])
        path = tmp_path / "mydata.csv"
        write_csv(table, path)
        assert read_csv(path).name == "mydata"

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "x.csv"
        write_csv(Table("t", ["a"], rows=[["1"]]), path)
        assert read_csv(path, name="custom").name == "custom"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_short_rows_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,c\n1,2\n")
        table = read_csv(path)
        assert table.row(0) == ("1", "2", None)

    def test_values_with_commas_quoted(self, tmp_path):
        table = Table("t", ["name"], rows=[["doe, john"]])
        path = tmp_path / "quoted.csv"
        write_csv(table, path)
        assert read_csv(path).cell(0, "name") == "doe, john"
