"""BART-style error generator tests: every error logged, rates honoured."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ErrorGenerator,
    FunctionalDependency,
    Table,
    World,
    violation_rate,
)


@pytest.fixture
def clean_table():
    table, fds = World(0).locations_table(120)
    return table, fds


class TestErrorGenerator:
    def test_input_untouched(self, clean_table):
        table, _ = clean_table
        snapshot = table.copy()
        ErrorGenerator(rng=0).corrupt(table, typo_rate=0.2, null_rate=0.2)
        assert table.equals(snapshot)

    def test_every_reported_error_visible_in_table(self, clean_table):
        table, _ = clean_table
        dirty, report = ErrorGenerator(rng=0).corrupt(table, typo_rate=0.1, null_rate=0.1)
        for error in report.errors:
            assert dirty.cell(error.row, error.column) == error.corrupted
            assert error.original != error.corrupted

    def test_unreported_cells_unchanged(self, clean_table):
        table, _ = clean_table
        dirty, report = ErrorGenerator(rng=1).corrupt(table, typo_rate=0.1)
        dirty_cells = report.cells()
        for i in range(table.num_rows):
            for column in table.columns:
                if (i, column) not in dirty_cells:
                    assert dirty.cell(i, column) == table.cell(i, column)

    def test_null_rate_approximate(self, clean_table):
        table, _ = clean_table
        dirty, report = ErrorGenerator(rng=2).corrupt(table, null_rate=0.2)
        expected = 0.2 * table.num_rows * table.num_columns
        assert len(report.by_kind("null")) == pytest.approx(expected, rel=0.35)

    def test_fd_violations_increase_violation_rate(self, clean_table):
        table, fds = clean_table
        dirty, report = ErrorGenerator(rng=3).corrupt(
            table, fd_violation_rate=0.1, fds=fds
        )
        assert violation_rate(table, fds) == 0.0
        assert violation_rate(dirty, fds) > 0.0
        assert len(report.by_kind("fd_violation")) > 0

    def test_outliers_only_in_numeric_columns(self):
        table = Table("t", ["name", "value"], rows=[[f"n{i}", float(i)] for i in range(50)])
        dirty, report = ErrorGenerator(rng=4).corrupt(table, outlier_rate=0.2)
        assert report.errors
        assert all(e.column == "value" for e in report.errors)

    def test_outlier_magnitude(self):
        rng = np.random.default_rng(0)
        table = Table("t", ["x"], rows=[[float(v)] for v in rng.normal(0, 1, 100)])
        dirty, report = ErrorGenerator(rng=5).corrupt(table, outlier_rate=0.1, outlier_scale=10.0)
        for error in report.by_kind("outlier"):
            assert abs(error.corrupted - error.original) > 5.0

    def test_swaps_come_in_pairs(self, clean_table):
        table, _ = clean_table
        _, report = ErrorGenerator(rng=6).corrupt(table, swap_rate=0.05)
        assert len(report.by_kind("swap")) % 2 == 0

    def test_protected_columns_untouched(self, clean_table):
        table, _ = clean_table
        dirty, report = ErrorGenerator(rng=7).corrupt(
            table, typo_rate=0.3, null_rate=0.3, protected_columns={"person"}
        )
        assert all(e.column != "person" for e in report.errors)

    def test_invalid_rate_rejected(self, clean_table):
        table, _ = clean_table
        with pytest.raises(ValueError):
            ErrorGenerator().corrupt(table, typo_rate=1.5)

    def test_typos_skip_numeric_columns(self):
        table = Table("t", ["x"], rows=[[1.5], [2.5]])
        _, report = ErrorGenerator(rng=8).corrupt(table, typo_rate=0.9)
        assert len(report) == 0
