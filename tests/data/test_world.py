"""Synthetic world generator tests."""

from __future__ import annotations

import numpy as np

from repro.data import COUNTRIES, World


class TestWorld:
    def test_people_deterministic(self):
        a = World(0).people(20)
        b = World(0).people(20)
        assert [p.name for p in a] == [p.name for p in b]

    def test_people_have_valid_fields(self):
        for person in World(1).people(30):
            assert person.country in COUNTRIES
            assert len(person.name.split()) == 2
            assert person.person_id.isdigit()

    def test_employees_table_satisfies_fds(self):
        table, fds = World(2).employees_table(60)
        assert all(fd.holds(table) for fd in fds)
        assert table.num_rows == 60

    def test_locations_table_fd(self):
        table, fds = World(3).locations_table(50)
        assert fds[0].holds(table)
        for i in range(table.num_rows):
            country = table.cell(i, "country")
            assert table.cell(i, "capital") == COUNTRIES[country]

    def test_products_fields(self):
        products = World(4).products(25)
        assert len(products) == 25
        for product in products:
            assert product["brand"] in product["title"]
            assert 99 <= product["price"] <= 2499

    def test_restaurants_phone_format(self):
        for r in World(5).restaurants(20):
            area, mid, last = r["phone"].split("-")
            assert len(area) == 3 and len(mid) == 3 and len(last) == 4

    def test_citations_author_count(self):
        for c in World(6).citations(20):
            assert 1 <= len(c["authors"].split(",")) <= 3

    def test_corpus_sentences_nonempty(self):
        corpus = World(7).corpus(100)
        assert len(corpus) == 100
        assert all(len(sentence) > 2 for sentence in corpus)

    def test_corpus_contains_country_capital_facts(self):
        corpus = World(8).corpus(2000)
        text = " ".join(" ".join(s) for s in corpus)
        hits = sum(1 for c, cap in COUNTRIES.items() if c in text and cap in text)
        assert hits > len(COUNTRIES) // 2
