"""Perturbation primitive tests (with hypothesis invariants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import perturb


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestTypo:
    def test_short_strings_unchanged(self, rng):
        assert perturb.typo("a", rng) == "a"

    def test_changes_at_most_slightly(self, rng):
        value = "restaurant"
        for _ in range(20):
            out = perturb.typo(value, rng)
            assert abs(len(out) - len(value)) <= 1

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abcdefgh", min_size=2, max_size=15), st.integers(0, 1000))
    def test_length_invariant_property(self, value, seed):
        out = perturb.typo(value, np.random.default_rng(seed))
        assert abs(len(out) - len(value)) <= 1


class TestNameOps:
    def test_abbreviate(self, rng):
        out = perturb.abbreviate_name("john smith", rng)
        assert out in ("j smith", "j. smith")

    def test_abbreviate_single_token(self, rng):
        assert perturb.abbreviate_name("cher", rng) == "cher"

    def test_drop_token(self, rng):
        out = perturb.drop_token("a b c", rng)
        assert len(out.split()) == 2

    def test_drop_token_single(self, rng):
        assert perturb.drop_token("single", rng) == "single"

    def test_swap_tokens_preserves_set(self, rng):
        out = perturb.swap_tokens("a b c d", rng)
        assert sorted(out.split()) == ["a", "b", "c", "d"]

    def test_change_case_preserves_letters(self, rng):
        out = perturb.change_case("John Smith", rng)
        assert out.lower() == "john smith"


class TestNumericAndPhone:
    def test_jitter_within_bounds(self, rng):
        for _ in range(20):
            out = perturb.jitter_number(100.0, rng, relative=0.05)
            assert 94.9 <= out <= 105.1

    def test_reformat_phone_preserves_digits(self, rng):
        phone = "555-123-4567"
        for _ in range(10):
            out = perturb.reformat_phone(phone, rng)
            digits = "".join(ch for ch in out if ch.isdigit())
            assert digits == "5551234567"

    def test_reformat_short_phone_unchanged(self, rng):
        assert perturb.reformat_phone("123", rng) == "123"
