"""Table abstraction tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ColumnType, Table


@pytest.fixture
def employees():
    return Table(
        "employees",
        ["id", "name", "dept"],
        rows=[
            ["1", "john doe", "hr"],
            ["2", "jane doe", "marketing"],
            ["3", "john smith", "hr"],
        ],
    )


class TestConstruction:
    def test_basic_shape(self, employees):
        assert employees.num_rows == 3
        assert employees.num_columns == 3
        assert len(employees) == 3

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", ["a", "a"])

    def test_row_length_validation(self, employees):
        with pytest.raises(ValueError):
            employees.append(["4", "too short"])

    def test_from_records_missing_keys(self):
        table = Table.from_records("t", [{"a": 1}, {"b": 2}])
        assert table.columns == ["a", "b"]
        assert table.row(0) == (1, None)
        assert table.row(1) == (None, 2)


class TestAccess:
    def test_cell_and_row(self, employees):
        assert employees.cell(1, "name") == "jane doe"
        assert employees.row(0) == ("1", "john doe", "hr")
        assert employees.row_dict(2)["dept"] == "hr"

    def test_iter_rows(self, employees):
        assert len(list(employees.iter_rows())) == 3

    def test_set_cell(self, employees):
        employees.set_cell(0, "dept", "finance")
        assert employees.cell(0, "dept") == "finance"

    def test_column_type_inference_cached(self, employees):
        assert employees.column_type("id") in (ColumnType.NUMERIC, ColumnType.ID)
        employees.set_column_type("id", ColumnType.ID)
        assert employees.column_type("id") == ColumnType.ID

    def test_set_column_type_unknown_column(self, employees):
        with pytest.raises(KeyError):
            employees.set_column_type("salary", ColumnType.NUMERIC)


class TestRelationalOps:
    def test_project(self, employees):
        projected = employees.project(["name"])
        assert projected.columns == ["name"]
        assert projected.num_rows == 3

    def test_project_unknown_column(self, employees):
        with pytest.raises(KeyError):
            employees.project(["salary"])

    def test_select(self, employees):
        hr = employees.select(lambda r: r["dept"] == "hr")
        assert hr.num_rows == 2

    def test_take_reorders(self, employees):
        taken = employees.take([2, 0])
        assert taken.row(0)[0] == "3"
        assert taken.row(1)[0] == "1"

    def test_copy_is_independent(self, employees):
        clone = employees.copy()
        clone.set_cell(0, "name", "CHANGED")
        assert employees.cell(0, "name") == "john doe"

    def test_rename(self, employees):
        renamed = employees.rename({"dept": "department"})
        assert "department" in renamed.columns
        assert renamed.column("department") == employees.column("dept")

    def test_equals(self, employees):
        assert employees.equals(employees.copy())
        other = employees.copy()
        other.set_cell(0, "name", "x")
        assert not employees.equals(other)


class TestQualityStats:
    def test_missing_rate(self):
        table = Table("t", ["a", "b"], rows=[[1, None], [None, None]])
        assert table.missing_rate() == 0.75

    def test_missing_mask(self):
        table = Table("t", ["a"], rows=[[1], [None], [""]])
        assert [m[0] for m in table.missing_mask()] == [False, True, True]

    def test_distinct_values_order_and_dedup(self):
        table = Table("t", ["a"], rows=[["x"], ["y"], ["x"], [None]])
        assert table.distinct_values("a") == ["x", "y"]

    def test_value_counts(self):
        table = Table("t", ["a"], rows=[["x"], ["x"], ["y"], [None]])
        assert table.value_counts("a") == {"x": 2, "y": 1}


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-100, 100), st.sampled_from("abc")),
        min_size=1,
        max_size=20,
    )
)
def test_append_roundtrip_property(rows):
    table = Table("t", ["num", "cat"])
    for row in rows:
        table.append(list(row))
    assert table.num_rows == len(rows)
    for i, row in enumerate(rows):
        assert table.row(i) == row
