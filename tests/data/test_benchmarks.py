"""EM benchmark generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import citations_benchmark, products_benchmark, restaurants_benchmark


@pytest.fixture(scope="module")
def bench():
    return citations_benchmark(n_entities=100, rng=0)


class TestBenchmarkStructure:
    def test_tables_nonempty_and_overlapping(self, bench):
        assert bench.table_a.num_rows > 0
        assert bench.table_b.num_rows > 0
        assert len(bench.matches) > 0

    def test_match_ids_exist_in_tables(self, bench):
        ids_a = set(map(str, bench.table_a.column(bench.id_column)))
        ids_b = set(map(str, bench.table_b.column(bench.id_column)))
        for a, b in bench.matches:
            assert a in ids_a
            assert b in ids_b

    def test_b_side_ids_are_fresh(self, bench):
        ids_a = set(map(str, bench.table_a.column(bench.id_column)))
        ids_b = set(map(str, bench.table_b.column(bench.id_column)))
        assert not ids_a & ids_b

    def test_is_match(self, bench):
        a, b = sorted(bench.matches)[0]
        assert bench.is_match(a, b)
        assert not bench.is_match(a, "b9999")

    def test_record_lookup(self, bench):
        a, b = sorted(bench.matches)[0]
        assert bench.record_a(a)[bench.id_column] == a
        with pytest.raises(KeyError):
            bench.record_a("nonexistent")

    def test_deterministic(self):
        bench1 = citations_benchmark(n_entities=50, rng=3)
        bench2 = citations_benchmark(n_entities=50, rng=3)
        assert bench1.matches == bench2.matches
        assert bench1.table_b.equals(bench2.table_b)

    def test_matched_pairs_textually_similar(self, bench):
        """Dirty copies must still resemble their originals on average."""
        from repro.er import trigram_jaccard

        sims, mismatches = [], []
        for a, b in sorted(bench.matches)[:30]:
            ra, rb = bench.record_a(a), bench.record_b(b)
            if ra["title"] and rb["title"]:
                sims.append(trigram_jaccard(str(ra["title"]), str(rb["title"])))
        assert np.mean(sims) > 0.5


class TestLabeledPairs:
    def test_skew_ratio(self, bench):
        labeled = bench.labeled_pairs(negative_ratio=5, rng=0)
        positives = sum(label for _, _, label in labeled)
        negatives = len(labeled) - positives
        assert negatives == pytest.approx(5 * positives, rel=0.05)

    def test_n_positives_cap(self, bench):
        labeled = bench.labeled_pairs(n_positives=10, negative_ratio=2, rng=0)
        assert sum(label for _, _, label in labeled) == 10

    def test_negatives_are_not_matches(self, bench):
        labeled = bench.labeled_pairs(negative_ratio=3, rng=0)
        for a, b, label in labeled:
            if label == 0:
                assert not bench.is_match(a, b)

    def test_all_pairs_size(self, bench):
        assert len(bench.all_pairs()) == bench.table_a.num_rows * bench.table_b.num_rows


class TestOtherDomains:
    def test_products(self):
        bench = products_benchmark(n_entities=60, rng=1)
        assert "price" in bench.numeric_columns
        assert len(bench.matches) > 5

    def test_restaurants_phone_in_compare_columns(self):
        bench = restaurants_benchmark(n_entities=60, rng=1)
        assert "phone" in bench.compare_columns
        assert len(bench.matches) > 5

    def test_noise_zero_produces_identical_text(self):
        bench = citations_benchmark(n_entities=40, noise=0.0, null_rate=0.0, rng=2)
        for a, b in sorted(bench.matches)[:10]:
            ra, rb = bench.record_a(a), bench.record_b(b)
            assert ra["title"] == rb["title"]
