"""Conditional FD and matching-dependency tests (§3.1 limitation 3)."""

from __future__ import annotations

import pytest

from repro.data import (
    ConditionalFunctionalDependency,
    MatchingDependency,
    Pattern,
    SimilarityClause,
    Table,
    cfd,
)
from repro.er import jaro_winkler, trigram_jaccard


@pytest.fixture
def addresses():
    return Table(
        "addr",
        ["country", "zip", "city"],
        rows=[
            ["uk", "ec1", "london"],
            ["uk", "ec1", "london"],
            ["uk", "m1", "manchester"],
            ["us", "10001", "new york"],
            ["us", "10001", "boston"],   # would violate zip->city, but only for uk
            ["uk", "m1", "leeds"],       # violates the UK-conditional FD
        ],
    )


class TestConditionalFD:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ConditionalFunctionalDependency((), "x")
        with pytest.raises(ValueError):
            cfd({"x": "_"}, "x")

    def test_str(self):
        dependency = cfd({"country": "uk", "zip": "_"}, "city")
        assert str(dependency) == "[country=uk, zip=_] -> city=_"

    def test_matched_rows_respect_condition(self, addresses):
        dependency = cfd({"country": "uk", "zip": "_"}, "city")
        assert dependency.matched_rows(addresses) == [0, 1, 2, 5]

    def test_conditional_scope(self, addresses):
        """The FD zip→city holds only where country='uk': the US conflict
        (rows 3, 4) is *not* a violation; the UK conflict (2, 5) is."""
        dependency = cfd({"country": "uk", "zip": "_"}, "city")
        assert dependency.violations(addresses) == [(2, 5)]
        assert not dependency.holds(addresses)

    def test_unconditional_wildcards_behave_like_fd(self, addresses):
        dependency = cfd({"country": "_", "zip": "_"}, "city")
        witnesses = dependency.violations(addresses)
        assert (3, 4) in witnesses
        assert (2, 5) in witnesses

    def test_constant_rhs(self):
        table = Table("t", ["plan", "support"], rows=[
            ["premium", "24x7"], ["premium", "weekdays"], ["basic", "weekdays"],
        ])
        dependency = cfd({"plan": "premium"}, "support", "24x7")
        assert dependency.violations(table) == [(1,)]

    def test_constant_rhs_holds(self):
        table = Table("t", ["plan", "support"], rows=[
            ["premium", "24x7"], ["basic", "weekdays"],
        ])
        assert cfd({"plan": "premium"}, "support", "24x7").holds(table)

    def test_missing_values_never_match(self):
        table = Table("t", ["a", "b"], rows=[[None, "x"], ["1", None]])
        dependency = cfd({"a": "_"}, "b")
        assert dependency.matched_rows(table) == []

    def test_pattern_matching(self):
        assert Pattern("c", "_").matches("anything")
        assert Pattern("c", "UK").matches("uk")
        assert not Pattern("c", "uk").matches("us")
        assert not Pattern("c", "_").matches(None)


class TestMatchingDependency:
    @pytest.fixture
    def md(self):
        return MatchingDependency(
            clauses=(
                SimilarityClause("name", jaro_winkler, 0.85),
                SimilarityClause("city", trigram_jaccard, 0.5),
            ),
            rhs_column="phone",
        )

    @pytest.fixture
    def two_tables(self):
        table_a = Table("a", ["name", "city", "phone"], rows=[
            ["john smith", "paris", "555-1234"],
            ["maria garcia", "rome", "555-9999"],
        ])
        table_b = Table("b", ["name", "city", "phone"], rows=[
            ["jon smith", "paris", "555-1234"],       # matches row 0, identified
            ["maria garcia", "rome", "111-0000"],     # matches row 1, conflicting
            ["peter king", "oslo", "222-0000"],       # no match
        ])
        return table_a, table_b

    def test_requires_clauses(self):
        with pytest.raises(ValueError):
            MatchingDependency((), "x")

    def test_implied_matches(self, md, two_tables):
        table_a, table_b = two_tables
        assert md.implied_matches(table_a, table_b) == [(0, 0), (1, 1)]

    def test_violations_only_unidentified(self, md, two_tables):
        table_a, table_b = two_tables
        assert md.violations(table_a, table_b) == [(1, 1)]

    def test_enforce_identifies_values(self, md, two_tables):
        table_a, table_b = two_tables
        out_a, out_b, changed = md.enforce(table_a, table_b)
        assert changed >= 1
        assert out_a.cell(1, "phone") == out_b.cell(1, "phone")
        assert not md.violations(out_a, out_b)

    def test_enforce_leaves_inputs_untouched(self, md, two_tables):
        table_a, table_b = two_tables
        md.enforce(table_a, table_b)
        assert table_b.cell(1, "phone") == "111-0000"

    def test_missing_similarity_never_matches(self, md):
        table_a = Table("a", ["name", "city", "phone"], rows=[["x", None, "1"]])
        table_b = Table("b", ["name", "city", "phone"], rows=[["x", "paris", "1"]])
        assert md.implied_matches(table_a, table_b) == []

    def test_candidate_pairs_limit_scope(self, md, two_tables):
        table_a, table_b = two_tables
        assert md.implied_matches(table_a, table_b, candidate_pairs=[(0, 0)]) == [(0, 0)]

    def test_custom_choose(self, md, two_tables):
        table_a, table_b = two_tables
        out_a, out_b, _ = md.enforce(
            table_a, table_b, choose=lambda a, b: b
        )
        assert out_a.cell(1, "phone") == "111-0000"
