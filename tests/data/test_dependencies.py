"""Functional-dependency tests: declaration, violations, discovery."""

from __future__ import annotations

import pytest

from repro.data import FunctionalDependency, Table, discover_fds, violation_rate


@pytest.fixture
def figure4_table():
    """The paper's Figure-4 employee table (with its FD2 violation)."""
    return Table(
        "employees",
        ["employee_id", "employee_name", "department_id", "department_name"],
        rows=[
            ["0001", "John Doe", "1", "Human Resources"],
            ["0002", "Jane Doe", "2", "Marketing"],
            ["0003", "John Smith", "1", "Human Resources"],
            ["0004", "John Doe", "1", "Finance"],  # violates dept_id -> dept_name
        ],
    )


class TestFunctionalDependency:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            FunctionalDependency((), "x")
        with pytest.raises(ValueError):
            FunctionalDependency(("x",), "x")

    def test_str(self):
        fd = FunctionalDependency(("a", "b"), "c")
        assert str(fd) == "a, b -> c"

    def test_holds_on_clean_fd(self, figure4_table):
        fd = FunctionalDependency(("employee_id",), "department_id")
        assert fd.holds(figure4_table)

    def test_violation_detected(self, figure4_table):
        fd = FunctionalDependency(("department_id",), "department_name")
        violations = fd.violations(figure4_table)
        assert (0, 3) in violations
        assert (2, 3) in violations
        assert (0, 2) not in violations  # both Human Resources

    def test_violating_rows(self, figure4_table):
        fd = FunctionalDependency(("department_id",), "department_name")
        assert fd.violating_rows(figure4_table) == {0, 2, 3}

    def test_missing_values_never_witness(self):
        table = Table("t", ["a", "b"], rows=[["1", "x"], ["1", None], [None, "y"]])
        fd = FunctionalDependency(("a",), "b")
        assert fd.holds(table)

    def test_multi_attribute_lhs(self):
        table = Table(
            "t", ["a", "b", "c"],
            rows=[["1", "1", "x"], ["1", "2", "y"], ["1", "1", "x"]],
        )
        assert FunctionalDependency(("a", "b"), "c").holds(table)
        assert not FunctionalDependency(("a",), "c").holds(table)


class TestViolationRate:
    def test_zero_when_clean(self, figure4_table):
        fd = FunctionalDependency(("employee_id",), "department_id")
        assert violation_rate(figure4_table, [fd]) == 0.0

    def test_counts_involved_rows(self, figure4_table):
        fd = FunctionalDependency(("department_id",), "department_name")
        assert violation_rate(figure4_table, [fd]) == 0.75

    def test_empty_inputs(self):
        assert violation_rate(Table("t", ["a"]), []) == 0.0


class TestDiscovery:
    def test_finds_planted_fd(self):
        table = Table(
            "t", ["country", "capital", "city"],
            rows=[
                ["fr", "paris", "lyon"], ["fr", "paris", "nice"],
                ["de", "berlin", "bonn"], ["de", "berlin", "koeln"],
                ["it", "rome", "milan"], ["it", "rome", "turin"],
            ],
        )
        fds = discover_fds(table, max_lhs=1)
        assert FunctionalDependency(("country",), "capital") in fds

    def test_minimality(self):
        """If A -> C holds, A,B -> C must not also be reported."""
        table = Table(
            "t", ["a", "b", "c"],
            rows=[["1", "x", "p"], ["1", "y", "p"], ["2", "x", "q"], ["2", "y", "q"]],
        )
        fds = discover_fds(table, max_lhs=2)
        lhs_for_c = [fd.lhs for fd in fds if fd.rhs == "c"]
        assert ("a",) in lhs_for_c
        assert all(len(lhs) == 1 for lhs in lhs_for_c)

    def test_min_support_filters_vacuous(self):
        """Key-like LHS (all groups singletons) should not produce FDs."""
        table = Table("t", ["id", "x"], rows=[["1", "a"], ["2", "b"], ["3", "a"]])
        fds = discover_fds(table, max_lhs=1, min_support=1)
        assert FunctionalDependency(("id",), "x") not in fds

    def test_violated_fd_not_discovered(self):
        table = Table("t", ["a", "b"], rows=[["1", "x"], ["1", "y"], ["2", "z"]])
        assert discover_fds(table, max_lhs=1) == []
