"""Serving fault sites recover bit-identically under their wired budgets."""

from __future__ import annotations

import pytest

from repro.faults import Fault, FaultPlan, RetryExhausted
from repro.faults.sites import CORRUPT_SITES, LATENCY_ONLY_SITES, RETRY_SITES, all_sites
from repro.serve import MatchService


def answers_dicts(service, batch):
    return [a.to_dict() for a in service.match_batch(batch).answers]


class TestCatalog:
    def test_serve_sites_catalogued(self):
        assert "serve.score" in RETRY_SITES
        assert "serve.score" in CORRUPT_SITES
        assert "serve.cache.lookup" in LATENCY_ONLY_SITES
        assert {"serve.score", "serve.cache.lookup"} <= set(all_sites())

    def test_shard_sites_catalogued(self):
        """The scatter-gather layer's sites, with the documented split:
        routing is validated pure recompute (corrupt-safe); the per-shard
        call is failover-only — a corrupted return would be detected only
        after the primary warmed the shared cache tier, so corrupt chaos
        there would make cost rows drift (see repro.faults.sites)."""
        assert "serve.shard.route" in RETRY_SITES
        assert "serve.shard.query" in RETRY_SITES
        assert "serve.shard.route" in CORRUPT_SITES
        assert "serve.shard.query" not in CORRUPT_SITES



class TestScoreSite:
    def test_injected_error_recovers_bit_identical(
        self, trained_matcher, built_index, query_records
    ):
        batch = query_records[:6]
        baseline = answers_dicts(
            MatchService(trained_matcher, built_index, jobs=1), batch
        )
        with FaultPlan([Fault("serve.score", "error", hits=(0,))]) as plan:
            faulted = answers_dicts(
                MatchService(trained_matcher, built_index, jobs=1), batch
            )
        assert plan.ledger.count("error", "serve.score") == 1
        assert faulted == baseline

    def test_corrupted_return_detected_and_retried(
        self, trained_matcher, built_index, query_records
    ):
        batch = query_records[:6]
        baseline = answers_dicts(
            MatchService(trained_matcher, built_index, jobs=1), batch
        )
        with FaultPlan([Fault("serve.score", "corrupt", hits=(0,))]) as plan:
            faulted = answers_dicts(
                MatchService(trained_matcher, built_index, jobs=1), batch
            )
        assert plan.ledger.count("corrupt", "serve.score") == 1
        assert faulted == baseline

    def test_over_budget_fault_exhausts_loudly(
        self, trained_matcher, built_index, query_records
    ):
        service = MatchService(trained_matcher, built_index, jobs=1)
        # HOT_POLICY gives two attempts; two scheduled hits exceed them.
        with FaultPlan([Fault("serve.score", "error", hits=(0, 1))]):
            with pytest.raises(RetryExhausted) as excinfo:
                service.match_batch(query_records[:4])
        assert excinfo.value.site == "serve.score"


class TestCacheLookupSite:
    def test_latency_fault_is_simulated_and_harmless(
        self, trained_matcher, built_index, query_records
    ):
        batch = query_records[:5]
        baseline = answers_dicts(
            MatchService(trained_matcher, built_index, jobs=1), batch
        )
        plan = FaultPlan([
            Fault("serve.cache.lookup", "latency", hits=(0, 1), delay_seconds=0.02),
        ])
        with plan:
            service = MatchService(trained_matcher, built_index, jobs=1)
            first = answers_dicts(service, batch)
            second = answers_dicts(service, batch)
        assert plan.ledger.count("latency", "serve.cache.lookup") == 2
        assert plan.ledger.simulated_latency_seconds == pytest.approx(0.04)
        assert first == baseline
        assert second == baseline


class TestChaos:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_chaos_over_serve_sites_is_invisible(
        self, seed, trained_matcher, built_index, query_records
    ):
        batch = query_records[:6]
        baseline = answers_dicts(
            MatchService(trained_matcher, built_index, jobs=1), batch
        )
        plan = FaultPlan.chaos(seed, sites={"serve.score", "serve.cache.lookup"})
        with plan:
            faulted = answers_dicts(
                MatchService(trained_matcher, built_index, jobs=1), batch
            )
        assert faulted == baseline
