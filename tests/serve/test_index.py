"""BlockingIndex: build-once/probe-often semantics and determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import BlockingIndex


class TestBuild:
    def test_build_validates_lengths(self, trained_matcher):
        index = BlockingIndex(trained_matcher.embedder, rng=0)
        with pytest.raises(ValueError, match="length mismatch"):
            index.build([{"a": 1}], ["x", "y"])

    def test_build_rejects_empty(self, trained_matcher):
        with pytest.raises(ValueError, match="zero records"):
            BlockingIndex(trained_matcher.embedder, rng=0).build([], [])

    def test_probe_before_build_raises(self, trained_matcher):
        index = BlockingIndex(trained_matcher.embedder, rng=0)
        assert not index.built
        with pytest.raises(RuntimeError, match="not built"):
            index.candidates(np.zeros(trained_matcher.embedder.dim))

    def test_build_marks_built_and_len(self, built_index, reference_records):
        records, _ = reference_records
        assert built_index.built
        assert len(built_index) == len(records)

    def test_parallel_build_is_identical(self, trained_matcher, reference_records,
                                         query_records):
        records, ids = reference_records
        serial = BlockingIndex(
            trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
        ).build(records, ids, jobs=1)
        parallel = BlockingIndex(
            trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
        ).build(records, ids, jobs=2)
        queries = serial.embed_queries(query_records[:10], jobs=1)
        for embedding in queries:
            assert serial.candidates(embedding) == parallel.candidates(embedding)


class TestProbe:
    def test_candidates_sorted_and_known(self, built_index, query_records):
        embeddings = built_index.embed_queries(query_records[:20], jobs=1)
        any_candidates = False
        for embedding in embeddings:
            candidates = built_index.candidates(embedding)
            assert candidates == sorted(candidates)
            for candidate_id in candidates:
                assert built_index.record(candidate_id) is not None
            any_candidates = any_candidates or bool(candidates)
        assert any_candidates, "no query produced candidates; fixtures too sparse"

    def test_candidates_batch_invariant(self, built_index, query_records):
        """A query's candidate set must not depend on its batch-mates."""
        alone = built_index.embed_queries(query_records[:1], jobs=1)
        grouped = built_index.embed_queries(query_records[:7], jobs=1)
        assert np.array_equal(alone[0], grouped[0])
        assert built_index.candidates(alone[0]) == built_index.candidates(grouped[0])

    def test_reference_row_usually_among_own_candidates(
        self, built_index, reference_records
    ):
        """An indexed record queried verbatim should collide with itself."""
        records, ids = reference_records
        embeddings = built_index.embed_queries(records[:15], jobs=1)
        found = sum(
            str(ids[i]) in built_index.candidates(embeddings[i]) for i in range(15)
        )
        assert found >= 14  # identical signature ⇒ same bucket in every band

    def test_embed_queries_empty(self, built_index, trained_matcher):
        out = built_index.embed_queries([], jobs=1)
        assert out.shape == (0, trained_matcher.embedder.dim)

    def test_unknown_record_id_raises(self, built_index):
        with pytest.raises(KeyError):
            built_index.record("no-such-id")

    def test_rebuild_replaces_index(self, trained_matcher, reference_records):
        records, ids = reference_records
        index = BlockingIndex(
            trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
        ).build(records, ids, jobs=1)
        index.build(records[:5], ids[:5], jobs=1)
        assert len(index) == 5
        with pytest.raises(KeyError):
            index.record(str(ids[10]))
