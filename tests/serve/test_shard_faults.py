"""Replica failover under chaos: killed shards are invisible, loudly or not.

The fault tier for :class:`repro.serve.shard.ShardedMatchService`: an
injected error at ``serve.shard.query`` models a dead shard (the fault
fires at call entry — the shard never processed the request), and the
batch must fail over to the replica with **bit-identical** answers and
cache metrics, because replicas share the shard's cache tier.  Over
budget — every replica killed — the batch must fail *loudly*, raising
:class:`RetryExhausted` naming the exhausted site.  A regression class
pins chaos append stability: declaring the two new shard sites did not
perturb what pre-existing seeds (7 and 11 are wired into CI ``--chaos``
runs) schedule at the old sites.
"""

from __future__ import annotations

import pytest

from repro.faults import Fault, FaultPlan, RetryExhausted
from repro.faults.sites import CORRUPT_SITES, all_sites
from repro.obs.metrics import REGISTRY, collecting
from repro.serve import ShardedMatchService, shard_of_key
from repro.serve.cache import content_key

N_SHARDS = 4


def answers_dicts(service, batch):
    return [a.to_dict() for a in service.match_batch(batch).answers]


def fresh(trained_matcher, built_index, replicas=2):
    return ShardedMatchService(
        trained_matcher, built_index, n_shards=N_SHARDS, replicas=replicas
    )


@pytest.fixture(scope="module")
def batch(query_records):
    return query_records[:24]


@pytest.fixture(scope="module")
def baseline(trained_matcher, built_index, batch):
    return answers_dicts(fresh(trained_matcher, built_index), batch)


def consult_hit_of_shard(batch, shard_id: int) -> int:
    """The ``serve.shard.query`` hit index that kills ``shard_id``'s
    primary in the candidate/score-consult stage of the first batch.

    Per-batch shard-call order is deterministic: first one embedding
    call per *home* shard present in the batch (sorted), then one
    consult call per shard in shard order — so the consult call for
    shard ``s`` is invocation ``n_home_shards + s``.
    """
    homes = {shard_of_key(content_key(r), N_SHARDS) for r in batch}
    return len(homes) + shard_id


class TestFailover:
    @pytest.mark.parametrize("shard_id", range(N_SHARDS))
    def test_killing_each_shard_mid_batch_fails_over_bit_identical(
        self, shard_id, trained_matcher, built_index, batch, baseline
    ):
        hit = consult_hit_of_shard(batch, shard_id)
        plan = FaultPlan([Fault("serve.shard.query", "error", hits=(hit,))])
        with plan:
            service = fresh(trained_matcher, built_index)
            report = service.match_batch(batch)
        assert plan.ledger.count("error", "serve.shard.query") == 1
        assert report.failovers == 1
        assert [a.to_dict() for a in report.answers] == baseline

    def test_failover_keeps_cache_metrics_bit_identical(
        self, trained_matcher, built_index, batch
    ):
        """Failed attempts restore the metrics checkpoint (keeping only
        ``faults.*``), so a recovered run's serve counters — including
        every per-shard cache stream — match a fault-free run exactly."""
        def serve_counters(plan):
            with collecting(reset=True):
                with plan if plan is not None else FaultPlan():
                    fresh(trained_matcher, built_index).match_batch(batch)
                counters = REGISTRY.snapshot()["counters"]
            return {k: v for k, v in counters.items() if k.startswith("serve.")}

        clean = serve_counters(None)
        hit = consult_hit_of_shard(batch, 1)
        faulted = serve_counters(
            FaultPlan([Fault("serve.shard.query", "error", hits=(hit,))])
        )
        assert faulted.pop("serve.shard.failovers") == 1.0
        assert "serve.shard.failovers" not in clean
        assert faulted == clean

    def test_over_budget_kill_fails_loudly_naming_the_site(
        self, trained_matcher, built_index, batch
    ):
        # replicas=2 gives the site a budget of two attempts per call;
        # killing both replicas of one shard call exhausts it.
        hit = consult_hit_of_shard(batch, 2)
        with FaultPlan([Fault("serve.shard.query", "error", hits=(hit, hit + 1))]):
            service = fresh(trained_matcher, built_index)
            with pytest.raises(RetryExhausted) as excinfo:
                service.match_batch(batch)
        assert excinfo.value.site == "serve.shard.query"
        assert excinfo.value.attempts == 2

    def test_single_replica_has_no_failover_budget(
        self, trained_matcher, built_index, batch
    ):
        with FaultPlan([Fault("serve.shard.query", "error", hits=(0,))]):
            service = fresh(trained_matcher, built_index, replicas=1)
            with pytest.raises(RetryExhausted) as excinfo:
                service.match_batch(batch)
        assert excinfo.value.site == "serve.shard.query"
        assert excinfo.value.attempts == 1

    def test_corrupted_routing_is_detected_and_recomputed(
        self, trained_matcher, built_index, batch, baseline
    ):
        plan = FaultPlan([Fault("serve.shard.route", "corrupt", hits=(0,))])
        with plan:
            faulted = answers_dicts(fresh(trained_matcher, built_index), batch)
        assert plan.ledger.count("corrupt", "serve.shard.route") == 1
        assert faulted == baseline


class TestChaosSweep:
    # Seeds 0 and 7 schedule error faults at both shard sites; 11 kills
    # serve.shard.query only (checked empirically, stable by construction).
    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_seeded_chaos_over_shard_sites_is_invisible(
        self, seed, trained_matcher, built_index, batch, baseline
    ):
        plan = FaultPlan.chaos(seed, sites={
            "serve.shard.query", "serve.shard.route",
            "serve.score", "serve.cache.lookup",
        })
        with plan:
            faulted = answers_dicts(fresh(trained_matcher, built_index), batch)
        assert faulted == baseline

    def test_chaos_never_corrupts_the_shard_query_site(self):
        """Corrupt chaos at ``serve.shard.query`` would be detected only
        after the primary warmed the shared cache tier, drifting the cost
        rows — the catalog excludes it, so no seed can schedule one."""
        assert "serve.shard.query" not in CORRUPT_SITES
        for seed in range(32):
            for entry in FaultPlan.chaos(seed).describe():
                if entry["site"] == "serve.shard.query":
                    assert entry["kind"] != "corrupt"


class TestChaosAppendStability:
    """Adding the shard sites must not have moved pre-existing seeds.

    CI runs pin ``--chaos 7`` and ``--chaos 11``; their bit-identical
    rows only stay meaningful if growing the site catalog leaves the
    schedule at the *old* sites untouched (each (kind, site) decision
    draws from its own content-hashed stream, never a shared walk).
    """

    LEGACY = sorted(set(all_sites()) - {"serve.shard.query", "serve.shard.route"})

    @pytest.mark.parametrize("seed", [7, 11])
    def test_wired_ci_seeds_are_unperturbed_by_appended_sites(self, seed):
        full = FaultPlan.chaos(seed)
        legacy_only = FaultPlan.chaos(seed, sites=set(self.LEGACY))
        filtered = [
            entry for entry in full.describe() if entry["site"] in self.LEGACY
        ]
        assert filtered == legacy_only.describe()

    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_chaos_schedules_are_reproducible(self, seed):
        assert FaultPlan.chaos(seed).describe() == FaultPlan.chaos(seed).describe()

    def test_subset_restriction_is_exact_filtering_for_any_subset(self):
        full = FaultPlan.chaos(42)
        for site in all_sites():
            only = FaultPlan.chaos(42, sites={site})
            assert only.describe() == [
                entry for entry in full.describe() if entry["site"] == site
            ]
