"""MatchService: coalescing, caching, read-only contract, offline parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import REGISTRY, collecting
from repro.serve import MatchService


class TestConstruction:
    def test_requires_fitted_matcher(self, word_model, small_benchmark, built_index):
        from repro.er import DeepER

        unfitted = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        with pytest.raises(RuntimeError):
            MatchService(unfitted, built_index)

    def test_requires_built_index(self, trained_matcher):
        from repro.serve import BlockingIndex

        index = BlockingIndex(trained_matcher.embedder, rng=0)
        with pytest.raises(RuntimeError, match="built"):
            MatchService(trained_matcher, index)

    def test_threshold_validated(self, trained_matcher, built_index):
        with pytest.raises(ValueError, match="threshold"):
            MatchService(trained_matcher, built_index, threshold=1.5)

    def test_construction_puts_matcher_in_eval(self, service):
        assert not service.matcher.classifier.training


class TestBatching:
    def test_empty_batch(self, service):
        report = service.match_batch([])
        assert report.answers == []
        assert report.predict_calls == 0

    def test_batch_coalesces_to_one_predict_call(self, service, query_records):
        """N queries ⇒ at most one predict_proba call, visible in metrics."""
        with collecting(reset=True):
            report = service.match_batch(query_records[:8])
            assert report.predict_calls == 1
            assert REGISTRY.counter("serve.predict_calls").value == 1
            assert REGISTRY.counter("serve.requests").value == 8
        assert len(report.answers) == 8
        assert report.scored_pairs > 0

    def test_match_one_equals_batch_of_one(self, service, query_records):
        record = query_records[0]
        one = service.match_one(dict(record))
        batch = service.match_batch([record]).answers[0]
        # Same semantic answer; only the cache provenance fields may differ
        # (the second call is warm by construction).
        assert one.to_dict() == batch.to_dict()

    def test_duplicate_queries_share_work(self, service, query_records):
        record = query_records[0]
        report = service.match_batch([record, dict(record), record])
        assert report.embedding_misses == 1
        first, second, third = report.answers
        assert first == second == third


class TestCaching:
    def test_warm_second_pass_skips_model(self, service, query_records):
        batch = query_records[:6]
        cold = service.match_batch(batch)
        warm = service.match_batch([dict(r) for r in batch])  # fresh dicts
        assert cold.predict_calls == 1
        assert warm.predict_calls == 0
        assert warm.scored_pairs == 0
        assert warm.embedding_misses == 0
        for a, b in zip(cold.answers, warm.answers):
            assert a.query_key == b.query_key
            assert a.best_id == b.best_id
            assert a.probability == b.probability
        assert all(a.embedding_cached for a in warm.answers)
        assert service.cache_stats.hits > 0

    def test_disabled_caches_give_identical_answers(
        self, trained_matcher, built_index, query_records
    ):
        cached = MatchService(trained_matcher, built_index, jobs=1)
        uncached = MatchService(
            trained_matcher, built_index, jobs=1,
            embedding_cache_size=0, score_cache_size=0,
        )
        batch = query_records[:10]
        with_cache = [a.to_dict() for a in cached.match_batch(batch).answers]
        without = [a.to_dict() for a in uncached.match_batch(batch).answers]
        assert with_cache == without
        # And the uncached service really re-scores on a second pass.
        assert uncached.match_batch(batch).predict_calls == 1

    def test_eviction_accounting(self, trained_matcher, built_index, query_records):
        tiny = MatchService(
            trained_matcher, built_index, jobs=1,
            embedding_cache_size=2, score_cache_size=2,
        )
        tiny.match_batch(query_records[:8])
        assert tiny.embedding_cache.stats.evictions > 0
        assert len(tiny.embedding_cache) <= 2
        assert len(tiny.score_cache) <= 2


class TestAnswers:
    def test_differential_serving_equals_offline(self, service, query_records):
        """The serving fast path must answer exactly like offline predict."""
        batch = query_records[:12]
        answers = service.match_batch(batch).answers
        compared = 0
        for record, answer in zip(batch, answers):
            embedding = service.index.embed_queries([record], jobs=1)[0]
            candidate_ids = service.index.candidates(embedding)
            assert tuple(candidate_ids) == answer.candidates
            if not candidate_ids:
                assert answer.best_id is None
                assert answer.probability == 0.0
                continue
            offline = service.matcher.predict_proba(
                [(record, service.index.record(c)) for c in candidate_ids]
            )
            scores = dict(zip(candidate_ids, offline))
            best = min(candidate_ids, key=lambda c: (-scores[c], c))
            assert answer.best_id == best
            assert answer.probability == float(scores[best])
            compared += 1
        assert compared >= 5, "too few queries had candidates to compare"

    def test_threshold_controls_matched_flag(self, trained_matcher, built_index,
                                             query_records):
        permissive = MatchService(trained_matcher, built_index, threshold=0.0, jobs=1)
        answers = permissive.match_batch(query_records[:10]).answers
        for answer in answers:
            if answer.best_id is not None:
                assert answer.matched  # every probability >= 0.0

    def test_answers_deterministic_across_services(
        self, trained_matcher, built_index, query_records
    ):
        batch = query_records[:10]
        first = MatchService(trained_matcher, built_index, jobs=1)
        second = MatchService(trained_matcher, built_index, jobs=1)
        a = [x.to_dict() for x in first.match_batch(batch).answers]
        b = [x.to_dict() for x in second.match_batch(batch).answers]
        assert a == b


class TestReadOnlyContract:
    def test_traffic_leaves_parameters_untouched(self, service, query_records):
        before = service.parameter_fingerprint()
        for start in range(0, 30, 6):
            service.match_batch(query_records[start:start + 6])
        assert service.parameter_fingerprint() == before

    def test_matcher_stays_in_eval_mode(self, service, query_records):
        service.match_batch(query_records[:6])
        assert not service.matcher.classifier.training
