"""Content-addressed LRU cache: accounting, eviction order, key stability."""

from __future__ import annotations

import pytest

from repro.serve import CacheStats, CacheStatsView, LRUCache, MISSING, content_key


class TestContentKey:
    def test_key_ignores_dict_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_key_distinguishes_content(self):
        assert content_key({"a": 1}) != content_key({"a": 2})
        assert content_key({"a": 1}) != content_key({"b": 1})

    def test_key_is_identity_free(self):
        record = {"title": "deep er", "year": 2018}
        assert content_key(dict(record)) == content_key(record)

    def test_key_handles_non_json_values(self):
        # numpy scalars / arbitrary objects stringify instead of crashing.
        import numpy as np

        assert content_key({"n": np.int64(3)}) == content_key({"n": np.int64(3)})

    def test_pair_keys_usable(self):
        # Score-cache keys are (query_key, candidate_id) tuples.
        cache = LRUCache(4)
        cache.put(("q", "c1"), 0.5)
        assert cache.get(("q", "c1")) == 0.5


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(2)
        assert cache.get("k") is MISSING
        cache.put("k", 41)
        assert cache.get("k") == 41
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_none_is_not_a_miss(self):
        cache = LRUCache(2)
        cache.put("k", None)
        assert cache.get("k") is None

    def test_eviction_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # freshen "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put freshens
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 10

    def test_keys_in_recency_order(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]

    def test_capacity_zero_stores_nothing(self):
        cache = LRUCache(0)
        cache.put("k", 1)
        assert cache.get("k") is MISSING
        assert len(cache) == 0
        assert cache.stats.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(-1)

    def test_peek_has_no_side_effects(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        before = (cache.stats.hits, cache.stats.misses, cache.keys())
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is MISSING
        assert (cache.stats.hits, cache.stats.misses, cache.keys()) == before

    def test_clear_keeps_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.stats.inserts == 1

    def test_guarded_metrics_when_collecting(self):
        from repro.obs import REGISTRY, collecting

        with collecting(reset=True):
            cache = LRUCache(1, name="probe")
            cache.get("x")
            cache.put("x", 1)
            cache.get("x")
            cache.put("y", 2)  # evicts x
            assert REGISTRY.counter("serve.cache.probe.misses").value == 1
            assert REGISTRY.counter("serve.cache.probe.hits").value == 1
            assert REGISTRY.counter("serve.cache.probe.evictions").value == 1


class TestStats:
    def test_hit_rate_zero_before_lookups(self):
        assert CacheStats().hit_rate == 0.0

    def test_view_sums_caches(self):
        a = CacheStats(hits=3, misses=1, evictions=2)
        b = CacheStats(hits=1, misses=3, evictions=0)
        view = CacheStatsView(a, b)
        assert view.hits == 4
        assert view.misses == 4
        assert view.evictions == 2
        assert view.hit_rate == 0.5

    def test_view_empty(self):
        assert CacheStatsView().hit_rate == 0.0
