"""Workload generator: seeded determinism, repeats, open-loop arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import Query, WorkloadConfig, generate_workload


RECORDS = [{"name": f"r{k}", "k": k} for k in range(12)]


class TestConfig:
    def test_validation_messages_are_pinned(self):
        with pytest.raises(ValueError, match=r"n_queries must be >= 1, got 0"):
            WorkloadConfig(n_queries=0, rate=10.0)
        with pytest.raises(ValueError, match=r"rate must be > 0, got 0.0"):
            WorkloadConfig(n_queries=5, rate=0.0)
        with pytest.raises(ValueError, match=r"rate must be > 0, got -3.0"):
            WorkloadConfig(n_queries=5, rate=-3.0)
        with pytest.raises(
            ValueError, match=r"repeat_fraction must be in \[0, 1\], got 1.5"
        ):
            WorkloadConfig(n_queries=5, rate=10.0, repeat_fraction=1.5)

    def test_empty_records_rejected(self):
        with pytest.raises(
            ValueError, match=r"need at least one record to draw queries from"
        ):
            generate_workload([], WorkloadConfig(n_queries=5, rate=10.0))


class TestDeterminism:
    def test_same_seed_same_workload(self):
        config = WorkloadConfig(n_queries=40, rate=50.0, repeat_fraction=0.4, seed=3)
        first = generate_workload(RECORDS, config)
        second = generate_workload(RECORDS, config)
        assert [(q.query_id, q.arrival) for q in first] == [
            (q.query_id, q.arrival) for q in second
        ]
        assert [q.record for q in first] == [q.record for q in second]

    def test_different_seed_different_workload(self):
        a = generate_workload(RECORDS, WorkloadConfig(n_queries=40, rate=50.0, seed=0))
        b = generate_workload(RECORDS, WorkloadConfig(n_queries=40, rate=50.0, seed=1))
        assert [q.arrival for q in a] != [q.arrival for q in b]


class TestShape:
    def test_arrivals_strictly_increase(self):
        queries = generate_workload(
            RECORDS, WorkloadConfig(n_queries=100, rate=200.0, seed=5)
        )
        arrivals = [q.arrival for q in queries]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert [q.query_id for q in queries] == list(range(100))

    def test_rate_sets_mean_gap(self):
        queries = generate_workload(
            RECORDS, WorkloadConfig(n_queries=2000, rate=100.0, seed=7)
        )
        mean_gap = queries[-1].arrival / len(queries)
        assert mean_gap == pytest.approx(1 / 100.0, rel=0.15)

    def test_repeat_fraction_reissues_records(self):
        # A wide record pool makes accidental re-draws rare, so re-issued
        # records (same object as an earlier query) measure repeats.
        pool = [{"name": f"p{k}"} for k in range(1000)]

        def collisions(repeat_fraction):
            queries = generate_workload(pool, WorkloadConfig(
                n_queries=200, rate=50.0,
                repeat_fraction=repeat_fraction, seed=2,
            ))
            seen: set[int] = set()
            repeated = 0
            for q in queries:
                repeated += id(q.record) in seen
                seen.add(id(q.record))
            return repeated

        assert collisions(0.6) > 80  # ~0.6 of 199 eligible, loosely bounded
        assert collisions(0.0) < 30  # birthday collisions only

    def test_zero_repeat_fraction_draws_uniformly(self):
        queries = generate_workload(
            RECORDS, WorkloadConfig(n_queries=300, rate=50.0, seed=4)
        )
        drawn = {id(q.record) for q in queries}
        assert len(drawn) == len(RECORDS)  # every record eventually sampled

    def test_query_equality_ignores_record(self):
        a = Query(query_id=0, arrival=1.0, record={"x": 1})
        b = Query(query_id=0, arrival=1.0, record={"x": 2})
        assert a == b  # record is compare=False metadata


class TestSaltIsolation:
    def test_workload_rng_disjoint_from_default_seeding(self):
        """Seed 0 here must not mirror np.default_rng(0) streams."""
        queries = generate_workload(
            RECORDS, WorkloadConfig(n_queries=10, rate=10.0, seed=0)
        )
        plain = np.random.default_rng(0).exponential(0.1, size=10)
        assert not np.allclose([q.arrival for q in queries], np.cumsum(plain))
