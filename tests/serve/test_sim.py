"""Simulator scheduling: batching windows, admission control, percentiles.

These tests drive :func:`repro.serve.simulate` with a stub service whose
cost is fully controlled through ``scored_pairs``, so every assertion is
about the *scheduler*, not the model.
"""

from __future__ import annotations

import pytest

from repro.serve import (
    Query,
    QueryResult,
    ServerConfig,
    SimClock,
    SimReport,
    percentile,
    simulate,
)
from repro.serve.service import BatchReport


class StubService:
    """Fixed per-query pair count; records every batch it was handed."""

    def __init__(self, pairs_per_query: int = 0):
        self.pairs_per_query = pairs_per_query
        self.batches: list[int] = []

    def match_batch(self, records):
        self.batches.append(len(records))
        return BatchReport(
            answers=[None] * len(records),
            scored_pairs=self.pairs_per_query * len(records),
            embedding_misses=len(records),
            predict_calls=1 if records else 0,
        )


def queries_at(arrivals: list[float]) -> list[Query]:
    return [Query(query_id=k, arrival=t, record={"q": k}) for k, t in enumerate(arrivals)]


class TestClock:
    def test_advance_and_advance_to(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(1.0) == 1.5  # never backwards
        assert clock.advance_to(2.0) == 2.0

    def test_negative_moves_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)
        with pytest.raises(ValueError):
            SimClock(start=-1.0)


class TestServerConfig:
    def test_validation_messages_are_pinned(self):
        # Full messages, got-value included: downstream tooling greps
        # these strings and a silent rewording would orphan it.
        with pytest.raises(ValueError, match=r"max_batch_size must be >= 1, got 0"):
            ServerConfig(max_batch_size=0)
        with pytest.raises(ValueError, match=r"max_queue must be >= 1, got 0"):
            ServerConfig(max_queue=0)
        with pytest.raises(ValueError, match=r"max_wait must be >= 0, got -0.001"):
            ServerConfig(max_wait=-0.001)
        with pytest.raises(ValueError, match=r"cost model terms must be >= 0"):
            ServerConfig(cost_base=-1.0)
        with pytest.raises(ValueError, match=r"cost model terms must be >= 0"):
            ServerConfig(cost_per_embed=-1e-6)


class TestBatching:
    def test_full_batch_fires_before_deadline(self):
        service = StubService()
        config = ServerConfig(max_batch_size=4, max_wait=10.0, max_queue=64,
                              cost_base=0.0, cost_per_query=0.0, cost_per_miss=0.0)
        report = simulate(service, queries_at([0.00, 0.01, 0.02, 0.03, 5.0]), config)
        # First four coalesce the moment the batch is full (t=0.03), the
        # straggler waits out its own deadline.
        assert service.batches == [4, 1]
        assert report.batches[0]["fire"] == pytest.approx(0.03)
        assert report.batches[1]["fire"] == pytest.approx(15.0)

    def test_deadline_fires_partial_batch(self):
        service = StubService()
        config = ServerConfig(max_batch_size=8, max_wait=0.05, max_queue=64,
                              cost_base=0.0, cost_per_query=0.0, cost_per_miss=0.0)
        report = simulate(service, queries_at([0.0, 0.001, 0.002]), config)
        assert service.batches == [3]
        # The window is anchored on the *oldest* waiting query.
        assert report.batches[0]["fire"] == pytest.approx(0.05)

    def test_busy_server_delays_next_batch(self):
        service = StubService(pairs_per_query=1)
        config = ServerConfig(max_batch_size=2, max_wait=0.0, max_queue=64,
                              cost_base=1.0, cost_per_query=0.0, cost_per_miss=0.0)
        report = simulate(service, queries_at([0.0, 0.0, 0.1, 0.1]), config)
        assert service.batches == [2, 2]
        # Second batch cannot start until the first finishes at t=1.0.
        assert report.batches[1]["fire"] == pytest.approx(1.0)
        assert report.duration == pytest.approx(2.0)

    def test_cost_model_charges_pairs(self):
        service = StubService(pairs_per_query=3)
        config = ServerConfig(max_batch_size=4, max_wait=0.0, max_queue=64,
                              cost_base=0.5, cost_per_query=0.25, cost_per_miss=0.1)
        report = simulate(service, queries_at([0.0, 0.0]), config)
        assert report.batches[0]["cost"] == pytest.approx(0.5 + 2 * 0.25 + 6 * 0.1)

    def test_results_in_query_id_order(self):
        service = StubService()
        config = ServerConfig(max_batch_size=2, max_wait=0.0, max_queue=64)
        shuffled = [
            Query(query_id=2, arrival=0.30, record={}),
            Query(query_id=0, arrival=0.10, record={}),
            Query(query_id=1, arrival=0.20, record={}),
        ]
        report = simulate(service, shuffled, config)
        assert [r.query_id for r in report.results] == [0, 1, 2]
        assert all(r.status == "ok" for r in report.results)

    def test_empty_workload(self):
        report = simulate(StubService(), [], ServerConfig())
        assert report.results == []
        assert report.duration == 0.0
        assert report.throughput == 0.0
        assert report.latency_percentiles() == {50: 0.0, 95: 0.0, 99: 0.0}


class TestAdmissionControl:
    def overload(self):
        # Everything arrives at once; the server takes 1s per batch, so the
        # queue bound is the only thing standing between us and a pile-up.
        service = StubService()
        config = ServerConfig(max_batch_size=2, max_wait=0.0, max_queue=3,
                              cost_base=1.0, cost_per_query=0.0, cost_per_miss=0.0)
        queries = queries_at([0.001 * k for k in range(10)])
        return simulate(service, queries, config)

    def test_overload_sheds_deterministically(self):
        first = self.overload()
        second = self.overload()
        assert [r.status for r in first.results] == [r.status for r in second.results]
        assert [r.finish for r in first.results] == [r.finish for r in second.results]
        assert first.shed and first.completed

    def test_shed_queries_cost_nothing(self):
        report = self.overload()
        for result in report.shed:
            assert result.finish is None
            assert result.latency is None
            assert result.batch_id is None
        assert len(report.completed) + len(report.shed) == 10
        assert report.shed_rate == pytest.approx(len(report.shed) / 10)

    def test_accepted_all_complete(self):
        report = self.overload()
        for result in report.completed:
            assert result.finish is not None
            assert result.latency >= 0.0


class TestLatencyReport:
    def test_latency_is_arrival_to_finish(self):
        service = StubService()
        config = ServerConfig(max_batch_size=1, max_wait=0.0, max_queue=64,
                              cost_base=0.5, cost_per_query=0.0, cost_per_miss=0.0)
        report = simulate(service, queries_at([0.0, 0.1]), config)
        # q0: starts 0.0, finishes 0.5 → 0.5; q1 arrives 0.1, server busy
        # until 0.5, finishes 1.0 → 0.9.
        assert report.results[0].latency == pytest.approx(0.5)
        assert report.results[1].latency == pytest.approx(0.9)
        assert report.duration == pytest.approx(1.0)
        assert report.throughput == pytest.approx(2.0)

    def test_percentiles_nearest_rank(self):
        ordered = [float(k) for k in range(1, 11)]  # 1..10
        assert percentile(ordered, 50) == 5.0
        assert percentile(ordered, 95) == 10.0
        assert percentile(ordered, 99) == 10.0
        assert percentile(ordered, 10) == 1.0
        assert percentile(ordered, 100) == 10.0

    def test_percentile_validation(self):
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_report_percentiles_ordered(self):
        report = self.jittered_report()
        p = report.latency_percentiles((50, 95, 99))
        assert p[50] <= p[95] <= p[99]

    def jittered_report(self) -> SimReport:
        service = StubService(pairs_per_query=2)
        config = ServerConfig(max_batch_size=4, max_wait=0.01, max_queue=16,
                              cost_base=0.01, cost_per_query=0.001,
                              cost_per_miss=0.002)
        return simulate(service, queries_at([0.005 * k for k in range(30)]), config)

    def test_mean_batch_and_scored_pairs(self):
        report = self.jittered_report()
        assert report.mean_batch_size > 1.0
        assert report.scored_pairs == 2 * len(report.completed)


class TestExternalClock:
    def test_caller_clock_advances_to_drain(self):
        clock = SimClock()
        service = StubService()
        config = ServerConfig(max_batch_size=1, max_wait=0.0, max_queue=4,
                              cost_base=0.25, cost_per_query=0.0, cost_per_miss=0.0)
        report = simulate(service, queries_at([0.0, 0.0]), config, clock=clock)
        assert clock.now == pytest.approx(0.5)
        assert report.duration == pytest.approx(clock.now)

    def test_query_result_defaults(self):
        rejected = QueryResult(query_id=1, status="rejected", arrival=0.5)
        assert rejected.latency is None


class TestPercentilePromotion:
    def test_serve_re_exports_the_utils_implementation(self):
        # percentile was promoted into repro.utils; serve keeps its old
        # import surface as a pure re-export — same object, not a copy.
        import repro.serve
        import repro.serve.sim
        import repro.utils
        from repro.utils.stats import percentile as utils_percentile

        assert repro.serve.percentile is utils_percentile
        assert repro.serve.sim.percentile is utils_percentile
        assert repro.utils.percentile is utils_percentile
