"""Serving-suite fixtures: one trained matcher + built index per module."""

from __future__ import annotations

import pytest

from repro.er import DeepER
from repro.serve import BlockingIndex, MatchService


@pytest.fixture(scope="module")
def trained_matcher(word_model, small_benchmark):
    labeled = small_benchmark.labeled_pairs(negative_ratio=3, rng=1)[:120]
    train = [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]
    return DeepER(
        word_model, small_benchmark.compare_columns, composition="sif", rng=0
    ).fit(train, epochs=5)


@pytest.fixture(scope="module")
def reference_records(small_benchmark):
    records = [
        small_benchmark.table_a.row_dict(i)
        for i in range(len(small_benchmark.table_a))
    ]
    ids = [str(v) for v in small_benchmark.table_a.column(small_benchmark.id_column)]
    return records, ids


@pytest.fixture(scope="module")
def query_records(small_benchmark):
    return [
        small_benchmark.table_b.row_dict(i)
        for i in range(len(small_benchmark.table_b))
    ]


@pytest.fixture(scope="module")
def built_index(trained_matcher, reference_records):
    records, ids = reference_records
    return BlockingIndex(
        trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
    ).build(records, ids, jobs=1)


@pytest.fixture()
def service(trained_matcher, built_index):
    """A fresh (cold-cache) service per test."""
    return MatchService(trained_matcher, built_index, jobs=1)
