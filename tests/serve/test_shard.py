"""Shard invariance: scatter-gather answers never depend on topology.

The differential tier for :class:`repro.serve.shard.ShardedMatchService`:
for every shard count the sharded service must agree byte-for-byte with
the unsharded :class:`MatchService` and with a direct offline
``predict_proba`` over the same candidates — including the degenerate
batches (empty, duplicate tuple ids, a batch routed entirely to one
shard).  A separate metrics class pins the home-shard routing contract:
each shard's scoped ``serve.cache.shard<i>.*`` counters *sum* to the
unsharded totals, because every cache consult happens exactly once
somewhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import REGISTRY, collecting
from repro.serve import (
    MatchService,
    ShardedMatchService,
    shard_of_id,
    shard_of_key,
)
from repro.serve.cache import content_key

SHARD_COUNTS = (1, 2, 4, 8)


def answers_dicts(service, batch):
    return [a.to_dict() for a in service.match_batch(batch).answers]


@pytest.fixture(scope="module")
def unsharded(trained_matcher, built_index):
    return MatchService(trained_matcher, built_index, jobs=1)


@pytest.fixture(scope="module")
def baseline_answers(unsharded, query_records):
    return answers_dicts(unsharded, query_records)


class TestRouting:
    def test_shard_of_key_is_stable_arithmetic(self):
        key = content_key({"id": "a1", "name": "x"})
        assert shard_of_key(key, 4) == int(key[:16], 16) % 4
        # Single-shard routing is total.
        assert shard_of_key(key, 1) == 0

    def test_shard_of_id_partitions_the_reference_table(self, built_index):
        for n_shards in SHARD_COUNTS:
            assignment = [shard_of_id(i, n_shards) for i in built_index.ids]
            assert all(0 <= s < n_shards for s in assignment)
            # Deterministic: recomputing routes identically.
            assert assignment == [shard_of_id(i, n_shards) for i in built_index.ids]

    def test_shard_views_partition_candidates(
        self, trained_matcher, built_index, query_records
    ):
        """Every shard's candidate set is the global set ∩ its members —
        the property that makes the sorted-union merge exact."""
        service = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=1
        )
        embeddings = built_index.embed_queries(query_records[:10])
        for record, embedding in zip(query_records[:10], embeddings):
            global_candidates = built_index.candidates(embedding)
            gathered = []
            for group in service.groups:
                local = group.primary.index.candidates(embedding)
                members = set(group.primary.index.ids)
                assert set(local) == set(global_candidates) & members
                gathered.extend(local)
            assert sorted(gathered) == global_candidates


class TestShardInvariance:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_equals_unsharded(
        self, n_shards, trained_matcher, built_index, query_records,
        baseline_answers,
    ):
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=n_shards, replicas=2
        )
        assert sum(sharded.shard_sizes()) == len(built_index)
        report = sharded.match_batch(query_records)
        assert [a.to_dict() for a in report.answers] == baseline_answers
        # The work accounting aggregates to the unsharded totals too.
        unsharded_report = MatchService(
            trained_matcher, built_index, jobs=1
        ).match_batch(query_records)
        assert report.scored_pairs == unsharded_report.scored_pairs
        assert report.embedding_misses == unsharded_report.embedding_misses
        assert sum(w.scored_pairs for w in report.shards) == report.scored_pairs
        assert sum(w.embedding_misses for w in report.shards) == report.embedding_misses

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_equals_offline_predict_proba(
        self, n_shards, trained_matcher, built_index, query_records
    ):
        """Online scatter-gather == direct offline scoring of the same
        (query, candidate) pairs — the end-to-end differential bar."""
        batch = query_records[:8]
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=n_shards, replicas=2
        )
        for record, answer in zip(batch, sharded.match_batch(batch).answers):
            embedding = built_index.embed_queries([record])[0]
            candidates = built_index.candidates(embedding)
            assert list(answer.candidates) == candidates
            if not candidates:
                assert answer.best_id is None
                continue
            probabilities = trained_matcher.predict_proba(
                [(record, built_index.record(c)) for c in candidates]
            )
            scores = dict(zip(candidates, (float(p) for p in probabilities)))
            best = min(candidates, key=lambda c: (-scores[c], c))
            assert answer.best_id == best
            assert answer.probability == scores[best]

    def test_empty_batch(self, trained_matcher, built_index):
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=2
        )
        report = sharded.match_batch([])
        assert report.answers == []
        assert report.scored_pairs == 0
        assert report.shards == ()
        assert report.failovers == 0

    def test_duplicate_tuple_ids_in_batch(
        self, trained_matcher, built_index, query_records
    ):
        batch = [query_records[0], query_records[1], query_records[0],
                 query_records[0]]
        # Cold baseline: cache warmth changes the scoring batch shape (and
        # with it the last ulp), so the differential pairs fresh services.
        expected = answers_dicts(
            MatchService(trained_matcher, built_index, jobs=1), batch
        )
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=2
        )
        report = sharded.match_batch(batch)
        assert [a.to_dict() for a in report.answers] == expected
        # Duplicates collapse to one unit of work, exactly as unsharded.
        assert report.embedding_misses == 2

    def test_batch_routed_entirely_to_one_shard(
        self, trained_matcher, built_index, query_records
    ):
        """A batch whose every key homes on one shard still answers over
        the *whole* reference table (candidates come from every shard)."""
        n_shards = 4
        by_home: dict[int, list[dict]] = {}
        for record in query_records:
            home = shard_of_key(content_key(record), n_shards)
            by_home.setdefault(home, []).append(record)
        home, batch = max(by_home.items(), key=lambda kv: len(kv[1]))
        assert len(batch) >= 2
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=n_shards, replicas=2
        )
        report = sharded.match_batch(batch)
        assert [a.to_dict() for a in report.answers] == answers_dicts(
            MatchService(trained_matcher, built_index, jobs=1), batch
        )
        # Embedding work happened only on the single home shard...
        for work in report.shards:
            if work.shard != home:
                assert work.embedding_misses == 0
        # ...but candidates were gathered across shards.
        all_candidates = {c for a in report.answers for c in a.candidates}
        owning = {shard_of_id(c, n_shards) for c in all_candidates}
        assert len(owning) > 1

    def test_repeat_traffic_stays_invariant_with_warm_caches(
        self, trained_matcher, built_index, query_records, unsharded
    ):
        """Cache warmth is topology-invariant too: replaying the same
        stream twice gives identical answers sharded and unsharded."""
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=2
        )
        fresh = MatchService(trained_matcher, built_index, jobs=1)
        stream = query_records[:6] + query_records[:6]
        for batch in (stream[:4], stream[4:8], stream[8:]):
            assert answers_dicts(sharded, batch) == answers_dicts(fresh, batch)

    def test_parameter_fingerprint_unmoved_by_sharded_traffic(
        self, trained_matcher, built_index, query_records
    ):
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=2
        )
        before = sharded.parameter_fingerprint()
        sharded.match_batch(query_records)
        assert sharded.parameter_fingerprint() == before


class TestPerShardCacheMetrics:
    def _cache_totals(self, snapshot: dict, sharded: bool) -> dict:
        """Sum serve.cache.* counters, folding shard scopes together."""
        totals: dict[tuple[str, str], float] = {}
        for name, value in snapshot["counters"].items():
            if not name.startswith("serve.cache."):
                continue
            parts = name[len("serve.cache."):].split(".")
            scoped = parts[0].startswith("shard") and parts[0][5:].isdigit()
            if scoped != sharded:
                continue
            if scoped:
                parts = parts[1:]
            totals[(parts[0], parts[1])] = (
                totals.get((parts[0], parts[1]), 0.0) + value
            )
        return totals

    def test_per_shard_cache_counters_sum_to_unsharded_totals(
        self, trained_matcher, built_index, query_records
    ):
        """The satellite fix pinned down: every shard owns its own cache
        instances under a ``shard<i>.`` metric scope (no cross-shard
        conflation), and home-shard routing makes the scoped counters sum
        exactly to what one unsharded service would have counted."""
        stream = query_records + query_records[:7]
        with collecting(reset=True):
            service = MatchService(trained_matcher, built_index, jobs=1)
            for start in range(0, len(stream), 5):
                service.match_batch(stream[start:start + 5])
            unsharded_snapshot = REGISTRY.snapshot()
        with collecting(reset=True):
            sharded = ShardedMatchService(
                trained_matcher, built_index, n_shards=4, replicas=2
            )
            for start in range(0, len(stream), 5):
                sharded.match_batch(stream[start:start + 5])
            sharded_snapshot = REGISTRY.snapshot()
        unsharded_totals = self._cache_totals(unsharded_snapshot, sharded=False)
        sharded_totals = self._cache_totals(sharded_snapshot, sharded=True)
        assert unsharded_totals
        assert sharded_totals == unsharded_totals
        # And the shard scopes are genuinely distinct instruments.
        scopes = {
            name.split(".")[2]
            for name in sharded_snapshot["counters"]
            if name.startswith("serve.cache.shard")
        }
        assert len(scopes) > 1

    def test_cache_instances_are_per_shard_not_shared(
        self, trained_matcher, built_index
    ):
        """The regression this PR fixes: shards built from one config must
        not share LRUCache instances (shared stats conflated every
        shard's hit accounting into one stream)."""
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=2
        )
        embedding_caches = [g.primary.embedding_cache for g in sharded.groups]
        assert len({id(c) for c in embedding_caches}) == len(embedding_caches)
        names = {c.name for c in embedding_caches}
        assert names == {f"shard{i}.embedding" for i in range(4)}
        # Replicas of one shard DO share their tier (failover invisibility).
        for group in sharded.groups:
            for replica in group.replicas[1:]:
                assert replica.embedding_cache is group.primary.embedding_cache
                assert replica.score_cache is group.primary.score_cache
                assert replica.column_cache is group.primary.column_cache

    def test_aggregate_cache_stats_match_unsharded_definition(
        self, trained_matcher, built_index, query_records
    ):
        service = MatchService(trained_matcher, built_index, jobs=1)
        sharded = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=2
        )
        for batch in (query_records[:5], query_records[:5]):
            service.match_batch(batch)
            sharded.match_batch(batch)
        assert sharded.cache_stats.hits == service.cache_stats.hits
        assert sharded.cache_stats.misses == service.cache_stats.misses
        assert sharded.cache_stats.hit_rate == service.cache_stats.hit_rate


class TestConstruction:
    def test_invalid_shard_and_replica_counts_rejected(
        self, trained_matcher, built_index
    ):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedMatchService(trained_matcher, built_index, n_shards=0)
        with pytest.raises(ValueError, match="replicas"):
            ShardedMatchService(
                trained_matcher, built_index, n_shards=2, replicas=0
            )

    def test_shard_view_requires_known_ids(self, built_index):
        with pytest.raises(KeyError):
            built_index.shard_view(["definitely-not-an-id"])

    def test_shard_view_shares_frozen_blocker(self, built_index):
        view = built_index.shard_view(built_index.ids[:3])
        assert view.blocker is built_index.blocker
        assert len(view) == 3
        assert view.column_store.mode == built_index.column_store.mode
        np.testing.assert_array_equal(
            view.column_rows(built_index.ids[:3]),
            built_index.column_rows(built_index.ids[:3]),
        )
