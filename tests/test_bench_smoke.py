"""Smoke-run every experiment bench at the smallest profile.

Guards against the failure mode where a bench module only breaks when
actually executed (signature drift, renamed helpers, profile dicts out of
sync).  Each ``run_experiment(profile="smoke")`` must return a non-empty
list of dict rows; the shape assertions stay with the full-profile pytest
entries in each bench module.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

pytest.importorskip("benchmarks.common", reason="requires repo-root cwd")

import benchmarks
from benchmarks.common import PROFILES, profile_config
from benchmarks.run_all import EXPERIMENTS


def _all_bench_modules() -> list[str]:
    return sorted(
        name for _, name, _ in pkgutil.iter_modules(benchmarks.__path__)
        if name.startswith("bench_")
    )


def test_every_bench_module_is_registered_or_micro():
    registered = {module_name for module_name, _ in EXPERIMENTS.values()}
    unregistered = set(_all_bench_modules()) - registered
    # The substrate microbenchmarks are pytest-benchmark-only by design.
    assert unregistered == {"bench_micro_substrate"}


@pytest.mark.parametrize("module_name", _all_bench_modules())
def test_bench_module_imports(module_name):
    module = importlib.import_module(f"benchmarks.{module_name}")
    if module_name != "bench_micro_substrate":
        assert hasattr(module, "run_experiment")
        assert set(module._P) == set(PROFILES)


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_run_experiment_smoke(exp_id):
    module_name, _ = EXPERIMENTS[exp_id]
    module = importlib.import_module(f"benchmarks.{module_name}")
    rows = module.run_experiment(profile="smoke")
    assert isinstance(rows, list) and rows
    assert all(isinstance(row, dict) for row in rows)
    # Tables need a stable header: every row shares the first row's keys
    # (modulo private "_" assertion keys).
    first = {k for k in rows[0] if not str(k).startswith("_")}
    assert first


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown profile"):
        profile_config({"full": {}, "smoke": {}}, "huge")


def test_run_all_parallel_smoke_emits_valid_bench_json(tmp_path, capsys):
    """One end-to-end --jobs run: the emitted BENCH json must validate."""
    from benchmarks.check_bench_json import check_file
    from benchmarks.run_all import main

    exit_code = main(["e2", "--profile", "smoke", "--jobs", "2",
                      "--out-dir", str(tmp_path)])
    capsys.readouterr()
    assert exit_code == 0
    emitted = sorted(tmp_path.glob("BENCH_*.json"))
    assert len(emitted) == 1
    assert check_file(str(emitted[0])) == []


def test_run_all_e17_rows_bit_identical_across_runs_jobs_chaos(tmp_path, capsys):
    """The serving bench's acceptance bar: simulated rows are byte-equal
    across a repeat run, a --jobs 2 run and a --chaos run."""
    import json

    from benchmarks.check_bench_json import check_file
    from benchmarks.run_all import main

    def rows(tag, *extra):
        out_dir = tmp_path / tag
        out_dir.mkdir()
        exit_code = main(["e17", "--profile", "smoke",
                          "--out-dir", str(out_dir), *extra])
        capsys.readouterr()
        assert exit_code == 0
        path = out_dir / "BENCH_E17.json"
        assert check_file(str(path)) == []
        return json.loads(path.read_text())["rows"]

    from benchmarks.bench_e17_serving import SHARD_SWEEP

    first = rows("first")
    # The kernel-cost rows (batched repro.kernels scorer) must be in the
    # emitted table and covered by the same byte-equality bar.
    scenarios = [row["scenario"] for row in first]
    assert "kernel cost (no cache)" in scenarios
    assert "kernel cost + caches" in scenarios
    # So must the shard sweep — and within one run, its answers digest
    # must not move with the shard count (scatter-gather invariance at
    # the emitted-artifact level, not just in the unit tier).
    sweep = [row for row in first if row["scenario"].startswith("shard sweep")]
    assert [row["shards"] for row in sweep] == list(SHARD_SWEEP)
    assert len({row["answers_sha1"] for row in sweep}) == 1
    assert first == rows("again")
    assert first == rows("jobs2", "--jobs", "2")
    assert first == rows("chaos", "--chaos", "11")


def test_run_all_e18_rows_bit_identical_across_runs_jobs_chaos(tmp_path, capsys):
    """The loop bench's acceptance bar: day rows — including promotion
    decisions, registry fingerprints and per-day answer digests — are
    byte-equal across a repeat run, a --jobs 2 run and a --chaos run
    (chaos seed 11 kills the first ``serve.swap`` commit — the hot-swap
    retries and the rows must not move)."""
    import json

    from benchmarks.check_bench_json import check_file
    from benchmarks.run_all import main

    def rows(tag, *extra):
        out_dir = tmp_path / tag
        out_dir.mkdir()
        exit_code = main(["e18", "--profile", "smoke",
                          "--out-dir", str(out_dir), *extra])
        capsys.readouterr()
        assert exit_code == 0
        path = out_dir / "BENCH_E18.json"
        assert check_file(str(path)) == []
        return json.loads(path.read_text())["rows"]

    first = rows("first")
    scenarios = {row["scenario"] for row in first}
    assert len(scenarios) == 2  # unsharded + sharded topologies
    # Threshold-gated stepwise learning, identical across topologies.
    for scenario in scenarios:
        days = [row for row in first if row["scenario"] == scenario]
        f1s = [row["active_f1"] for row in days]
        assert f1s == sorted(f1s) and f1s[-1] > f1s[0]
        assert any(row["promoted"] for row in days)
    assert first == rows("again")
    assert first == rows("jobs2", "--jobs", "2")
    assert first == rows("chaos", "--chaos", "11")


def test_run_all_e19_rows_bit_identical_across_runs_jobs_chaos(tmp_path, capsys):
    """The gateway bench's acceptance bar: scenario rows — including shed
    counts, valve pause/resume counters and per-scenario answer digests —
    are byte-equal across a repeat run, a --jobs 2 run and a --chaos run,
    and every scenario's arms agree on one answers_sha1 (routing decides
    WHEN work runs, never WHAT it answers)."""
    import json

    from benchmarks.check_bench_json import check_file
    from benchmarks.run_all import main

    def rows(tag, *extra):
        out_dir = tmp_path / tag
        out_dir.mkdir()
        exit_code = main(["e19", "--profile", "smoke",
                          "--out-dir", str(out_dir), *extra])
        capsys.readouterr()
        assert exit_code == 0
        path = out_dir / "BENCH_E19.json"
        assert check_file(str(path)) == []
        return json.loads(path.read_text())["rows"]

    first = rows("first")
    scenarios = {row["scenario"].split(" (")[0] for row in first}
    assert scenarios == {"mixed tenants", "fairness", "retrain day"}
    for scenario in scenarios:
        digests = {
            row["answers_sha1"] for row in first
            if row["scenario"].split(" (")[0] == scenario
        }
        assert len(digests) == 1, f"{scenario}: answers moved across arms"
    assert first == rows("again")
    assert first == rows("jobs2", "--jobs", "2")
    assert first == rows("chaos", "--chaos", "11")


def test_run_all_chaos_smoke_emits_valid_bench_json(tmp_path, capsys):
    """End-to-end --chaos --jobs run: injected faults must not break the
    emitted BENCH json, and the chaos accounting must land in the span."""
    import json

    from benchmarks.check_bench_json import check_file
    from benchmarks.run_all import main

    exit_code = main(["e2", "e16", "--profile", "smoke", "--chaos", "7",
                      "--jobs", "2", "--out-dir", str(tmp_path)])
    capsys.readouterr()
    assert exit_code == 0
    emitted = sorted(tmp_path.glob("BENCH_*.json"))
    assert len(emitted) == 2
    for path in emitted:
        assert check_file(str(path)) == []
        record = json.loads(path.read_text())
        assert record["spans"]["meta"]["chaos_seed"] == 7
        assert "chaos_injected" in record["spans"]["meta"]
