"""Local (one-hot) representation tests — Figure 3(a)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text import OneHotEncoder, Vocabulary


@pytest.fixture
def encoder():
    vocab = Vocabulary.from_documents([["man", "woman", "king", "queen"]])
    return OneHotEncoder(vocab)


class TestOneHot:
    def test_exactly_one_hot(self, encoder):
        vec = encoder.encode("king")
        assert vec.sum() == 1.0
        assert vec[encoder.vocabulary.id_of("king")] == 1.0

    def test_dim_equals_vocab_size(self, encoder):
        assert encoder.dim == 4

    def test_unknown_raises(self, encoder):
        with pytest.raises(KeyError):
            encoder.encode("emperor")

    def test_encode_many(self, encoder):
        matrix = encoder.encode_many(["man", "queen"])
        assert matrix.shape == (2, 4)
        assert np.all(matrix.sum(axis=1) == 1.0)

    def test_decode_roundtrip(self, encoder):
        for token in encoder.vocabulary.tokens:
            assert encoder.decode(encoder.encode(token)) == token

    def test_decode_shape_check(self, encoder):
        with pytest.raises(ValueError):
            encoder.decode(np.zeros(3))

    def test_local_representations_orthogonal(self, encoder):
        """The paper's point: one-hot vectors carry no similarity signal."""
        a = encoder.encode("king")
        b = encoder.encode("queen")
        assert a @ b == 0.0
