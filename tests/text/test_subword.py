"""Subword OOV embedding tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text import SkipGram, SubwordEmbeddings, cosine


@pytest.fixture(scope="module")
def subword_model():
    """Two context clusters so the embedding space is anisotropic enough
    for similarity comparisons to mean something."""
    rng = np.random.default_rng(0)
    medical = ["protein", "proteins", "biopsy", "assay", "sample"]
    finance = ["budget", "budgets", "invoice", "ledger", "payroll"]
    docs = []
    for _ in range(300):
        a, b = rng.choice(medical, size=2, replace=False)
        docs.append([str(a), "measured", "with", str(b), "in", "the", "lab"])
        c, d = rng.choice(finance, size=2, replace=False)
        docs.append([str(c), "approved", "with", str(d), "by", "accounting"])
    model = SkipGram(dim=16, epochs=5, rng=0).fit(docs)
    return SubwordEmbeddings(model)


class TestSubword:
    def test_in_vocab_returns_exact(self, subword_model):
        exact = subword_model.model.vector("protein")
        assert np.allclose(subword_model.vector("protein"), exact)

    def test_oov_lands_in_right_cluster(self, subword_model):
        oov = subword_model.vector("proteinx")  # unseen medical variant
        sim_medical = cosine(oov, subword_model.model.vector("protein"))
        sim_finance = cosine(oov, subword_model.model.vector("budget"))
        assert sim_medical > sim_finance

    def test_totally_unknown_is_zero_vector(self, subword_model):
        vec = subword_model.vector("zzqq")
        assert np.allclose(vec, 0.0)

    def test_coverage_range(self, subword_model):
        assert subword_model.coverage("protein") == 1.0
        assert subword_model.coverage("zzqq") == 0.0
        assert 0.0 < subword_model.coverage("proteinx") < 1.0

    def test_oov_vector_ignores_vocab(self, subword_model):
        backed_off = subword_model.oov_vector("protein")
        exact = subword_model.model.vector("protein")
        # Reconstruction approximates but rarely equals the exact vector.
        assert backed_off.shape == exact.shape

    def test_requires_fitted_model(self):
        with pytest.raises(RuntimeError):
            SubwordEmbeddings(SkipGram())
