"""Vector similarity + coherent-groups tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.text import (
    coherent_group_similarity,
    cosine,
    cosine_matrix,
    euclidean,
    mean_vector,
)


class TestCosine:
    def test_identical(self):
        v = np.array([1.0, 2.0])
        assert cosine(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_opposite(self):
        v = np.array([1.0, 2.0])
        assert cosine(v, -v) == pytest.approx(-1.0)

    def test_zero_vector_returns_zero(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_matrix_shape(self):
        m = cosine_matrix(np.ones((3, 4)), np.ones((5, 4)))
        assert m.shape == (3, 5)
        assert np.allclose(m, 1.0)

    def test_euclidean(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, 4, elements=st.floats(-5, 5, allow_nan=False)),
    arrays(np.float64, 4, elements=st.floats(-5, 5, allow_nan=False)),
)
def test_cosine_bounded_and_symmetric_property(a, b):
    s = cosine(a, b)
    assert -1.0001 <= s <= 1.0001
    assert s == pytest.approx(cosine(b, a))


class TestCoherentGroups:
    def _vector_fn(self):
        vectors = {
            "biopsy": np.array([1.0, 0.0]),
            "site": np.array([0.9, 0.1]),
            "sample": np.array([0.8, 0.2]),
            "finance": np.array([0.0, 1.0]),
            "budget": np.array([0.1, 0.9]),
        }
        return lambda w: vectors.get(w, np.zeros(2))

    def test_related_groups_score_high(self):
        fn = self._vector_fn()
        related = coherent_group_similarity(["biopsy", "site"], ["sample"], fn)
        unrelated = coherent_group_similarity(["biopsy", "site"], ["finance", "budget"], fn)
        assert related > unrelated

    def test_empty_group_returns_zero(self):
        fn = self._vector_fn()
        assert coherent_group_similarity([], ["biopsy"], fn) == 0.0

    def test_all_oov_returns_zero(self):
        fn = self._vector_fn()
        assert coherent_group_similarity(["zz"], ["qq"], fn) == 0.0

    def test_oov_words_ignored_in_mean(self):
        fn = self._vector_fn()
        with_oov = coherent_group_similarity(["biopsy", "zz"], ["sample"], fn)
        without = coherent_group_similarity(["biopsy"], ["sample"], fn)
        assert with_oov == pytest.approx(without)

    def test_mean_vector(self):
        assert np.allclose(mean_vector(np.array([[1.0, 3.0], [3.0, 5.0]])), [2.0, 4.0])
        assert mean_vector(np.zeros((0,))).size == 0
