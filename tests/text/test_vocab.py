"""Vocabulary tests, including hypothesis roundtrips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import Vocabulary


class TestVocabulary:
    def test_frequency_ordering(self):
        vocab = Vocabulary.from_documents([["b", "a", "a", "c", "a", "b"]])
        assert vocab.token_of(0) == "a"
        assert vocab.id_of("a") == 0

    def test_tie_break_alphabetical(self):
        vocab = Vocabulary.from_documents([["z", "y"]])
        assert vocab.tokens == ["y", "z"]

    def test_min_count_filters(self):
        vocab = Vocabulary.from_documents([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab
        assert len(vocab) == 1

    def test_encode_skip_unknown(self):
        vocab = Vocabulary.from_documents([["a", "b"]])
        assert vocab.encode(["a", "zzz", "b"]) == [vocab.id_of("a"), vocab.id_of("b")]

    def test_encode_strict_raises(self):
        vocab = Vocabulary.from_documents([["a"]])
        with pytest.raises(KeyError):
            vocab.encode(["zzz"], skip_unknown=False)

    def test_incremental_add(self):
        vocab = Vocabulary()
        vocab.add_documents([["a"]])
        vocab.add_documents([["b", "b"]])
        assert vocab.token_of(0) == "b"

    def test_frequencies_aligned_with_ids(self):
        vocab = Vocabulary.from_documents([["a", "a", "b", "c", "c", "c"]])
        freqs = vocab.frequencies()
        assert freqs == [3, 2, 1]

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)

    def test_get_with_default(self):
        vocab = Vocabulary.from_documents([["a"]])
        assert vocab.get("missing") is None
        assert vocab.get("missing", -1) == -1


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=8),
        min_size=1,
        max_size=10,
    )
)
def test_encode_decode_roundtrip_property(documents):
    vocab = Vocabulary.from_documents(documents)
    for doc in documents:
        ids = vocab.encode(doc)
        assert vocab.decode(ids) == doc  # every token in-vocab at min_count 1


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(st.sampled_from("abcde"), min_size=1, max_size=6),
        min_size=1,
        max_size=8,
    )
)
def test_frequencies_monotone_property(documents):
    vocab = Vocabulary.from_documents(documents)
    freqs = vocab.frequencies()
    assert freqs == sorted(freqs, reverse=True)
