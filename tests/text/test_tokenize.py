"""Tokenizer tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import char_ngrams, sentence_split, value_tokenize, word_tokenize


class TestWordTokenize:
    def test_basic(self):
        assert word_tokenize("Data Curation!") == ["data", "curation"]

    def test_keeps_numbers(self):
        assert word_tokenize("room 101") == ["room", "101"]

    def test_apostrophes(self):
        assert word_tokenize("Tukey's fences") == ["tukey's", "fences"]

    def test_no_lowercase(self):
        assert word_tokenize("Data", lowercase=False) == ["Data"]

    def test_empty(self):
        assert word_tokenize("") == []


class TestValueTokenize:
    def test_punctuation_preserved(self):
        assert value_tokenize("J. Smith-Jones") == ["j", ".", "smith", "-", "jones"]

    def test_digit_runs(self):
        assert value_tokenize("555-1234") == ["555", "-", "1234"]


class TestCharNgrams:
    def test_boundary_markers(self):
        grams = char_ngrams("cat", 3, 3)
        assert "<ca" in grams and "at>" in grams

    def test_no_boundary(self):
        assert char_ngrams("cat", 3, 3, boundary=False) == ["cat"]

    def test_range(self):
        grams = char_ngrams("ab", 2, 3)
        assert set(grams) == {"<a", "ab", "b>", "<ab", "ab>"}

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            char_ngrams("x", 3, 2)

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=10))
    def test_ngram_lengths_property(self, token):
        for gram in char_ngrams(token, 3, 5):
            assert 3 <= len(gram) <= 5


class TestSentenceSplit:
    def test_splits_on_terminators(self):
        assert sentence_split("One. Two! Three?") == ["One.", "Two!", "Three?"]

    def test_no_terminator(self):
        assert sentence_split("no punctuation here") == ["no punctuation here"]
