"""Skip-gram trainer tests: semantics, persistence, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text import SkipGram, cosine


@pytest.fixture(scope="module")
def country_model():
    """A model trained on a corpus with strong country-capital structure."""
    rng = np.random.default_rng(0)
    pairs = [("france", "paris"), ("germany", "berlin"), ("italy", "rome"),
             ("japan", "tokyo"), ("egypt", "cairo")]
    noise = ["the weather is fine today", "we had lunch in the office",
             "music and art fill the gallery"]
    docs = []
    for _ in range(500):
        country, capital = pairs[rng.integers(len(pairs))]
        docs.append(f"the capital of {country} is {capital}".split())
        docs.append(f"{capital} lies in {country}".split())
    for _ in range(200):
        docs.append(noise[rng.integers(len(noise))].split())
    return SkipGram(dim=24, window=4, epochs=8, rng=0).fit(docs)


class TestTraining:
    def test_vector_shape(self, country_model):
        assert country_model.vector("france").shape == (24,)

    def test_contains(self, country_model):
        assert "france" in country_model
        assert "atlantis" not in country_model

    def test_unknown_raises(self, country_model):
        with pytest.raises(KeyError):
            country_model.vector("atlantis")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SkipGram().vector("x")

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            SkipGram(min_count=5).fit([["rare"]])

    def test_first_order_similarity_tracks_cooccurrence(self, country_model):
        """The SGNS objective itself must score true pairs above false ones."""
        paired = country_model.first_order_similarity("france", "paris")
        unpaired = country_model.first_order_similarity("france", "tokyo")
        assert paired > unpaired

    def test_first_order_similarity_unknown_token(self, country_model):
        assert country_model.first_order_similarity("france", "atlantis") == 0.0

    def test_semantic_words_separate_from_noise(self, country_model):
        related = cosine(country_model.vector("france"), country_model.vector("paris"))
        noise = cosine(country_model.vector("france"), country_model.vector("music"))
        assert related > noise

    def test_most_similar_excludes_query(self, country_model):
        results = country_model.most_similar("france", topn=5)
        assert all(token != "france" for token, _ in results)
        assert all(-1.001 <= score <= 1.001 for _, score in results)

    def test_vectors_for_skips_unknown(self, country_model):
        matrix = country_model.vectors_for(["france", "atlantis"])
        assert matrix.shape == (1, 24)

    def test_subsampling_runs(self):
        docs = [["the", "the", "cat"], ["the", "dog", "the"]] * 50
        model = SkipGram(dim=8, epochs=2, subsample=1e-2, rng=0).fit(docs)
        assert "the" in model

    def test_deterministic_given_seed(self):
        docs = [["a", "b", "c"], ["b", "c", "d"]] * 20
        m1 = SkipGram(dim=8, epochs=3, rng=7).fit(docs)
        m2 = SkipGram(dim=8, epochs=3, rng=7).fit(docs)
        assert np.allclose(m1.vectors_, m2.vectors_)


class TestAnalogyAndPersistence:
    def test_analogy_interface(self, country_model):
        results = country_model.analogy("france", "paris", "germany", topn=3)
        assert len(results) == 3
        assert all(t not in {"france", "paris", "germany"} for t, _ in results)

    def test_save_load_roundtrip(self, country_model, tmp_path):
        path = tmp_path / "model.npz"
        country_model.save(str(path))
        loaded = SkipGram.load(str(path))
        assert np.allclose(loaded.vector("france"), country_model.vector("france"))
        assert loaded.vocabulary.tokens == country_model.vocabulary.tokens

    def test_loaded_model_answers_queries(self, country_model, tmp_path):
        path = tmp_path / "model.npz"
        country_model.save(str(path))
        loaded = SkipGram.load(str(path))
        assert loaded.most_similar("france", topn=2)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"dim": 0}, {"window": 0}, {"negatives": 0}, {"epochs": 0},
        {"learning_rate": 0.0},
    ])
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            SkipGram(**kwargs)
