"""Cross-module property-based tests on core invariants (hypothesis).

These complement the per-module suites: each property must hold for *any*
generated input, not just the curated cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cleaning import FDRepairer, MeanModeImputer, TableEncoder, consolidate_majority
from repro.data import ErrorGenerator, FunctionalDependency, Table, violation_rate
from repro.er import LSHBlocker, connected_components
from repro.transform import Synthesizer

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

small_value = st.sampled_from(["a", "b", "c", "x1", "y2"])
rows_strategy = st.lists(
    st.tuples(small_value, small_value, small_value), min_size=2, max_size=15
)


def _table(rows) -> Table:
    return Table("t", ["p", "q", "r"], rows=[list(r) for r in rows])


# ---------------------------------------------------------------------- #
# FD repair
# ---------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_repair_always_restores_fd(rows):
    table = _table(rows)
    fd = FunctionalDependency(("p",), "q")
    repaired, _ = FDRepairer([fd]).repair(table)
    assert fd.holds(repaired)


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_repair_is_idempotent(rows):
    table = _table(rows)
    repairer = FDRepairer([FunctionalDependency(("p",), "q")])
    once, _ = repairer.repair(table)
    twice, second_report = repairer.repair(once)
    assert len(second_report) == 0
    assert once.equals(twice)


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_repair_only_touches_rhs_column(rows):
    table = _table(rows)
    repaired, report = FDRepairer([FunctionalDependency(("p",), "q")]).repair(table)
    assert all(r.column == "q" for r in report.repairs)
    assert repaired.column("p") == table.column("p")
    assert repaired.column("r") == table.column("r")


# ---------------------------------------------------------------------- #
# error generation
# ---------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.floats(0.0, 0.5), st.integers(0, 100))
def test_errorgen_report_matches_diff(rows, rate, seed):
    table = _table(rows)
    dirty, report = ErrorGenerator(rng=seed).corrupt(
        table, typo_rate=rate, null_rate=rate
    )
    diff_cells = {
        (i, c)
        for i in range(table.num_rows)
        for c in table.columns
        if dirty.cell(i, c) != table.cell(i, c)
    }
    assert diff_cells == report.cells()


# ---------------------------------------------------------------------- #
# imputation
# ---------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.integers(0, 50))
def test_mean_mode_imputer_leaves_no_missing(rows, seed):
    table = _table(rows)
    dirty, _ = ErrorGenerator(rng=seed).corrupt(table, null_rate=0.3)
    # At least one observed value per column is needed to fill it.
    assume(all(
        any(v is not None for v in dirty.column(c)) for c in dirty.columns
    ))
    filled = MeanModeImputer().fit_transform(dirty)
    assert filled.missing_rate() == 0.0


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_encoder_decode_roundtrip(rows):
    table = _table(rows)
    encoder = TableEncoder().fit(table)
    matrix, mask = encoder.encode(table)
    for i in range(table.num_rows):
        for column in table.columns:
            assert encoder.decode_cell(matrix[i], column) == str(table.cell(i, column))


# ---------------------------------------------------------------------- #
# consolidation
# ---------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["john", "j smith", "john smith"]), min_size=1, max_size=6))
def test_golden_value_comes_from_cluster(values):
    cluster = [{"name": v} for v in values]
    golden = consolidate_majority(cluster, ["name"])
    assert golden["name"] in values


# ---------------------------------------------------------------------- #
# clustering
# ---------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 12),
    st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=15),
)
def test_connected_components_is_partition(n, raw_edges):
    items = [f"i{k}" for k in range(n)]
    edges = {
        (f"i{a % n}", f"i{b % n}") for a, b in raw_edges if a % n != b % n
    }
    clusters = connected_components(items, edges)
    flat = [x for cluster in clusters for x in cluster]
    assert sorted(flat) == sorted(items)          # cover
    assert len(flat) == len(set(flat))            # disjoint
    for a, b in edges:                            # edges respected
        cluster_of = {x: i for i, c in enumerate(clusters) for x in c}
        assert cluster_of[a] == cluster_of[b]


# ---------------------------------------------------------------------- #
# blocking
# ---------------------------------------------------------------------- #


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 20), st.integers(0, 1000))
def test_lsh_identical_embeddings_always_collide(n, seed):
    rng = np.random.default_rng(seed)
    emb = rng.normal(size=(n, 6))
    ids_a = [f"a{i}" for i in range(n)]
    ids_b = [f"b{i}" for i in range(n)]
    blocker = LSHBlocker(n_bits=16, n_bands=4, rng=seed)
    pairs = blocker.candidate_pairs(emb, ids_a, emb.copy(), ids_b)
    for i in range(n):
        assert (f"a{i}", f"b{i}") in pairs


# ---------------------------------------------------------------------- #
# program synthesis
# ---------------------------------------------------------------------- #

name_strategy = st.from_regex(r"[a-z]{2,6} [a-z]{2,6}", fullmatch=True)


@settings(max_examples=30, deadline=None)
@given(st.lists(name_strategy, min_size=2, max_size=4, unique=True))
def test_synthesized_program_consistent_with_examples(inputs):
    # Ground truth: swap the two tokens.
    examples = [(s, f"{s.split()[1]} {s.split()[0]}") for s in inputs]
    program = Synthesizer().synthesize(examples)
    assert program is not None
    assert program.consistent_with(examples)


@settings(max_examples=30, deadline=None)
@given(st.lists(name_strategy, min_size=2, max_size=3, unique=True))
def test_synthesis_generalises_token_identity(inputs):
    examples = [(s, s.split()[0]) for s in inputs]
    program = Synthesizer().synthesize(examples)
    assert program is not None
    assert program.evaluate("zulu yankee") == "zulu"
