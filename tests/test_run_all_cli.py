"""run_all CLI contract: bad invocations must fail loudly, not partially.

Regression suite for the failure mode where a typo'd experiment id (or a
nonsense ``--jobs``) silently dropped work: the CLI must refuse the whole
run with a non-zero exit code and emit nothing.
"""

from __future__ import annotations

import pytest

pytest.importorskip("benchmarks.common", reason="requires repo-root cwd")

from benchmarks.run_all import EXPERIMENTS, main


def test_unknown_experiment_exits_nonzero(tmp_path, capsys):
    exit_code = main(["e99", "--out-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "e99" in captured.err
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_mixed_known_and_unknown_refuses_whole_run(tmp_path, capsys):
    # The known id must NOT run: a typo'd batch would otherwise produce a
    # partial result set that looks complete.
    exit_code = main(["e2", "tpyo", "--profile", "smoke", "--out-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "tpyo" in captured.err
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_experiment_ids_case_insensitive_in_error(capsys):
    # Uppercase ids are lowered before matching; a genuinely unknown one
    # still names every valid choice so the fix is one glance away.
    exit_code = main(["E99"])
    captured = capsys.readouterr()
    assert exit_code == 2
    for exp_id in EXPERIMENTS:
        assert exp_id in captured.err


def test_nonpositive_jobs_rejected(tmp_path, capsys):
    exit_code = main(["e2", "--jobs", "0", "--out-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "--jobs" in captured.err
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_list_prints_registry_and_runs_nothing(tmp_path, capsys):
    exit_code = main(["--list", "--out-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 0
    for exp_id, (module_name, _title) in EXPERIMENTS.items():
        assert exp_id in captured.out
        assert module_name in captured.out
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_list_wins_over_experiment_ids(tmp_path, capsys):
    # --list is a pure registry dump: even alongside (unknown) ids it
    # must exit 0 without validating or running anything.
    exit_code = main(["--list", "e99", "--out-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "e99" not in captured.err
    assert list(tmp_path.glob("BENCH_*.json")) == []
