"""Metrics instruments: thread safety, semantics, registry lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    collecting,
    metrics_enabled,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_concurrent_increments_lose_nothing(self):
        counter = Counter("c")
        n_threads, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        assert gauge.value is None
        gauge.set(1)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_summary_stats(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0, 10.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 16.0
        assert hist.min == 1.0
        assert hist.max == 10.0
        assert hist.mean == 4.0

    def test_log2_buckets(self):
        hist = Histogram("h")
        hist.observe(0.0)     # <=0 bucket
        hist.observe(1.0)     # 2**0 -> bucket 0
        hist.observe(3.0)     # ceil(log2 3) = 2
        hist.observe(1000.0)  # ceil(log2 1000) = 10
        buckets = hist.to_dict()["log2_buckets"]
        assert buckets == {"<=0": 1, "0": 1, "2": 1, "10": 1}

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram("h").to_dict()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None and snapshot["max"] is None

    def test_concurrent_observations(self):
        hist = Histogram("h")
        n_threads, per_thread = 8, 2000

        def work():
            for i in range(per_thread):
                hist.observe(float(i + 1))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n_threads * per_thread
        assert hist.min == 1.0
        assert hist.max == float(per_thread)
        assert sum(hist.to_dict()["log2_buckets"].values()) == hist.count


class TestSeries:
    def test_bounded(self):
        series = Series("s", maxlen=3)
        for value in (1, 2, 3, 4, 5):
            series.append(value)
        assert series.values == [1.0, 2.0, 3.0]
        assert series.dropped == 2


class TestRegistry:
    def test_disabled_by_default(self):
        assert MetricsRegistry().enabled is False

    def test_create_on_demand_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")

    def test_record_op(self):
        registry = MetricsRegistry()
        registry.record_op("add", 64)
        registry.record_op("add", 64)
        registry.record_op("mul", 8)
        assert registry.counter("autograd.forward.add").value == 2
        assert registry.counter("autograd.nodes").value == 3
        assert registry.counter("autograd.bytes_allocated").value == 136

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.enable()
        registry.reset()
        assert registry.counter("x").value == 0
        assert registry.enabled is True  # reset does not flip the switch

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.5)
        registry.series("s").append(0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["gauges"] == {"g": 2.0}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["series"]["s"]["values"] == [0.1]

    def test_concurrent_create_and_increment(self):
        registry = MetricsRegistry()
        n_threads = 8

        def work(i: int):
            for j in range(1000):
                registry.counter(f"shared.{j % 5}").inc()

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(registry.counter(f"shared.{k}").value for k in range(5))
        assert total == n_threads * 1000


class TestCollecting:
    def test_enables_then_restores(self):
        assert not metrics_enabled()
        with collecting() as registry:
            assert metrics_enabled()
            registry.counter("tmp").inc()
        assert not metrics_enabled()

    def test_reset_option_clears_previous_counts(self):
        REGISTRY.counter("leftover").inc()
        with collecting(reset=True):
            assert REGISTRY.counter("leftover").value == 0
        assert not metrics_enabled()

    def test_restores_even_on_exception(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert not metrics_enabled()
