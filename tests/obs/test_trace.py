"""Span tracing: nesting, exception safety, root draining."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import Span, current_span, drain_roots, span


@pytest.fixture(autouse=True)
def clean_roots():
    drain_roots()
    yield
    drain_roots()


class TestSpanNesting:
    def test_lexical_nesting_builds_tree(self):
        with span("outer") as outer:
            with span("middle") as middle:
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in middle.children] == ["inner"]
        roots = drain_roots()
        assert [r.name for r in roots] == ["outer"]

    def test_current_span_tracks_innermost(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() is a
            with span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_meta_kwargs_recorded(self):
        with span("job", table="citations", rows=10) as s:
            pass
        assert s.meta == {"table": "citations", "rows": 10}

    def test_durations_cover_children(self):
        with span("outer") as outer:
            with span("inner") as inner:
                time.sleep(0.01)
        assert inner.duration >= 0.01
        assert outer.duration >= inner.duration
        assert outer.closed and inner.closed


class TestExceptionSafety:
    def test_span_closes_when_body_raises(self):
        with pytest.raises(ValueError):
            with span("doomed") as s:
                raise ValueError("boom")
        assert s.closed
        assert s.duration >= 0
        assert [r.name for r in drain_roots()] == ["doomed"]
        assert current_span() is None

    def test_nested_raise_closes_whole_stack(self):
        with pytest.raises(RuntimeError):
            with span("outer") as outer:
                with span("inner"):
                    raise RuntimeError("boom")
        assert outer.closed
        assert all(c.closed for c in outer.children)
        assert current_span() is None


class TestDrainRoots:
    def test_drain_clears(self):
        with span("one"):
            pass
        with span("two"):
            pass
        assert [r.name for r in drain_roots()] == ["one", "two"]
        assert drain_roots() == []

    def test_open_span_is_not_a_root_yet(self):
        with span("open"):
            assert drain_roots() == []

    def test_threads_have_independent_trees(self):
        seen: dict[str, list[str]] = {}

        def work(tag: str):
            with span(tag):
                pass
            seen[tag] = [r.name for r in drain_roots()]

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(4):
            assert seen[f"t{i}"] == [f"t{i}"]


class TestSpanHelpers:
    def test_to_dict_round_trip_shape(self):
        with span("root", profile="smoke") as root:
            with span("child"):
                pass
        data = root.to_dict()
        assert data["name"] == "root"
        assert data["meta"] == {"profile": "smoke"}
        assert data["children"][0]["name"] == "child"
        assert data["seconds"] >= data["children"][0]["seconds"]

    def test_find_depth_first(self):
        with span("a") as a:
            with span("b"):
                with span("c"):
                    pass
        assert a.find("c").name == "c"
        assert a.find("missing") is None

    def test_tree_rendering(self):
        with span("root") as root:
            with span("leaf"):
                pass
        text = root.tree()
        lines = text.splitlines()
        assert lines[0].startswith("root:")
        assert lines[1].startswith("  leaf:")

    def test_open_span_duration_is_live(self):
        s = Span(name="live", start=time.perf_counter())
        first = s.duration
        time.sleep(0.005)
        assert s.duration > first
