"""Instrumentation must observe, never perturb.

The core acceptance test for ``repro.obs``: training DeepER with the
metrics registry enabled produces bit-identical losses and predictions to
training with it disabled.  Plus positive checks that the autograd/trainer
instrumentation actually records when switched on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import DeepER
from repro.nn.tensor import Tensor
from repro.obs import REGISTRY, collecting, drain_roots, metrics_enabled


@pytest.fixture(autouse=True)
def metrics_off_between_tests():
    REGISTRY.disable()
    yield
    REGISTRY.disable()
    REGISTRY.reset()
    drain_roots()


def _fit_deeper(small_benchmark, word_model, epochs: int = 4):
    labeled = small_benchmark.labeled_pairs(negative_ratio=3, rng=1)
    triples = [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]
    train, test = triples[:60], triples[60:90]
    matcher = DeepER(
        word_model, small_benchmark.compare_columns, composition="mean", rng=0
    ).fit(train, epochs=epochs)
    pairs = [(a, b) for a, b, _ in test]
    return matcher.loss_history_, matcher.predict_proba(pairs)


class TestMetricsDoNotPerturb:
    def test_deeper_bit_identical_on_vs_off(self, small_benchmark, word_model):
        assert not metrics_enabled()
        losses_off, proba_off = _fit_deeper(small_benchmark, word_model)
        with collecting(reset=True):
            losses_on, proba_on = _fit_deeper(small_benchmark, word_model)
        assert losses_off == losses_on  # bit-identical epoch losses
        np.testing.assert_array_equal(proba_off, proba_on)

    def test_tensor_math_bit_identical_on_vs_off(self):
        def compute():
            x = Tensor(np.linspace(-1, 1, 12).reshape(3, 4), requires_grad=True)
            w = Tensor(np.arange(8, dtype=float).reshape(4, 2) / 7, requires_grad=True)
            loss = ((x @ w).tanh() ** 2).sum()
            loss.backward()
            return loss.data.copy(), x.grad.copy(), w.grad.copy()

        loss_off, gx_off, gw_off = compute()
        with collecting(reset=True):
            loss_on, gx_on, gw_on = compute()
        np.testing.assert_array_equal(loss_off, loss_on)
        np.testing.assert_array_equal(gx_off, gx_on)
        np.testing.assert_array_equal(gw_off, gw_on)


class TestInstrumentationRecords:
    def test_autograd_counters_populate(self):
        with collecting(reset=True):
            x = Tensor(np.ones((2, 3)), requires_grad=True)
            y = (x * 2.0 + 1.0).sum()
            y.backward()
            snapshot = REGISTRY.snapshot()
        counters = snapshot["counters"]
        assert counters["autograd.forward.mul"] >= 1
        assert counters["autograd.forward.add"] >= 1
        assert counters["autograd.forward.sum"] >= 1
        assert counters["autograd.nodes"] >= 3
        assert counters["autograd.bytes_allocated"] > 0
        assert counters["autograd.backward_passes"] == 1
        assert counters["autograd.backward.mul"] >= 1
        assert snapshot["histograms"]["autograd.tape_length"]["count"] == 1

    def test_deeper_loss_curve_recorded(self, small_benchmark, word_model):
        with collecting(reset=True):
            losses, _ = _fit_deeper(small_benchmark, word_model, epochs=3)
            snapshot = REGISTRY.snapshot()
        assert snapshot["series"]["deeper.loss_curve"]["values"] == losses
        assert len(losses) == 3

    def test_disabled_registry_records_nothing(self):
        REGISTRY.reset()
        assert not metrics_enabled()
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3.0).sum().backward()
        snapshot = REGISTRY.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
