"""BENCH_*.json emission: round-trip, schema validation, sanitization."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from benchmarks.check_bench_json import check_files, main as check_main
from benchmarks.common import emit_bench
from repro.obs import build_record, sanitize, span, validate_record, write_record


def _minimal_record(**overrides) -> dict:
    record = build_record(
        [{"metric": 1.0}], "e1", title="demo", profile="smoke",
        wall_time_seconds=0.5,
    )
    record.update(overrides)
    return record


class TestSanitize:
    def test_plain_types_pass_through(self):
        assert sanitize({"a": 1, "b": "x", "c": None, "d": True}) == {
            "a": 1, "b": "x", "c": None, "d": True,
        }

    def test_non_finite_floats_become_none(self):
        assert sanitize(float("nan")) is None
        assert sanitize(float("inf")) is None
        assert sanitize([1.0, float("nan")]) == [1.0, None]

    def test_numpy_scalars_and_arrays(self):
        assert sanitize(np.float64(2.5)) == 2.5
        assert sanitize(np.int64(3)) == 3
        assert sanitize(np.array([1, 2])) == [1, 2]

    def test_unknown_objects_stringified(self):
        class Odd:
            def __repr__(self):
                return "odd!"

        assert sanitize(Odd()) == "odd!"


class TestRecordRoundTrip:
    def test_emit_and_reload(self, tmp_path):
        with span("exp", profile="smoke") as exp_span:
            with span("stage"):
                pass
        path = emit_bench(
            [{"f1": 0.9, "bad": float("nan")}], "e1",
            title="demo", profile="smoke", wall_time_seconds=1.25,
            span=exp_span, out_dir=tmp_path,
        )
        assert path.name == "BENCH_E1.json"
        record = json.loads(path.read_text())
        assert record["experiment_id"] == "e1"
        assert record["profile"] == "smoke"
        assert record["wall_time_seconds"] == 1.25
        assert record["rows"] == [{"f1": 0.9, "bad": None}]
        assert record["spans"]["name"] == "exp"
        assert record["spans"]["children"][0]["name"] == "stage"
        assert validate_record(record, source=path.name) == []

    def test_written_json_is_strict(self, tmp_path):
        record = _minimal_record()
        record["rows"] = [{"x": float("inf")}]
        with pytest.raises(ValueError):
            write_record(record, tmp_path)  # sanitize() was bypassed

    def test_timestamps_are_monotonic(self):
        record = _minimal_record()
        assert record["started_unix"] <= record["finished_unix"]
        assert record["finished_unix"] <= record["generated_unix"]

    def test_empty_experiment_id_rejected(self):
        with pytest.raises(ValueError):
            build_record([], "")


class TestValidateRecord:
    def test_valid_record_passes(self):
        assert validate_record(_minimal_record()) == []

    def test_missing_key_reported(self):
        record = _minimal_record()
        del record["git_sha"]
        problems = validate_record(record)
        assert any("git_sha" in p for p in problems)

    def test_wrong_type_reported(self):
        problems = validate_record(_minimal_record(rows="nope"))
        assert any("rows" in p for p in problems)

    def test_non_dict_rejected(self):
        assert validate_record([1, 2]) != []

    def test_schema_version_mismatch(self):
        problems = validate_record(_minimal_record(schema_version=99))
        assert any("schema_version" in p for p in problems)

    def test_timestamp_order_enforced(self):
        record = _minimal_record()
        record["started_unix"] = record["finished_unix"] + 10
        problems = validate_record(record)
        assert any("started_unix" in p for p in problems)

        record = _minimal_record()
        record["generated_unix"] = record["finished_unix"] - 10
        problems = validate_record(record)
        assert any("generated_unix" in p for p in problems)

    def test_negative_wall_time_rejected(self):
        problems = validate_record(_minimal_record(wall_time_seconds=-1.0))
        assert any("wall_time_seconds" in p for p in problems)

    def test_non_dict_row_rejected(self):
        problems = validate_record(_minimal_record(rows=[{"ok": 1}, "bad"]))
        assert any("rows[1]" in p for p in problems)

    def test_span_validation(self):
        good = {"name": "s", "seconds": 1.0, "meta": {}, "children": []}
        assert validate_record(_minimal_record(spans=good)) == []
        missing = {"name": "s", "seconds": 1.0}
        assert validate_record(_minimal_record(spans=missing)) != []
        negative = {"name": "s", "seconds": -1.0, "meta": {}, "children": []}
        assert validate_record(_minimal_record(spans=negative)) != []

    def test_children_cannot_outlive_parent(self):
        spans = {
            "name": "parent", "seconds": 1.0, "meta": {},
            "children": [
                {"name": "kid", "seconds": 5.0, "meta": {}, "children": []},
            ],
        }
        problems = validate_record(_minimal_record(spans=spans))
        assert any("exceeds" in p for p in problems)


class TestCheckBenchJsonCli:
    def test_valid_file_ok(self, tmp_path, capsys):
        path = write_record(_minimal_record(), tmp_path)
        assert check_main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        path = write_record(_minimal_record(schema_version=99), tmp_path)
        assert check_main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_missing_file_reported(self):
        problems = check_files(["/nonexistent/BENCH_X.json"])
        assert any("not found" in p for p in problems)

    def test_corrupt_json_reported(self, tmp_path):
        path = tmp_path / "BENCH_BAD.json"
        path.write_text("{not json")
        problems = check_files([str(path)])
        assert any("invalid JSON" in p for p in problems)

    def test_no_files_found(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert check_main([]) == 1
        assert "no BENCH_*.json" in capsys.readouterr().out
