"""Property tests for the deterministic :class:`repro.loop.LabelQueue`.

The queue's contract: band-filtered admission, ever-seen content dedup
(a consumed pair can never re-enter), non-mutating selection ordered by
distance to the decision boundary, and explicit consumption — exactly
what lets a killed retrain leave the queue untouched.
"""

from __future__ import annotations

import pytest

from repro.loop import LabelQueue, pair_content_key
from repro.serve.cache import content_key
from repro.serve.service import MatchAnswer


def answer(record, candidate_id="a-1", probability=0.5):
    return MatchAnswer(
        query_key=content_key(record),
        candidates=(candidate_id,),
        best_id=candidate_id,
        probability=probability,
        matched=probability >= 0.5,
        embedding_cached=False,
        scores_cached=0,
    )


def no_candidates(record):
    return MatchAnswer(
        query_key=content_key(record), candidates=(), best_id=None,
        probability=0.0, matched=False, embedding_cached=False, scores_cached=0,
    )


@pytest.fixture()
def queue():
    return LabelQueue(band=(0.25, 0.75))


@pytest.fixture()
def record():
    return {"title": "deep learning for data curation", "year": "2020"}


class TestAdmission:
    def test_band_must_be_an_ordered_unit_subinterval(self):
        for bad in [(-0.1, 0.5), (0.5, 1.1), (0.8, 0.2)]:
            with pytest.raises(ValueError, match="band"):
                LabelQueue(band=bad)

    def test_uncertain_pair_is_admitted(self, queue, record):
        assert queue.offer(record, answer(record, probability=0.5), day=1)
        assert len(queue) == 1
        assert queue.emitted_total == 1

    def test_band_bounds_are_inclusive(self, queue, record):
        low = {"title": "low", "year": "1"}
        high = {"title": "high", "year": "2"}
        assert queue.offer(low, answer(low, probability=0.25), day=1)
        assert queue.offer(high, answer(high, probability=0.75), day=1)

    def test_confident_answers_are_rejected(self, queue, record):
        confident = {"title": "confident", "year": "3"}
        assert not queue.offer(record, answer(record, probability=0.9), day=1)
        assert not queue.offer(confident, answer(confident, probability=0.1), day=1)
        assert len(queue) == 0
        assert queue.emitted_total == 0

    def test_answers_with_no_candidates_are_rejected(self, queue, record):
        assert not queue.offer(record, no_candidates(record), day=1)
        assert len(queue) == 0

    def test_same_pair_is_admitted_at_most_once(self, queue, record):
        assert queue.offer(record, answer(record), day=1)
        assert not queue.offer(record, answer(record, probability=0.6), day=2)
        assert len(queue) == 1
        assert queue.emitted_total == 1

    def test_same_record_different_candidate_is_a_different_pair(
        self, queue, record
    ):
        assert queue.offer(record, answer(record, candidate_id="a-1"), day=1)
        assert queue.offer(record, answer(record, candidate_id="a-2"), day=1)
        assert len(queue) == 2

    def test_consumed_pairs_never_reenter(self, queue, record):
        queue.offer(record, answer(record), day=1)
        queue.consume(queue.select(1))
        assert len(queue) == 0
        assert not queue.offer(record, answer(record), day=2)
        assert queue.emitted_total == 1

    def test_ingest_returns_the_admit_count(self, queue):
        records = [{"title": f"r{i}", "year": str(i)} for i in range(4)]
        answered = [
            (records[0], answer(records[0], probability=0.5)),   # admitted
            (records[1], answer(records[1], probability=0.9)),   # confident
            (records[2], no_candidates(records[2])),             # no best
            (records[3], answer(records[3], probability=0.3)),   # admitted
        ]
        assert queue.ingest(answered, day=1) == 2
        assert len(queue) == 2


class TestSelection:
    def build(self, queue, probabilities):
        records = []
        for i, p in enumerate(probabilities):
            record = {"title": f"r{i}", "year": str(i)}
            assert queue.offer(record, answer(record, probability=p), day=1)
            records.append(record)
        return records

    def test_select_orders_by_distance_to_boundary_then_sequence(self, queue):
        self.build(queue, [0.7, 0.5, 0.3, 0.52])
        selected = queue.select(4)
        # 0.5 (dist 0) < 0.52 (0.02) < 0.7 == 0.3 (0.2, seq breaks the tie)
        assert [e.probability for e in selected] == [0.5, 0.52, 0.7, 0.3]

    def test_select_does_not_mutate_and_clamps_k(self, queue):
        self.build(queue, [0.5, 0.6])
        assert len(queue.select(10)) == 2
        assert queue.select(0) == []
        assert queue.select(-3) == []
        assert len(queue) == 2
        assert queue.select(2) == queue.select(2)

    def test_consume_removes_exactly_the_selected_entries(self, queue):
        self.build(queue, [0.5, 0.6, 0.7])
        batch = queue.select(2)
        queue.consume(batch)
        remaining = queue.pending()
        assert len(remaining) == 1
        assert remaining[0].probability == 0.7
        queue.consume(batch)  # re-consuming is a no-op
        assert len(queue) == 1

    def test_pending_is_in_admission_order(self, queue):
        self.build(queue, [0.7, 0.5, 0.6])
        assert [e.probability for e in queue.pending()] == [0.7, 0.5, 0.6]
        assert [e.seq for e in queue.pending()] == [0, 1, 2]


class TestEntryIdentity:
    def test_pair_key_is_the_score_cache_key(self, queue, record):
        queue.offer(record, answer(record, candidate_id="a-7"), day=2)
        entry = queue.pending()[0]
        assert entry.pair_key == pair_content_key(record, "a-7")
        assert entry.pair_key == (content_key(record), "a-7")
        assert entry.day == 2
        assert entry.record is record

    def test_uncertainty_is_negative_distance_to_boundary(self, queue, record):
        queue.offer(record, answer(record, probability=0.6), day=1)
        entry = queue.pending()[0]
        assert entry.uncertainty == pytest.approx(-0.1)
