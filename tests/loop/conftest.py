"""Loop-suite fixtures: a live service plus everything needed to retrain it.

Mirrors the serving suite's module-scoped trained matcher + built index,
and adds the loop's inputs: a matcher factory (fresh untrained
candidates), a distinctly-trained candidate (different fingerprint, same
columns/composition), the seeded eval split the promotion rule scores,
and a content-keyed crowd oracle wired to the benchmark's gold matches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import DeepER
from repro.loop import ContinuousCurationLoop, CrowdOracle, LoopConfig
from repro.serve import BlockingIndex, MatchService, ServerConfig


@pytest.fixture(scope="module")
def train_triples(small_benchmark):
    labeled = small_benchmark.labeled_pairs(negative_ratio=3, rng=1)
    return [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]


@pytest.fixture(scope="module")
def matcher_factory(word_model, small_benchmark):
    def factory(seed: int) -> DeepER:
        return DeepER(
            word_model, small_benchmark.compare_columns, composition="sif",
            rng=seed,
        )
    return factory


@pytest.fixture(scope="module")
def seed_labels(train_triples):
    """A deliberately small seed set: leaves the matcher room to learn."""
    return train_triples[:20]


@pytest.fixture(scope="module")
def trained_matcher(matcher_factory, seed_labels):
    return matcher_factory(0).fit(seed_labels, epochs=3)


@pytest.fixture(scope="module")
def candidate_matcher(matcher_factory, train_triples):
    """A second trained matcher: same columns/composition, different weights."""
    return matcher_factory(1).fit(train_triples[:60], epochs=4)


@pytest.fixture(scope="module")
def reference_records(small_benchmark):
    records = [
        small_benchmark.table_a.row_dict(i)
        for i in range(len(small_benchmark.table_a))
    ]
    ids = [str(v) for v in small_benchmark.table_a.column(small_benchmark.id_column)]
    return records, ids


@pytest.fixture(scope="module")
def query_records(small_benchmark):
    return [
        small_benchmark.table_b.row_dict(i)
        for i in range(len(small_benchmark.table_b))
    ]


@pytest.fixture(scope="module")
def built_index(trained_matcher, reference_records):
    records, ids = reference_records
    return BlockingIndex(
        trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
    ).build(records, ids, jobs=1)


@pytest.fixture()
def service(trained_matcher, built_index):
    """A fresh (cold-cache) unsharded service per test."""
    return MatchService(trained_matcher, built_index, jobs=1)


@pytest.fixture(scope="module")
def eval_split(train_triples):
    held_out = train_triples[200:]
    eval_pairs = [(a, b) for a, b, _ in held_out]
    eval_labels = np.array([y for _, _, y in held_out])
    return eval_pairs, eval_labels


@pytest.fixture(scope="module")
def truth(small_benchmark):
    id_column = small_benchmark.id_column

    def _truth(entry) -> int:
        return int(
            small_benchmark.is_match(entry.candidate_id, str(entry.record[id_column]))
        )

    return _truth


@pytest.fixture(scope="module")
def oracle(truth):
    return CrowdOracle(truth, seed=3)


@pytest.fixture(scope="module")
def loop_config():
    """Small-but-real knobs: 2 days, enough labels for candidates to move."""
    return LoopConfig(
        days=2, queries_per_day=40, rate=300.0, repeat_fraction=0.4,
        workload_seed=5, band=(0.2, 0.8), labels_per_day=10, al_batch_size=5,
        epochs=6, min_f1_delta=0.01,
    )


@pytest.fixture(scope="module")
def make_loop(
    built_index, matcher_factory, seed_labels, eval_split, truth,
    query_records, loop_config, trained_matcher,
):
    """Build a fresh loop around a fresh service (optionally overriding knobs)."""
    eval_pairs, eval_labels = eval_split

    def _make(service=None, *, config=None, oracle_seed=3, workload_seed=None,
              retrain_gate=None):
        if service is None:
            service = MatchService(trained_matcher, built_index, jobs=1)
        cfg = config if config is not None else loop_config
        if workload_seed is not None:
            cfg = LoopConfig(
                days=cfg.days, queries_per_day=cfg.queries_per_day,
                rate=cfg.rate, repeat_fraction=cfg.repeat_fraction,
                workload_seed=workload_seed, band=cfg.band,
                labels_per_day=cfg.labels_per_day,
                al_batch_size=cfg.al_batch_size, epochs=cfg.epochs,
                min_f1_delta=cfg.min_f1_delta,
            )
        return ContinuousCurationLoop(
            service,
            index=built_index,
            matcher_factory=matcher_factory,
            seed_labels=seed_labels,
            eval_pairs=eval_pairs,
            eval_labels=eval_labels,
            oracle=CrowdOracle(truth, seed=oracle_seed),
            query_records=query_records,
            config=cfg,
            server=ServerConfig(max_batch_size=8, max_wait=0.004, max_queue=256),
            retrain_gate=retrain_gate,
        )

    return _make
