"""Property tests for the versioned :class:`repro.loop.ModelRegistry`.

The registry is the loop's system of record, so its invariants are
pinned directly: content-keyed idempotent registration, append-only
sequential version ids, promotion as the only way the active pointer
moves, and a state digest that is a pure function of the (versions,
promotions, active) triple.
"""

from __future__ import annotations

import pytest

from repro.loop import ModelRegistry, ModelVersion


@pytest.fixture()
def registry():
    return ModelRegistry()


class TestRegistration:
    def test_versions_get_sequential_ids_in_registration_order(
        self, registry, trained_matcher, candidate_matcher
    ):
        first = registry.register(trained_matcher, day=0, labels=80)
        second = registry.register(candidate_matcher, day=1, labels=120)
        assert first.version_id == "v1"
        assert second.version_id == "v2"
        assert [v.version_id for v in registry.versions] == ["v1", "v2"]

    def test_register_is_idempotent_by_fingerprint(
        self, registry, trained_matcher
    ):
        first = registry.register(trained_matcher, day=0, labels=80)
        digest = registry.state_digest()
        again = registry.register(trained_matcher, day=7, labels=999)
        assert again is first  # original provenance, not a re-stamp
        assert registry.state_digest() == digest
        assert len(registry.versions) == 1

    def test_equal_weights_are_one_version_even_as_distinct_objects(
        self, registry, matcher_factory, train_triples
    ):
        # Deterministic training: same seed + data ⇒ same bytes ⇒ same
        # fingerprint, so a retrained clone maps to the existing version.
        a = matcher_factory(0).fit(train_triples[:40], epochs=2)
        b = matcher_factory(0).fit(train_triples[:40], epochs=2)
        assert a is not b
        assert a.parameter_fingerprint() == b.parameter_fingerprint()
        assert registry.register(a) is registry.register(b)

    def test_register_rejects_unfitted_matchers(self, registry, matcher_factory):
        with pytest.raises(RuntimeError, match="not fitted"):
            registry.register(matcher_factory(0))

    def test_version_records_provenance(self, registry, trained_matcher):
        version = registry.register(trained_matcher, day=3, labels=42)
        assert version == ModelVersion(
            version_id="v1",
            fingerprint=trained_matcher.parameter_fingerprint(),
            day=3,
            labels=42,
        )


class TestLookup:
    def test_get_returns_the_registered_matcher_object(
        self, registry, trained_matcher
    ):
        version = registry.register(trained_matcher)
        assert registry.get(version.version_id) is trained_matcher
        assert registry.version(version.version_id) is version

    def test_unknown_version_raises_keyerror(self, registry, trained_matcher):
        registry.register(trained_matcher)
        with pytest.raises(KeyError, match="unknown model version"):
            registry.version("v99")
        with pytest.raises(KeyError, match="unknown model version"):
            registry.get("v99")

    def test_version_for_maps_fingerprint_or_none(
        self, registry, trained_matcher
    ):
        version = registry.register(trained_matcher)
        assert registry.version_for(version.fingerprint) is version
        assert registry.version_for("0" * 40) is None


class TestPromotion:
    def test_promote_moves_the_active_pointer(
        self, registry, trained_matcher, candidate_matcher
    ):
        v1 = registry.register(trained_matcher)
        v2 = registry.register(candidate_matcher)
        assert registry.active is None
        assert registry.promote(v1.version_id, day=0) is True
        assert registry.active is v1
        assert registry.active_matcher() is trained_matcher
        assert registry.promote(v2.version_id, day=2) is True
        assert registry.active is v2
        assert registry.active_matcher() is candidate_matcher

    def test_promoting_the_active_version_is_a_recorded_nowhere_noop(
        self, registry, trained_matcher
    ):
        v1 = registry.register(trained_matcher)
        registry.promote(v1.version_id, day=0)
        digest = registry.state_digest()
        assert registry.promote(v1.version_id, day=5) is False
        assert registry.state_digest() == digest
        assert registry.promotion_schedule() == [(0, "v1")]

    def test_promote_unknown_version_raises(self, registry):
        with pytest.raises(KeyError, match="unknown model version"):
            registry.promote("v1")

    def test_active_matcher_before_any_promotion_raises(
        self, registry, trained_matcher
    ):
        registry.register(trained_matcher)
        with pytest.raises(RuntimeError, match="promoted"):
            registry.active_matcher()

    def test_promotion_schedule_is_the_full_ordered_history(
        self, registry, trained_matcher, candidate_matcher
    ):
        v1 = registry.register(trained_matcher)
        v2 = registry.register(candidate_matcher)
        registry.promote(v1.version_id, day=0)
        registry.promote(v2.version_id, day=2)
        registry.promote(v1.version_id, day=4)  # rollback is just a promote
        assert registry.promotion_schedule() == [(0, "v1"), (2, "v2"), (4, "v1")]

    def test_promotions_property_returns_copies(self, registry, trained_matcher):
        v1 = registry.register(trained_matcher)
        registry.promote(v1.version_id, day=0)
        events = registry.promotions
        events[0]["day"] = 99
        assert registry.promotions == [{"day": 0, "version_id": "v1"}]


class TestStateDigest:
    def test_same_operation_sequence_gives_same_digest(
        self, trained_matcher, candidate_matcher
    ):
        def build():
            registry = ModelRegistry()
            v1 = registry.register(trained_matcher, day=0, labels=80)
            registry.promote(v1.version_id, day=0)
            v2 = registry.register(candidate_matcher, day=1, labels=120)
            registry.promote(v2.version_id, day=1)
            return registry

        assert build().state_digest() == build().state_digest()

    def test_digest_moves_with_every_state_transition(
        self, registry, trained_matcher, candidate_matcher
    ):
        seen = {registry.state_digest()}
        v1 = registry.register(trained_matcher)
        seen.add(registry.state_digest())
        registry.promote(v1.version_id, day=0)
        seen.add(registry.state_digest())
        v2 = registry.register(candidate_matcher, day=1)
        seen.add(registry.state_digest())
        registry.promote(v2.version_id, day=1)
        seen.add(registry.state_digest())
        assert len(seen) == 5  # every transition produced a distinct digest
