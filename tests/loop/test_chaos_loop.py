"""Chaos tier for the loop's two fault sites: ``loop.retrain`` / ``serve.swap``.

Under budget (HOT_POLICY: two attempts), a killed or corrupted retrain
or swap must be *invisible*: day reports, registry digests, served
answers and non-``faults.*`` metrics all bit-identical to a fault-free
run — the retrain is a pure function of (queue batch, banked labels,
day) and the swap commit is idempotent.  Over budget the loop must fail
*loudly* with :class:`RetryExhausted` naming the exhausted site.  An
append-stability regression pins that declaring the two new sites left
the chaos schedules of the wired CI seeds (7, 11) untouched at every
pre-existing site.
"""

from __future__ import annotations

import pytest

from repro.faults import Fault, FaultPlan, RetryExhausted
from repro.faults.sites import CORRUPT_SITES, RETRY_SITES, all_sites
from repro.obs.metrics import REGISTRY, collecting
from repro.serve import MatchService

NEW_SITES = ("loop.retrain", "serve.swap")


def run_reports(make_loop, plan=None):
    """One full loop run (optionally under a plan) → (rows, digest, loop)."""
    with plan if plan is not None else FaultPlan():
        loop = make_loop()
        rows = [report.to_dict() for report in loop.run()]
    return rows, loop.registry.state_digest(), loop


@pytest.fixture(scope="module")
def baseline(make_loop):
    rows, digest, loop = run_reports(make_loop)
    assert any(row["emitted"] > 0 for row in rows), "loop queued nothing"
    return rows, digest


class TestCatalog:
    def test_new_sites_are_declared_retry_sites(self):
        for site in NEW_SITES:
            assert site in all_sites()
            assert RETRY_SITES[site]  # has a non-empty contract description

    def test_new_sites_are_corruptible(self):
        # Both sites return validated values (tuple shape / fingerprint),
        # so the catalog marks them safe for corrupted-return injection.
        for site in NEW_SITES:
            assert site in CORRUPT_SITES


class TestRetrainUnderBudget:
    @pytest.mark.parametrize("kind", ["error", "corrupt"])
    def test_single_fault_every_day_is_invisible(self, kind, make_loop, baseline):
        rows, digest = baseline
        # One fault per day: with two attempts per call, hits 0 and 2 are
        # the first attempts of day 1 and day 2 respectively.
        plan = FaultPlan([Fault("loop.retrain", kind, hits=(0, 2))])
        with plan:
            loop = make_loop()
            faulted = [report.to_dict() for report in loop.run()]
        assert plan.ledger.count(kind, "loop.retrain") >= 1
        assert faulted == rows
        assert loop.registry.state_digest() == digest

    def test_recovered_retrain_keeps_metrics_bit_identical(self, make_loop):
        def counters(plan):
            with collecting(reset=True):
                with plan if plan is not None else FaultPlan():
                    make_loop().run()
                snapshot = REGISTRY.snapshot()["counters"]
            return {
                k: v for k, v in snapshot.items()
                if not k.startswith("faults.")
            }

        clean = counters(None)
        faulted = counters(FaultPlan([Fault("loop.retrain", "error", hits=(0,))]))
        assert any(k.startswith("loop.") for k in clean)
        assert faulted == clean

    def test_killed_attempt_leaves_queue_and_labels_uncommitted(self, make_loop):
        # Exhaust the budget on day 1: both attempts die.  The loop must
        # propagate the failure with the queue snapshot intact — nothing
        # consumed, no labels banked, registry still at v1.
        with FaultPlan([Fault("loop.retrain", "error", hits=(0, 1))]):
            loop = make_loop()
            with pytest.raises(RetryExhausted):
                loop.run_day(1)
        assert loop.labels_spent == 0
        assert len(loop.queue) == loop.queue.emitted_total > 0
        assert [v.version_id for v in loop.registry.versions] == ["v1"]


class TestRetrainOverBudget:
    def test_exhaustion_is_loud_and_names_the_site(self, make_loop):
        with FaultPlan([Fault("loop.retrain", "error", hits=(0, 1))]):
            with pytest.raises(RetryExhausted) as excinfo:
                make_loop().run()
        assert excinfo.value.site == "loop.retrain"
        assert excinfo.value.attempts == 2

    def test_corrupt_exhaustion_is_equally_loud(self, make_loop):
        with FaultPlan([Fault("loop.retrain", "corrupt", hits=(0, 1))]):
            with pytest.raises(RetryExhausted) as excinfo:
                make_loop().run()
        assert excinfo.value.site == "loop.retrain"


class TestSwapUnderBudget:
    def swap_outcome(self, service, candidate, query_records):
        fingerprint = service.swap_matcher(candidate)
        answers = [a.to_dict() for a in service.match_batch(query_records[:10]).answers]
        return fingerprint, answers, len(service.score_cache)

    @pytest.mark.parametrize("kind", ["error", "corrupt"])
    def test_single_fault_at_swap_commit_is_invisible(
        self, kind, service, candidate_matcher, query_records,
        trained_matcher, built_index,
    ):
        clean = self.swap_outcome(
            MatchService(trained_matcher, built_index, jobs=1),
            candidate_matcher, query_records,
        )
        plan = FaultPlan([Fault("serve.swap", kind, hits=(0,))])
        with plan:
            faulted = self.swap_outcome(service, candidate_matcher, query_records)
        assert plan.ledger.count(kind, "serve.swap") == 1
        assert faulted == clean

    def test_corrupted_commit_still_ends_with_the_candidate_live(
        self, service, candidate_matcher
    ):
        # Corrupt fires *after* the commit ran: the first attempt rebinds
        # and clears, the retry sees the new fingerprint as current and
        # no-ops — the end state must equal a single clean swap.
        with FaultPlan([Fault("serve.swap", "corrupt", hits=(0,))]):
            returned = service.swap_matcher(candidate_matcher)
        assert returned == candidate_matcher.parameter_fingerprint()
        assert service.matcher is candidate_matcher
        assert len(service.score_cache) == 0


class TestSwapOverBudget:
    def test_exhaustion_is_loud_and_names_the_site(
        self, service, candidate_matcher
    ):
        with FaultPlan([Fault("serve.swap", "error", hits=(0, 1))]):
            with pytest.raises(RetryExhausted) as excinfo:
                service.swap_matcher(candidate_matcher)
        assert excinfo.value.site == "serve.swap"
        assert excinfo.value.attempts == 2


class TestChaosSweep:
    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_seeded_chaos_over_the_loop_sites_is_invisible(
        self, seed, make_loop, baseline
    ):
        rows, digest = baseline
        plan = FaultPlan.chaos(seed, sites=set(NEW_SITES))
        with plan:
            loop = make_loop()
            faulted = [report.to_dict() for report in loop.run()]
        assert faulted == rows
        assert loop.registry.state_digest() == digest


class TestChaosAppendStability:
    """Declaring the loop sites must not have moved pre-existing seeds.

    CI pins ``--chaos 7`` and ``--chaos 11``; their bit-identical bench
    rows stay meaningful only because each (kind, site) chaos decision
    draws from its own content-hashed stream — growing the catalog with
    ``loop.retrain``/``serve.swap`` cannot perturb the schedule at any
    older site.
    """

    LEGACY = sorted(set(all_sites()) - set(NEW_SITES))

    @pytest.mark.parametrize("seed", [7, 11])
    def test_wired_ci_seeds_are_unperturbed_by_the_loop_sites(self, seed):
        full = FaultPlan.chaos(seed)
        legacy_only = FaultPlan.chaos(seed, sites=set(self.LEGACY))
        filtered = [
            entry for entry in full.describe() if entry["site"] in self.LEGACY
        ]
        assert filtered == legacy_only.describe()

    @pytest.mark.parametrize("seed", [7, 11])
    def test_loop_site_schedules_are_reproducible(self, seed):
        def loop_entries():
            return [
                entry for entry in FaultPlan.chaos(seed).describe()
                if entry["site"] in NEW_SITES
            ]

        assert loop_entries() == loop_entries()
