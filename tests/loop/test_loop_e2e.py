"""Seeded end-to-end determinism of the full continuous-curation loop.

Two complete runs with the same config must agree bit for bit — day
reports, registry digests, promotion schedules — because every moving
part (workload, queue, crowd votes, candidate training, promotion rule)
is content- or seed-keyed.  The promotion schedule is pinned literally
for two workload seeds, the shadow log is checked differentially against
``predict_proba``, and the post-loop service is checked against the
registry's active matcher.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gateway import BackpressureValve
from repro.loop import answers_digest
from repro.obs.metrics import REGISTRY, collecting

# Pinned loop outcomes (module conftest knobs; update only deliberately).
PINNED_SCHEDULES = {
    5: [(0, "v1"), (1, "v2")],
    9: [(0, "v1"), (1, "v2")],
}


@pytest.fixture(scope="module")
def completed_run(make_loop):
    loop = make_loop()
    reports = loop.run()
    return loop, reports


class TestDeterminism:
    def test_two_runs_are_bit_identical(self, make_loop, completed_run):
        first_loop, first_reports = completed_run
        second = make_loop()
        second_reports = second.run()
        assert [r.to_dict() for r in second_reports] == [
            r.to_dict() for r in first_reports
        ]
        assert second.registry.state_digest() == first_loop.registry.state_digest()
        assert second.registry.promotion_schedule() == (
            first_loop.registry.promotion_schedule()
        )

    @pytest.mark.parametrize("seed", sorted(PINNED_SCHEDULES))
    def test_promotion_schedule_is_pinned_per_workload_seed(
        self, seed, make_loop
    ):
        loop = make_loop(workload_seed=seed)
        loop.run()
        assert loop.registry.promotion_schedule() == PINNED_SCHEDULES[seed]

    def test_day_reports_round_trip_through_to_dict(self, completed_run):
        _, reports = completed_run
        for report in reports:
            row = report.to_dict()
            assert row["day"] == report.day
            assert row["answers_sha1"] == report.answers_sha1
            assert set(row) == {
                "day", "queries", "completed", "shed", "emitted", "queue_depth",
                "labels_total", "candidate_version", "candidate_f1", "active_f1",
                "promoted", "active_version", "fingerprint", "answers_sha1",
                "shadow_pairs", "shadow_mean_abs_delta",
            }


class TestLoopInvariants:
    def test_active_f1_is_non_decreasing_and_promotions_gate_it(
        self, completed_run
    ):
        loop, reports = completed_run
        f1s = [r.active_f1 for r in reports]
        assert f1s == sorted(f1s)
        assert any(r.promoted for r in reports), "loop never promoted"
        for report in reports:
            if report.promoted:
                assert report.active_version == report.candidate_version
                assert report.candidate_f1 == report.active_f1

    def test_label_accounting_is_consistent(self, completed_run):
        loop, reports = completed_run
        assert loop.labels_spent == reports[-1].labels_total
        assert loop.queue.emitted_total == sum(r.emitted for r in reports)
        spent_and_pending = loop.labels_spent + len(loop.queue)
        assert spent_and_pending == loop.queue.emitted_total

    def test_every_candidate_is_registered_with_its_label_count(
        self, completed_run
    ):
        loop, reports = completed_run
        for report in reports:
            if report.candidate_version is None:
                continue
            version = loop.registry.version(report.candidate_version)
            assert version.day <= report.day  # idempotent re-register keeps day
            matcher = loop.registry.get(report.candidate_version)
            assert matcher.parameter_fingerprint() == version.fingerprint


class TestShadowDifferential:
    def test_shadow_scores_equal_offline_predict_proba(self, completed_run):
        loop, reports = completed_run
        assert loop.shadow_log, "no day produced a shadow report"
        for report in reports:
            if report.day not in loop.shadow_log:
                continue
            shadow = loop.shadow_log[report.day]
            candidate = loop.registry.get(report.candidate_version)
            offline = candidate.predict_proba(shadow.pairs)
            assert np.array_equal(shadow.scores, offline)
            assert len(shadow.pair_keys) == report.shadow_pairs
            assert len(set(shadow.pair_keys)) == len(shadow.pair_keys)

    def test_shadow_never_served_its_answers(self, completed_run):
        loop, reports = completed_run
        for report in reports:
            # The fingerprint in each row is the *active* model's — on
            # non-promoted days it must not be the shadowed candidate's.
            if report.candidate_version is None or report.promoted:
                continue
            candidate = loop.registry.version(report.candidate_version)
            assert report.fingerprint != candidate.fingerprint


class TestPostLoopService:
    def test_service_serves_the_registry_active_matcher(self, completed_run):
        loop, _ = completed_run
        active = loop.registry.active
        assert loop.service.parameter_fingerprint() == active.fingerprint
        assert loop.service.matcher is loop.registry.active_matcher()

    def test_post_swap_serving_is_bit_identical_to_offline_predict(
        self, completed_run, query_records
    ):
        loop, _ = completed_run
        active = loop.registry.active_matcher()
        batch = query_records[:16]
        answers = loop.service.match_batch(batch).answers
        checked = 0
        for record, answer in zip(batch, answers):
            if answer.best_id is None:
                continue
            offline = active.predict_proba(
                [(record, loop.index.record(c)) for c in answer.candidates]
            )
            scores = dict(zip(answer.candidates, offline))
            assert answer.probability == float(scores[answer.best_id])
            checked += 1
        assert checked >= 5

    def test_answers_digest_is_stable_and_order_sensitive(self, completed_run):
        loop, _ = completed_run
        queries = [{"title": "a", "year": "1"}, {"title": "b", "year": "2"}]
        answers = list(loop.service.match_batch(queries).answers)
        assert answers_digest(answers) == answers_digest(answers)
        if answers[0].to_dict() != answers[1].to_dict():
            assert answers_digest(answers) != answers_digest(answers[::-1])


class TestRetrainGate:
    """The gateway's backpressure valve plugs in as ``retrain_gate``."""

    def test_closed_gate_defers_every_retrain(self, make_loop):
        valve = BackpressureValve(high_water=1, low_water=0)
        valve.observe(0.0, 1)  # paused: online queue at high water
        assert not valve.retrain_allowed()
        loop = make_loop(retrain_gate=valve.retrain_allowed)
        with collecting(reset=True):
            reports = loop.run()
            counters = REGISTRY.snapshot()["counters"]
        assert counters["loop.retrain.deferred"] == float(len(reports))
        for report in reports:
            assert report.candidate_version is None
            assert not report.promoted
        # Deferral leaves the bank untouched: nothing spent, queue intact.
        assert loop.labels_spent == 0
        assert len(loop.queue) == loop.queue.emitted_total
        assert loop.registry.promotion_schedule() == [(0, "v1")]

    def test_open_gate_matches_ungated_run(self, make_loop, completed_run):
        _, ungated_reports = completed_run
        valve = BackpressureValve(high_water=4, low_water=1)
        gated = make_loop(retrain_gate=valve.retrain_allowed)
        gated_reports = gated.run()
        assert [r.to_dict() for r in gated_reports] == [
            r.to_dict() for r in ungated_reports
        ]
