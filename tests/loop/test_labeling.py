"""Determinism tests for the content-keyed :class:`repro.loop.CrowdOracle`.

The retried ``loop.retrain`` step is only replayable if relabeling a
pair is idempotent: votes must be a pure function of (pair content,
oracle seed), independent of call order, batching, or how many times a
fault forces the step to run again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.loop import CrowdOracle, LabelQueue
from repro.serve.cache import content_key
from repro.serve.service import MatchAnswer


@pytest.fixture(scope="module")
def entries(trained_matcher):
    queue = LabelQueue(band=(0.0, 1.0))
    for i in range(8):
        record = {"title": f"paper {i}", "year": str(1990 + i)}
        answer = MatchAnswer(
            query_key=content_key(record), candidates=(f"a-{i}",),
            best_id=f"a-{i}", probability=0.4 + 0.02 * i, matched=False,
            embedding_cached=False, scores_cached=0,
        )
        assert queue.offer(record, answer, day=1)
    return queue.pending()


def parity_truth(entry) -> int:
    return int(entry.candidate_id[-1]) % 2


class TestIdempotence:
    def test_votes_are_identical_across_repeated_calls(self, entries):
        oracle = CrowdOracle(parity_truth, seed=3)
        for entry in entries:
            first = oracle.votes(entry)
            assert np.array_equal(first, oracle.votes(entry))
            assert first.shape == (1, 7)

    def test_labels_are_independent_of_call_order(self, entries):
        forward = [CrowdOracle(parity_truth, seed=3).label(e) for e in entries]
        backward = [
            CrowdOracle(parity_truth, seed=3).label(e) for e in reversed(entries)
        ]
        assert forward == list(reversed(backward))

    def test_same_seed_same_votes_different_seed_different_stream(self, entries):
        a = CrowdOracle(parity_truth, seed=3)
        b = CrowdOracle(parity_truth, seed=3)
        c = CrowdOracle(parity_truth, seed=4)
        votes_a = np.concatenate([a.votes(e) for e in entries])
        votes_b = np.concatenate([b.votes(e) for e in entries])
        votes_c = np.concatenate([c.votes(e) for e in entries])
        assert np.array_equal(votes_a, votes_b)
        assert not np.array_equal(votes_a, votes_c)


class TestAggregation:
    def test_label_is_the_majority_of_responding_votes(self, entries):
        oracle = CrowdOracle(parity_truth, seed=3)
        for entry in entries:
            votes = oracle.votes(entry)[0]
            responded = votes[votes >= 0]
            if len(responded):
                majority = int(np.sum(responded == 1) > np.sum(responded == 0))
                assert oracle.label(entry) == majority

    def test_expert_crowd_recovers_the_truth(self, entries):
        oracle = CrowdOracle(
            parity_truth, n_workers=9, skill_range=(0.99, 0.999),
            response_rate=1.0, seed=0,
        )
        assert oracle.accuracy_against_truth(entries) == 1.0
        for entry in entries:
            assert oracle.label(entry) == parity_truth(entry)

    def test_accuracy_of_no_entries_is_zero(self):
        assert CrowdOracle(parity_truth).accuracy_against_truth([]) == 0.0
