"""Differential + property tests for the hot-swap contract.

The contract under test (``MatchService.swap_matcher`` /
``ShardedMatchService.swap_matcher``, fault site ``serve.swap``):

* post-swap serving is **bit-identical** to the new matcher's offline
  ``predict_proba`` — at N=1 and at every sharded topology in the sweep;
* a same-fingerprint swap is a provable no-op: answers, cache contents
  and cache counters all unchanged;
* a real swap invalidates exactly the score tier — embedding and column
  caches (functions of the embedder config, not the classifier) survive;
* swapping an incompatible matcher (columns, composition, unfitted)
  fails loudly before touching any state.
"""

from __future__ import annotations

import pytest

from repro.er import DeepER
from repro.obs.metrics import REGISTRY, collecting
from repro.serve import MatchService, ShardedMatchService

SHARD_SWEEP = (1, 2, 4, 8)


def best_pair_probabilities(service, records, *, matcher, index):
    """Offline scores of each answer's best pair, aligned with serving."""
    answers = service.match_batch(records).answers
    checked = 0
    for record, answer in zip(records, answers):
        if answer.best_id is None:
            continue
        offline = matcher.predict_proba(
            [(record, index.record(c)) for c in answer.candidates]
        )
        scores = dict(zip(answer.candidates, offline))
        assert answer.probability == float(scores[answer.best_id])
        checked += 1
    return checked


class TestUnshardedSwap:
    def test_swap_rebinds_matcher_and_reports_its_fingerprint(
        self, service, candidate_matcher
    ):
        before = service.parameter_fingerprint()
        returned = service.swap_matcher(candidate_matcher)
        assert returned == candidate_matcher.parameter_fingerprint()
        assert returned != before
        assert service.parameter_fingerprint() == returned
        assert service.matcher is candidate_matcher

    def test_post_swap_serving_is_bit_identical_to_offline_predict(
        self, service, candidate_matcher, query_records
    ):
        service.match_batch(query_records[:12])  # warm caches pre-swap
        service.swap_matcher(candidate_matcher)
        checked = best_pair_probabilities(
            service, query_records[:16],
            matcher=candidate_matcher, index=service.index,
        )
        assert checked >= 5, "too few queries had candidates to compare"

    def test_swap_invalidates_scores_and_keeps_embeddings_and_columns(
        self, service, candidate_matcher, query_records
    ):
        service.match_batch(query_records[:12])
        embeddings, columns = len(service.embedding_cache), len(service.column_cache)
        assert len(service.score_cache) > 0 and embeddings > 0
        service.swap_matcher(candidate_matcher)
        assert len(service.score_cache) == 0
        assert len(service.embedding_cache) == embeddings
        assert len(service.column_cache) == columns

    def test_same_fingerprint_swap_is_a_noop_on_answers_and_caches(
        self, service, matcher_factory, seed_labels, query_records
    ):
        baseline = [a.to_dict() for a in service.match_batch(query_records[:12]).answers]
        cached_scores = len(service.score_cache)
        assert cached_scores > 0
        # A deterministic retrain of the same recipe: distinct object,
        # identical bytes — the swap must see through the object identity.
        clone = matcher_factory(0).fit(seed_labels, epochs=3)
        assert clone is not service.matcher
        with collecting(reset=True):
            returned = service.swap_matcher(clone)
            counters = REGISTRY.snapshot()["counters"]
        assert returned == service.parameter_fingerprint()
        assert service.matcher is not clone  # no rebind happened
        assert len(service.score_cache) == cached_scores
        assert counters.get("serve.swaps", 0.0) == 0.0
        again = [a.to_dict() for a in service.match_batch(query_records[:12]).answers]
        assert again == baseline

    def test_swap_counter_increments_only_on_fingerprint_change(
        self, service, candidate_matcher
    ):
        with collecting(reset=True):
            service.swap_matcher(candidate_matcher)
            service.swap_matcher(candidate_matcher)  # second call: same bytes
            counters = REGISTRY.snapshot()["counters"]
        assert counters["serve.swaps"] == 1.0

    def test_swap_puts_the_candidate_in_eval_mode_with_service_jobs(
        self, service, matcher_factory, train_triples
    ):
        candidate = matcher_factory(2).fit(train_triples[:60], epochs=2)
        candidate.jobs = 99
        service.swap_matcher(candidate)
        assert candidate.jobs == service.jobs
        assert not candidate.classifier.training


class TestSwapValidation:
    def test_unfitted_candidate_is_rejected(self, service, matcher_factory):
        with pytest.raises(RuntimeError, match="not fitted"):
            service.swap_matcher(matcher_factory(0))

    def test_column_mismatch_is_rejected(
        self, service, word_model, small_benchmark, train_triples
    ):
        narrow = DeepER(
            word_model, small_benchmark.compare_columns[:-1], composition="sif",
            rng=0,
        ).fit(train_triples[:40], epochs=1)
        with pytest.raises(ValueError, match="columns"):
            service.swap_matcher(narrow)

    def test_composition_mismatch_is_rejected(
        self, service, word_model, small_benchmark, train_triples
    ):
        averaged = DeepER(
            word_model, small_benchmark.compare_columns, composition="mean",
            rng=0,
        ).fit(train_triples[:40], epochs=1)
        with pytest.raises(ValueError, match="composition"):
            service.swap_matcher(averaged)

    def test_rejected_swap_leaves_the_service_untouched(
        self, service, matcher_factory, query_records
    ):
        service.match_batch(query_records[:8])
        fingerprint = service.parameter_fingerprint()
        scores = len(service.score_cache)
        with pytest.raises(RuntimeError):
            service.swap_matcher(matcher_factory(0))
        assert service.parameter_fingerprint() == fingerprint
        assert len(service.score_cache) == scores


class TestShardedSwap:
    @pytest.mark.parametrize("n_shards", SHARD_SWEEP)
    def test_post_swap_serving_matches_offline_at_every_topology(
        self, n_shards, trained_matcher, built_index, candidate_matcher,
        query_records,
    ):
        service = ShardedMatchService(
            trained_matcher, built_index, n_shards=n_shards, replicas=2
        )
        service.swap_matcher(candidate_matcher)
        checked = best_pair_probabilities(
            service, query_records[:16],
            matcher=candidate_matcher, index=built_index,
        )
        assert checked >= 5

    def test_swap_reaches_every_replica_of_every_group(
        self, trained_matcher, built_index, candidate_matcher
    ):
        service = ShardedMatchService(
            trained_matcher, built_index, n_shards=4, replicas=3
        )
        fingerprint = service.swap_matcher(candidate_matcher)
        for group in service._groups:
            for replica in group.replicas:
                assert replica.matcher is candidate_matcher
                assert replica.parameter_fingerprint() == fingerprint
        assert service.matcher is candidate_matcher

    def test_sharded_answers_equal_unsharded_answers_post_swap(
        self, trained_matcher, built_index, candidate_matcher, query_records
    ):
        batch = query_records[:20]
        unsharded = MatchService(candidate_matcher, built_index, jobs=1)
        expected = [a.to_dict() for a in unsharded.match_batch(batch).answers]
        for n_shards in (2, 4):
            sharded = ShardedMatchService(
                trained_matcher, built_index, n_shards=n_shards, replicas=2
            )
            sharded.swap_matcher(candidate_matcher)
            got = [a.to_dict() for a in sharded.match_batch(batch).answers]
            assert got == expected

    def test_sharded_same_fingerprint_swap_is_a_noop(
        self, trained_matcher, built_index, matcher_factory, seed_labels
    ):
        service = ShardedMatchService(
            trained_matcher, built_index, n_shards=2, replicas=2
        )
        clone = matcher_factory(0).fit(seed_labels, epochs=3)
        with collecting(reset=True):
            service.swap_matcher(clone)
            counters = REGISTRY.snapshot()["counters"]
        assert counters.get("serve.swaps", 0.0) == 0.0
        assert service.matcher is trained_matcher

    def test_sharded_swap_validates_before_touching_any_group(
        self, trained_matcher, built_index, matcher_factory
    ):
        service = ShardedMatchService(
            trained_matcher, built_index, n_shards=2, replicas=2
        )
        with pytest.raises(RuntimeError, match="not fitted"):
            service.swap_matcher(matcher_factory(5))
        assert service.matcher is trained_matcher
