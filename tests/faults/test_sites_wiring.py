"""Wired fault sites recover to bit-identical results under their budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import DeepER, LSHBlocker, TokenBlocker
from repro.faults import Fault, FaultPlan, RetryExhausted


@pytest.fixture()
def lsh_workload(rng):
    emb_a = rng.normal(size=(40, 16))
    emb_b = np.concatenate([emb_a[:20] + 0.01 * rng.normal(size=(20, 16)),
                            rng.normal(size=(20, 16))])
    ids_a = [f"a{i}" for i in range(40)]
    ids_b = [f"b{i}" for i in range(40)]
    return emb_a, ids_a, emb_b, ids_b


@pytest.fixture()
def token_workload():
    records_a = [{"name": f"alpha beta {i}", "city": f"town{i % 3}"} for i in range(15)]
    records_b = [{"name": f"alpha gamma {i}", "city": f"town{i % 3}"} for i in range(15)]
    return records_a, [f"a{i}" for i in range(15)], records_b, [f"b{i}" for i in range(15)]


class TestBlockingSites:
    def test_lsh_recovers_from_injected_error(self, lsh_workload):
        emb_a, ids_a, emb_b, ids_b = lsh_workload
        baseline = LSHBlocker(n_bits=16, n_bands=4, rng=0).candidate_pairs(
            emb_a, ids_a, emb_b, ids_b
        )
        assert baseline, "workload produced no candidates; test is vacuous"
        with FaultPlan([Fault("er.blocking.lsh", "error", hits=(0,))]) as plan:
            faulted = LSHBlocker(n_bits=16, n_bands=4, rng=0).candidate_pairs(
                emb_a, ids_a, emb_b, ids_b
            )
        assert plan.ledger.count("error", "er.blocking.lsh") == 1
        assert faulted == baseline

    def test_lsh_recovers_from_corruption(self, lsh_workload):
        emb_a, ids_a, emb_b, ids_b = lsh_workload
        baseline = LSHBlocker(n_bits=16, n_bands=4, rng=0).candidate_pairs(
            emb_a, ids_a, emb_b, ids_b
        )
        with FaultPlan([Fault("er.blocking.lsh", "corrupt", hits=(0,))]) as plan:
            faulted = LSHBlocker(n_bits=16, n_bands=4, rng=0).candidate_pairs(
                emb_a, ids_a, emb_b, ids_b
            )
        assert plan.ledger.count("corrupt", "er.blocking.lsh") == 1
        assert faulted == baseline

    def test_token_recovers_from_injected_error(self, token_workload):
        records_a, ids_a, records_b, ids_b = token_workload
        blocker = TokenBlocker(["name", "city"], max_df=0.4)
        baseline = blocker.candidate_pairs(records_a, ids_a, records_b, ids_b)
        assert baseline, "workload produced no candidates; test is vacuous"
        with FaultPlan([Fault("er.blocking.token", "error", hits=(0,))]) as plan:
            faulted = blocker.candidate_pairs(records_a, ids_a, records_b, ids_b)
        assert plan.ledger.count("error", "er.blocking.token") == 1
        assert faulted == baseline

    def test_over_budget_blocking_fault_exhausts_loudly(self, token_workload):
        records_a, ids_a, records_b, ids_b = token_workload
        blocker = TokenBlocker(["name", "city"], max_df=0.4)
        # HOT_POLICY gives the site two attempts; two scheduled hits exceed it.
        with FaultPlan([Fault("er.blocking.token", "error", hits=(0, 1))]):
            with pytest.raises(RetryExhausted) as excinfo:
                blocker.candidate_pairs(records_a, ids_a, records_b, ids_b)
        assert excinfo.value.site == "er.blocking.token"


class TestDeepERSites:
    def test_pair_features_recover_from_error_and_corruption(
        self, word_model, small_benchmark
    ):
        labeled = small_benchmark.labeled_pairs(negative_ratio=1, rng=3)[:12]
        pairs = [
            (small_benchmark.record_a(a), small_benchmark.record_b(b))
            for a, b, _ in labeled
        ]
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        baseline = model._pair_features_numpy(pairs)
        plan = FaultPlan([
            Fault("er.deeper.pair_features", "error", hits=(0,)),
        ])
        with plan:
            faulted = model._pair_features_numpy(pairs)
        assert plan.ledger.count("error", "er.deeper.pair_features") == 1
        assert np.array_equal(faulted, baseline)
        with FaultPlan([Fault("er.deeper.pair_features", "corrupt", hits=(0,))]):
            corrupted_then_retried = model._pair_features_numpy(pairs)
        assert np.array_equal(corrupted_then_retried, baseline)

    def test_fit_epoch_latency_leaves_training_bitwise_identical(
        self, word_model, small_benchmark
    ):
        labeled = [
            (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
            for a, b, y in small_benchmark.labeled_pairs(negative_ratio=1, rng=3)[:20]
        ]

        def train():
            model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
            model.fit(labeled, epochs=3)
            return model.loss_history_

        baseline = train()
        plan = FaultPlan([
            Fault("er.deeper.fit.epoch", "latency", hits=(0, 1, 2),
                  delay_seconds=0.01),
        ])
        with plan:
            faulted = train()
        assert plan.ledger.count("latency", "er.deeper.fit.epoch") == 3
        assert plan.ledger.simulated_latency_seconds == pytest.approx(0.03)
        assert faulted == baseline
