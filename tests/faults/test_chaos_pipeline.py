"""The headline guarantee: chaos under budget changes nothing, over budget
fails loudly with partial provenance, and checkpoints resume to the same
answer.

The property sweep runs a small synthetic pipeline under many seeded
chaos plans; the E16 gate runs the real self-driving-pipeline bench under
several seeds and compares final artifacts *and* metric snapshots against
the fault-free run.
"""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.faults import Fault, FaultPlan, InjectedFault, RetryPolicy
from repro.obs import REGISTRY, collecting
from repro.orchestration import (
    CHECKPOINT_KEY,
    CurationPipeline,
    PipelineContext,
    PipelineError,
    PipelineStep,
)

CHAOS_SEEDS = (1, 2, 3)


class MakeStep(PipelineStep):
    name = "make"

    def __init__(self):
        self.calls = 0

    def run(self, context: PipelineContext) -> dict:
        self.calls += 1
        context.put_table("t", Table.from_records(
            "t", [{"a": i, "b": i * i} for i in range(8)]
        ))
        return {"rows": 8}


class DeriveStep(PipelineStep):
    name = "derive"

    def run(self, context: PipelineContext) -> dict:
        source = context.table("t")
        context.put_table("u", Table.from_records(
            "u", [{"total": int(a) + int(b)}
                  for a, b in zip(source.column("a"), source.column("b"))]
        ))
        return {"rows": source.num_rows}


class SummarizeStep(PipelineStep):
    name = "summarize"

    def run(self, context: PipelineContext) -> dict:
        total = sum(int(v) for v in context.table("u").column("total"))
        context.artifacts["total"] = total
        return {"total": total}


def _make_pipeline(**kwargs) -> CurationPipeline:
    return CurationPipeline(
        [MakeStep(), DeriveStep(), SummarizeStep()], **kwargs
    )


def _run(pipeline: CurationPipeline):
    context, reports = pipeline.run(PipelineContext())
    return context, reports


class TestSyntheticChaosSweep:
    @pytest.mark.parametrize("seed", range(8))
    def test_under_budget_chaos_is_invisible(self, seed):
        baseline_context, baseline_reports = _run(_make_pipeline())
        pipeline = _make_pipeline(retry=RetryPolicy(attempts=3))
        with FaultPlan.chaos(seed, sites={"pipeline.step.*"}) as plan:
            context, reports = _run(pipeline)
        assert context.table("u").equals(baseline_context.table("u"))
        assert context.artifacts["total"] == baseline_context.artifacts["total"]
        assert [r.name for r in reports] == [r.name for r in baseline_reports]
        assert [r.details for r in reports] == [r.details for r in baseline_reports]
        # Some seeds fire nothing — the sweep as a whole must inject.
        if plan.faults:
            assert plan.ledger.count() >= 0

    def test_sweep_actually_injects_somewhere(self):
        fired = 0
        for seed in range(8):
            pipeline = _make_pipeline(retry=RetryPolicy(attempts=3))
            with FaultPlan.chaos(seed, sites={"pipeline.step.*"}) as plan:
                _run(pipeline)
            fired += plan.ledger.count()
        assert fired > 0, "8-seed sweep injected nothing; the gate is vacuous"

    def test_over_budget_fails_with_partial_provenance(self):
        pipeline = _make_pipeline(retry=RetryPolicy(attempts=3))
        with FaultPlan([Fault("pipeline.step.derive", "error", hits=(0, 1, 2))]):
            with pytest.raises(PipelineError) as excinfo:
                _run(pipeline)
        exc = excinfo.value
        assert exc.failed_step == "derive"
        assert exc.exhausted_site == "pipeline.step.derive"
        assert [r.name for r in exc.reports] == ["make"]

    def test_chaos_exhaustion_surfaces_exhausted_site(self):
        # Chaos schedules one hit per site: an attempts=1 pipeline (no
        # budget at all beyond the first try) must fail loudly instead.
        pipeline = _make_pipeline(retry=RetryPolicy(attempts=1))
        plan = FaultPlan([Fault("pipeline.step.*", "error", hits=(0,))])
        with plan:
            with pytest.raises(PipelineError) as excinfo:
                _run(pipeline)
        assert excinfo.value.failed_step == "make"
        assert excinfo.value.exhausted_site == "pipeline.step.make"


class TestCheckpointResume:
    def test_resume_skips_completed_prefix_and_matches_baseline(self):
        baseline_context, _ = _run(_make_pipeline())
        pipeline = _make_pipeline(checkpoint=True)
        make_step = pipeline.steps[0]
        context = PipelineContext()
        # No retry budget: the injected fault propagates raw, but the
        # checkpoint written after the completed prefix survives.
        with FaultPlan([Fault("pipeline.step.derive", "error", hits=(0,))]):
            with pytest.raises(InjectedFault):
                pipeline.run(context)
        saved = context.artifacts[CHECKPOINT_KEY]
        assert saved["completed"] == 1
        assert make_step.calls == 1

        context, reports = pipeline.run(context, resume=True)
        assert make_step.calls == 1  # completed prefix not re-run
        assert [r.name for r in reports] == ["make", "derive", "summarize"]
        assert context.table("u").equals(baseline_context.table("u"))
        assert context.artifacts["total"] == baseline_context.artifacts["total"]
        assert CHECKPOINT_KEY not in context.artifacts  # popped on success
        assert pipeline.last_span_.meta.get("resumed_from") == 1

    def test_checkpoint_removed_after_clean_run(self):
        context, _ = _make_pipeline(checkpoint=True).run(PipelineContext())
        assert CHECKPOINT_KEY not in context.artifacts


def _comparable_metrics(snapshot: dict) -> dict:
    """Snapshot projection that must be bit-identical across recovered runs.

    ``faults.*`` instruments are the injection accounting itself (they
    *should* differ), and histogram value fields carry wall-clock timings —
    their observation *counts* must match, their sums need not.
    """
    def clean(family: dict) -> dict:
        return {k: v for k, v in family.items() if not k.startswith("faults.")}

    return {
        "counters": clean(snapshot["counters"]),
        "gauges": clean(snapshot["gauges"]),
        "series": clean(snapshot["series"]),
        "histogram_counts": {
            k: v["count"] for k, v in clean(snapshot["histograms"]).items()
        },
    }


@pytest.fixture(scope="module")
def e16_setup():
    from benchmarks.bench_e16_pipeline import _P, prepare

    pytest.importorskip("benchmarks.common", reason="requires repo-root cwd")
    return prepare(_P["smoke"], retry=RetryPolicy(attempts=3))


def _run_e16(e16_setup):
    pipeline, make_context, _, _ = e16_setup
    with collecting(reset=True):
        context, reports = pipeline.run(make_context())
        snapshot = REGISTRY.snapshot()
    return context, reports, snapshot


class TestE16ChaosGate:
    def test_chaos_runs_match_fault_free_run(self, e16_setup):
        baseline_context, baseline_reports, baseline_snapshot = _run_e16(e16_setup)
        injected_total = 0
        for seed in CHAOS_SEEDS:
            with FaultPlan.chaos(seed) as plan:
                context, reports, snapshot = _run_e16(e16_setup)
            injected_total += plan.ledger.count()
            assert context.table("final").equals(baseline_context.table("final")), (
                f"chaos seed {seed} changed the final table"
            )
            assert context.artifacts["matches"] == baseline_context.artifacts["matches"]
            assert [r.name for r in reports] == [r.name for r in baseline_reports]
            assert [r.details for r in reports] == [
                r.details for r in baseline_reports
            ]
            assert _comparable_metrics(snapshot) == _comparable_metrics(
                baseline_snapshot
            ), f"chaos seed {seed} changed the metric values"
        assert injected_total > 0, "no chaos seed injected anything; gate is vacuous"

    def test_over_budget_e16_fails_with_partial_reports(self, e16_setup):
        pipeline, make_context, _, _ = e16_setup
        with FaultPlan([
            Fault("pipeline.step.entity_resolution", "error", hits=(0, 1, 2)),
        ]):
            with pytest.raises(PipelineError) as excinfo:
                pipeline.run(make_context())
        exc = excinfo.value
        assert exc.failed_step == "entity_resolution"
        assert exc.exhausted_site == "pipeline.step.entity_resolution"
        assert [r.name for r in exc.reports] == ["discover", "schema_match"]
