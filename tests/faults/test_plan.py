"""FaultPlan: schedules, determinism, ledger, nesting, chaos generation."""

from __future__ import annotations

import pytest

from repro.faults import (
    CORRUPT_SITES,
    CORRUPTED,
    Fault,
    FaultPlan,
    InjectedFault,
    LATENCY_ONLY_SITES,
    RETRY_SITES,
    active_plan,
    all_sites,
    inject,
    inject_result,
)
from repro.obs import REGISTRY, collecting


class TestFaultValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Fault("a.b", kind="explode")

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError, match="site"):
            Fault("")

    def test_bad_hits_rejected(self):
        with pytest.raises(ValueError, match="hits"):
            Fault("a.b", hits=())
        with pytest.raises(ValueError, match="hits"):
            Fault("a.b", hits=(-1,))

    def test_latency_needs_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Fault("a.b", kind="latency")

    def test_plan_rejects_non_faults(self):
        with pytest.raises(TypeError, match="Fault"):
            FaultPlan(["a.b"])


class TestInjection:
    def test_inactive_is_noop(self):
        assert active_plan() is None
        inject("anywhere.at.all")  # must not raise
        assert inject_result("anywhere.at.all", 41) == 41

    def test_error_fires_at_scheduled_hit_only(self):
        plan = FaultPlan([Fault("a.b", "error", hits=(1,))])
        with plan:
            inject("a.b")  # hit 0: silent
            with pytest.raises(InjectedFault) as excinfo:
                inject("a.b")  # hit 1: fires
            inject("a.b")  # hit 2: silent again
        assert excinfo.value.site == "a.b"
        assert excinfo.value.hit == 1
        assert plan.ledger.count("error", "a.b") == 1

    def test_pattern_matches_concrete_sites_independently(self):
        plan = FaultPlan([Fault("step.*", "error", hits=(0,))])
        with plan:
            with pytest.raises(InjectedFault):
                inject("step.one")
            # step.two has its own hit counter, so its hit 0 also fires.
            with pytest.raises(InjectedFault):
                inject("step.two")
            inject("step.one")  # hit 1: silent
            inject("other.site")  # no match
        assert plan.ledger.count("error") == 2

    def test_corrupt_replaces_result(self):
        plan = FaultPlan([Fault("a.b", "corrupt", hits=(0,))])
        with plan:
            assert inject_result("a.b", [1, 2]) is CORRUPTED
            assert inject_result("a.b", [1, 2]) == [1, 2]

    def test_corrupt_custom_mutator(self):
        plan = FaultPlan([Fault("a.b", "corrupt", hits=(0,), corrupt=lambda v: v[:-1])])
        with plan:
            assert inject_result("a.b", [1, 2, 3]) == [1, 2]

    def test_latency_is_simulated_into_ledger(self):
        plan = FaultPlan([Fault("a.b", "latency", hits=(0, 2), delay_seconds=0.5)])
        with plan:
            for _ in range(3):
                inject("a.b")
        assert plan.ledger.count("latency") == 2
        assert plan.ledger.simulated_latency_seconds == pytest.approx(1.0)

    def test_replay_is_identical_across_activations(self):
        plan = FaultPlan([
            Fault("a.b", "error", hits=(1,)),
            Fault("a.b", "latency", hits=(0,), delay_seconds=0.1),
        ])
        ledgers = []
        for _ in range(2):
            with plan:
                inject("a.b")
                with pytest.raises(InjectedFault):
                    inject("a.b")
            ledgers.append(plan.ledger.events)
        assert ledgers[0] == ledgers[1]

    def test_plans_nest_innermost_wins(self):
        outer = FaultPlan([Fault("a.b", "error", hits=(0,))])
        inner = FaultPlan()
        with outer:
            with inner:
                assert active_plan() is inner
                inject("a.b")  # inner has no faults: silent
            assert active_plan() is outer
            with pytest.raises(InjectedFault):
                inject("a.b")
        assert active_plan() is None

    def test_injection_metrics_guarded(self):
        plan = FaultPlan([Fault("a.b", "error", hits=(0,))])
        assert not REGISTRY.enabled
        REGISTRY.reset()
        with plan:
            with pytest.raises(InjectedFault):
                inject("a.b")
        assert REGISTRY.snapshot()["counters"] == {}
        with collecting(reset=True):
            with plan:
                with pytest.raises(InjectedFault):
                    inject("a.b")
            snapshot = REGISTRY.snapshot()
        assert snapshot["counters"]["faults.injected.error"] == 1.0


class TestChaos:
    def test_same_seed_same_schedule(self):
        assert FaultPlan.chaos(3).describe() == FaultPlan.chaos(3).describe()

    def test_different_seeds_differ_somewhere(self):
        schedules = {str(FaultPlan.chaos(seed).describe()) for seed in range(20)}
        assert len(schedules) > 1

    def test_chaos_is_recoverable_by_construction(self):
        for seed in range(30):
            plan = FaultPlan.chaos(seed)
            consuming_sites = set()
            for fault in plan.faults:
                assert fault.hits == (0,)
                if fault.kind == "error":
                    assert fault.site in RETRY_SITES
                elif fault.kind == "corrupt":
                    assert fault.site in CORRUPT_SITES
                else:
                    assert fault.site in set(RETRY_SITES) | set(LATENCY_ONLY_SITES)
                if fault.kind in ("error", "corrupt"):
                    # At most one attempt-consuming fault per site keeps
                    # every seed under the smallest wired budget (2).
                    assert fault.site not in consuming_sites
                    consuming_sites.add(fault.site)

    def test_chaos_sites_filter(self):
        plan = FaultPlan.chaos(0, sites={"par.pool"}, error_rate=1.0,
                               latency_rate=0.0, corrupt_rate=0.0)
        assert [fault.site for fault in plan.faults] == ["par.pool"]

    def test_site_catalog_is_consistent(self):
        assert set(CORRUPT_SITES) <= set(RETRY_SITES)
        assert not set(LATENCY_ONLY_SITES) & set(RETRY_SITES)
        assert set(all_sites()) == set(RETRY_SITES) | set(LATENCY_ONLY_SITES)
