"""retry_call: recovery, exhaustion, backoff arithmetic, metrics quarantine."""

from __future__ import annotations

import pytest

from repro.faults import (
    CorruptedResult,
    Fault,
    FaultPlan,
    InjectedFault,
    RetryExhausted,
    RetryPolicy,
    retry_call,
)
from repro.obs import REGISTRY, collecting, drain_roots, span


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures: int, value: object = "ok",
                 error: type = RuntimeError) -> None:
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"transient {self.calls}")
        return self.value


class TestPolicy:
    def test_backoff_is_capped_geometric(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_multiplier=2.0, backoff_cap=0.15)
        assert policy.delay(0) == pytest.approx(0.05)
        assert policy.delay(1) == pytest.approx(0.10)
        assert policy.delay(2) == pytest.approx(0.15)  # capped
        assert policy.delay(9) == pytest.approx(0.15)

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(backoff_multiplier=0.5)


class TestRetryCall:
    def test_first_try_success_passes_through(self):
        fn = Flaky(0, value=42)
        assert retry_call(fn, site="t.site") == 42
        assert fn.calls == 1

    def test_recovers_within_budget(self):
        fn = Flaky(2)
        assert retry_call(fn, site="t.site", policy=RetryPolicy(attempts=3)) == "ok"
        assert fn.calls == 3

    def test_exhaustion_carries_accounting_and_cause(self):
        fn = Flaky(5)
        policy = RetryPolicy(attempts=3, backoff_base=0.05, backoff_multiplier=2.0)
        with pytest.raises(RetryExhausted) as excinfo:
            retry_call(fn, site="t.site", policy=policy)
        exc = excinfo.value
        assert exc.site == "t.site"
        assert exc.attempts == 3
        # Two failures back off before the third, final failure.
        assert exc.simulated_delay == pytest.approx(0.05 + 0.10)
        assert isinstance(exc.__cause__, RuntimeError)
        assert "transient 3" in str(exc.__cause__)
        assert fn.calls == 3

    def test_delays_are_simulated_not_slept(self):
        slept = []
        fn = Flaky(1)
        retry_call(fn, site="t.site",
                   policy=RetryPolicy(attempts=2, sleep=slept.append))
        assert slept == [pytest.approx(0.05)]
        # Without a sleep callable nothing is invoked (nothing to observe
        # directly, but the default policy path must still recover).
        assert retry_call(Flaky(1), site="t.site") == "ok"

    def test_give_up_types_propagate_raw(self):
        fn = Flaky(3, error=KeyError)
        with pytest.raises(KeyError):
            retry_call(fn, site="t.site", give_up_on=(KeyError,))
        assert fn.calls == 1

    def test_narrow_retry_on_propagates_other_errors_raw(self):
        fn = Flaky(3, error=ValueError)
        with pytest.raises(ValueError):
            retry_call(fn, site="t.site", policy=RetryPolicy(retry_on=(KeyError,)))
        assert fn.calls == 1

    def test_validate_rejection_is_retryable(self):
        values = iter([[1], [1, 2]])
        result = retry_call(
            lambda: next(values), site="t.site",
            policy=RetryPolicy(attempts=2),
            validate=lambda v: len(v) == 2,
        )
        assert result == [1, 2]

    def test_validate_exhaustion_chains_corrupted_result(self):
        with pytest.raises(RetryExhausted) as excinfo:
            retry_call(lambda: "bad", site="t.site",
                       policy=RetryPolicy(attempts=2), validate=lambda v: False)
        assert isinstance(excinfo.value.__cause__, CorruptedResult)


class TestInjectionThroughRetry:
    def test_injected_error_recovered(self):
        fn = Flaky(0, value=7)
        with FaultPlan([Fault("t.site", "error", hits=(0,))]) as plan:
            assert retry_call(fn, site="t.site", policy=RetryPolicy(attempts=2)) == 7
        assert plan.ledger.count("error", "t.site") == 1
        assert fn.calls == 1  # injection fires before fn on the first attempt

    def test_injected_corruption_detected_and_recovered(self):
        with FaultPlan([Fault("t.site", "corrupt", hits=(0,))]) as plan:
            result = retry_call(lambda: [1, 2], site="t.site",
                                policy=RetryPolicy(attempts=2),
                                validate=lambda v: isinstance(v, list))
        assert result == [1, 2]
        assert plan.ledger.count("corrupt", "t.site") == 1

    def test_unvalidated_corruption_passes_through(self):
        # Without a validator the corrupted sentinel is returned as-is —
        # which is why chaos plans only corrupt validating sites.
        from repro.faults import CORRUPTED

        with FaultPlan([Fault("t.site", "corrupt", hits=(0,))]):
            assert retry_call(lambda: [1], site="t.site") is CORRUPTED

    def test_over_budget_injection_exhausts(self):
        with FaultPlan([Fault("t.site", "error", hits=(0, 1))]):
            with pytest.raises(RetryExhausted) as excinfo:
                retry_call(lambda: 1, site="t.site", policy=RetryPolicy(attempts=2))
        assert isinstance(excinfo.value.__cause__, InjectedFault)


class TestTelemetry:
    def test_span_meta_records_attempts(self):
        drain_roots()
        with span("outer"):
            retry_call(Flaky(1), site="t.site", policy=RetryPolicy(attempts=2))
        [root] = drain_roots()
        note = root.meta["retry"]["t.site"]
        assert note["outcome"] == "ok"
        assert note["attempts"] == 2
        assert note["simulated_delay_seconds"] == pytest.approx(0.05)

    def test_span_meta_records_exhaustion(self):
        drain_roots()
        with span("outer"):
            with pytest.raises(RetryExhausted):
                retry_call(Flaky(9), site="t.site", policy=RetryPolicy(attempts=2))
        [root] = drain_roots()
        assert root.meta["retry"]["t.site"]["outcome"] == "exhausted"

    def test_metrics_quarantine_rolls_back_failed_attempts(self):
        def work():
            REGISTRY.counter("work.done").inc()
            REGISTRY.histogram("work.size").observe(3.0)
            return True

        def flaky_work(state={"calls": 0}):
            state["calls"] += 1
            result = work()
            if state["calls"] == 1:
                raise RuntimeError("transient")
            return result

        with collecting(reset=True):
            retry_call(flaky_work, site="t.site", policy=RetryPolicy(attempts=2))
            snapshot = REGISTRY.snapshot()
        # The failed attempt's observations were rolled back: values match
        # a run that never faulted.
        assert snapshot["counters"]["work.done"] == 1.0
        assert snapshot["histograms"]["work.size"]["count"] == 1
        # ... while the faults.* accounting survived the rollback.
        assert snapshot["counters"]["faults.retry.recovered"] == 1.0
        assert snapshot["counters"]["faults.retry.extra_attempts"] == 1.0

    def test_exhausted_counter(self):
        with collecting(reset=True):
            with pytest.raises(RetryExhausted):
                retry_call(Flaky(9), site="t.site", policy=RetryPolicy(attempts=2))
            snapshot = REGISTRY.snapshot()
        assert snapshot["counters"]["faults.retry.exhausted"] == 1.0
        assert "work.done" not in snapshot["counters"]

    def test_quarantine_off_keeps_partial_metrics(self):
        def noisy_flaky(state={"calls": 0}):
            state["calls"] += 1
            REGISTRY.counter("noisy").inc()
            if state["calls"] == 1:
                raise RuntimeError("transient")
            return True

        policy = RetryPolicy(attempts=2, quarantine_metrics=False)
        with collecting(reset=True):
            retry_call(noisy_flaky, site="t.site", policy=policy)
            snapshot = REGISTRY.snapshot()
        assert snapshot["counters"]["noisy"] == 2.0
