"""Tabular generator tests (VAE + GAN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.synth import TabularGAN, TabularVAE


@pytest.fixture(scope="module")
def mixed_table():
    rng = np.random.default_rng(0)
    table = Table("mix", ["cat", "x", "y"])
    for _ in range(250):
        category = ["a", "b", "c"][int(rng.integers(3))]
        base = {"a": 0.0, "b": 2.0, "c": 4.0}[category]
        x = base + rng.normal(0, 0.3)
        table.append([category, round(x, 3), round(2 * x + rng.normal(0, 0.2), 3)])
    return table


class TestTabularVAE:
    def test_sample_schema_matches(self, mixed_table):
        generator = TabularVAE(epochs=25, rng=0).fit(mixed_table)
        synthetic = generator.sample(50)
        assert synthetic.columns == mixed_table.columns
        assert synthetic.num_rows == 50

    def test_categories_from_domain(self, mixed_table):
        generator = TabularVAE(epochs=25, rng=0).fit(mixed_table)
        synthetic = generator.sample(50)
        assert set(synthetic.distinct_values("cat")) <= {"a", "b", "c"}

    def test_numeric_range_plausible(self, mixed_table):
        generator = TabularVAE(epochs=40, rng=0).fit(mixed_table)
        synthetic = generator.sample(100)
        values = [float(v) for v in synthetic.column("x")]
        assert -3 < np.mean(values) < 7

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TabularVAE().sample(5)


class TestTabularGAN:
    def test_sample_schema_matches(self, mixed_table):
        generator = TabularGAN(epochs=20, rng=0).fit(mixed_table)
        synthetic = generator.sample(40)
        assert synthetic.columns == mixed_table.columns
        assert synthetic.num_rows == 40

    def test_convergence_metric_available(self, mixed_table):
        generator = TabularGAN(epochs=20, rng=0).fit(mixed_table)
        convergence = generator.discriminator_convergence()
        assert 0.0 <= convergence <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TabularGAN().sample(5)
        with pytest.raises(RuntimeError):
            TabularGAN().discriminator_convergence()
