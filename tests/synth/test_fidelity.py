"""Fidelity metric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.synth import (
    categorical_tv_distance,
    correlation_preservation,
    fidelity_report,
    numeric_ks_statistic,
)


def _table(rows, name="t", columns=("cat", "x", "y")):
    return Table(name, list(columns), rows=rows)


class TestTVDistance:
    def test_identical_distribution_zero(self):
        table = _table([["a", 1, 1], ["b", 2, 2]])
        assert categorical_tv_distance(table, table.copy(), "cat") == 0.0

    def test_disjoint_distribution_one(self):
        real = _table([["a", 1, 1]])
        synth = _table([["b", 1, 1]])
        assert categorical_tv_distance(real, synth, "cat") == 1.0

    def test_half_shifted(self):
        real = _table([["a", 0, 0], ["a", 0, 0], ["b", 0, 0], ["b", 0, 0]])
        synth = _table([["a", 0, 0], ["a", 0, 0], ["a", 0, 0], ["b", 0, 0]])
        assert categorical_tv_distance(real, synth, "cat") == pytest.approx(0.25)


class TestKS:
    def test_identical_zero(self):
        rng = np.random.default_rng(0)
        rows = [["a", float(v), 0.0] for v in rng.normal(size=100)]
        table = _table(rows)
        assert numeric_ks_statistic(table, table.copy(), "x") == 0.0

    def test_shifted_distributions_high(self):
        rng = np.random.default_rng(0)
        real = _table([["a", float(v), 0.0] for v in rng.normal(0, 1, 100)])
        synth = _table([["a", float(v), 0.0] for v in rng.normal(5, 1, 100)])
        assert numeric_ks_statistic(real, synth, "x") > 0.9

    def test_empty_column_max_distance(self):
        real = _table([["a", 1.0, 0.0]])
        synth = _table([["a", None, 0.0]])
        assert numeric_ks_statistic(real, synth, "x") == 1.0


class TestCorrelation:
    def test_preserved_correlation_zero_drift(self):
        rng = np.random.default_rng(0)
        rows = [["a", float(v), float(2 * v)] for v in rng.normal(size=80)]
        real = _table(rows)
        assert correlation_preservation(real, real.copy(), ["x", "y"]) == pytest.approx(0.0)

    def test_broken_correlation_high_drift(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=80)
        real = _table([["a", float(v), float(2 * v)] for v in values])
        shuffled = rng.permutation(values)
        synth = _table([["a", float(v), float(2 * w)] for v, w in zip(values, shuffled)])
        assert correlation_preservation(real, synth, ["x", "y"]) > 0.5

    def test_single_column_zero(self):
        real = _table([["a", 1.0, 2.0]])
        assert correlation_preservation(real, real, ["x"]) == 0.0


class TestReport:
    def test_keys_present(self):
        rng = np.random.default_rng(0)
        rows = [["a", float(v), float(v + rng.normal())] for v in rng.normal(size=60)]
        report = fidelity_report(_table(rows), _table(rows), ["x", "y"])
        assert set(report) == {"mean_tv_distance", "mean_ks_statistic", "correlation_drift"}
        assert report["mean_ks_statistic"] == 0.0
        assert report["mean_tv_distance"] == 0.0
