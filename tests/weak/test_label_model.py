"""Label-model tests: majority vote and Dawid-Skene EM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.weak import ABSTAIN, EMLabelModel, MajorityVote, SimulatedCrowd


def _noisy_votes(n=400, sources=7, skills=(0.55, 0.95), seed=0):
    rng = np.random.default_rng(seed)
    truth = (rng.random(n) < 0.35).astype(int)
    crowd = SimulatedCrowd(n_workers=sources, skill_range=skills, response_rate=0.9, rng=seed + 1)
    return truth, crowd.annotate(truth), crowd


class TestMajorityVote:
    def test_unanimous(self):
        matrix = np.array([[1, 1, 1], [0, 0, 0]])
        assert MajorityVote().predict(matrix).tolist() == [1, 0]

    def test_abstentions_ignored(self):
        matrix = np.array([[1, ABSTAIN, ABSTAIN]])
        assert MajorityVote().predict_proba(matrix)[0] == 1.0

    def test_all_abstain_gives_half(self):
        matrix = np.full((1, 3), ABSTAIN)
        assert MajorityVote().predict_proba(matrix)[0] == 0.5

    def test_reasonable_accuracy(self):
        truth, votes, _ = _noisy_votes()
        accuracy = (MajorityVote().predict(votes) == truth).mean()
        assert accuracy > 0.8


class TestEMLabelModel:
    def test_at_least_matches_majority_vote(self):
        truth, votes, _ = _noisy_votes()
        mv_accuracy = (MajorityVote().predict(votes) == truth).mean()
        em_accuracy = (EMLabelModel().fit(votes).predict(votes) == truth).mean()
        assert em_accuracy >= mv_accuracy - 0.01

    def test_beats_majority_with_mixed_skill(self):
        """One expert among noisy workers: EM should upweight the expert."""
        rng = np.random.default_rng(0)
        n = 600
        truth = (rng.random(n) < 0.4).astype(int)
        votes = np.zeros((n, 5), dtype=np.int64)
        # Expert: 95% accurate; four coin-flippers at 55%.
        for i, y in enumerate(truth):
            votes[i, 0] = y if rng.random() < 0.95 else 1 - y
            for j in range(1, 5):
                votes[i, j] = y if rng.random() < 0.55 else 1 - y
        mv_accuracy = (MajorityVote().predict(votes) == truth).mean()
        em = EMLabelModel().fit(votes)
        em_accuracy = (em.predict(votes) == truth).mean()
        assert em_accuracy > mv_accuracy
        # The expert's estimated sensitivity should be the highest.
        assert np.argmax(em.sensitivity_) == 0

    def test_recovers_worker_skills(self):
        truth, votes, crowd = _noisy_votes(n=800)
        em = EMLabelModel().fit(votes)
        true_sens = np.array([s for s, _ in crowd.true_skills()])
        correlation = np.corrcoef(true_sens, em.sensitivity_)[0, 1]
        assert correlation > 0.6

    def test_probabilities_bounded(self):
        _, votes, _ = _noisy_votes(n=100)
        probs = EMLabelModel().fit_predict_proba(votes)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EMLabelModel().predict_proba(np.zeros((2, 2)))

    def test_handles_abstentions(self):
        matrix = np.array([[1, ABSTAIN], [ABSTAIN, 0], [1, 1], [0, 0]] * 10)
        probs = EMLabelModel().fit_predict_proba(matrix)
        assert np.isfinite(probs).all()
