"""Simulated-crowd tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.weak import ABSTAIN, SimulatedCrowd, Worker


class TestWorker:
    def test_perfect_worker(self):
        rng = np.random.default_rng(0)
        worker = Worker("w", sensitivity=1.0, specificity=1.0)
        assert worker.vote(1, rng) == 1
        assert worker.vote(0, rng) == 0

    def test_zero_response_rate_abstains(self):
        rng = np.random.default_rng(0)
        worker = Worker("w", 0.9, 0.9, response_rate=0.0)
        assert worker.vote(1, rng) == ABSTAIN


class TestSimulatedCrowd:
    def test_matrix_shape(self):
        crowd = SimulatedCrowd(n_workers=5, rng=0)
        matrix = crowd.annotate(np.array([0, 1, 1]))
        assert matrix.shape == (3, 5)

    def test_skill_range_validated(self):
        with pytest.raises(ValueError):
            SimulatedCrowd(skill_range=(0.2, 0.9))

    def test_response_rate_validated(self):
        with pytest.raises(ValueError):
            SimulatedCrowd(response_rate=1.5)

    def test_empirical_accuracy_matches_skill(self):
        crowd = SimulatedCrowd(n_workers=3, skill_range=(0.8, 0.9), response_rate=1.0, rng=0)
        truth = np.array([0, 1] * 400)
        matrix = crowd.annotate(truth)
        for j, (sensitivity, specificity) in enumerate(crowd.true_skills()):
            votes = matrix[:, j]
            positive_rows = truth == 1
            empirical_sens = (votes[positive_rows] == 1).mean()
            assert empirical_sens == pytest.approx(sensitivity, abs=0.06)

    def test_response_rate_controls_abstention(self):
        crowd = SimulatedCrowd(n_workers=4, response_rate=0.5, rng=0)
        matrix = crowd.annotate(np.ones(500, dtype=int))
        abstain_rate = (matrix == ABSTAIN).mean()
        assert abstain_rate == pytest.approx(0.5, abs=0.06)
