"""Labeling-function machinery tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.weak import ABSTAIN, LabelingFunction, apply_lfs, labeling_function, lf_summary


@pytest.fixture
def lfs():
    @labeling_function("positive_if_big")
    def big(x):
        return 1 if x > 10 else ABSTAIN

    @labeling_function("negative_if_small")
    def small(x):
        return 0 if x < 5 else ABSTAIN

    @labeling_function("always_positive")
    def always(x):
        return 1

    return [big, small, always]


class TestLabelingFunction:
    def test_decorator_preserves_name(self, lfs):
        assert lfs[0].name == "positive_if_big"

    def test_invalid_vote_rejected(self):
        bad = LabelingFunction("bad", lambda x: 7)
        with pytest.raises(ValueError):
            bad(0)

    def test_apply_lfs_matrix(self, lfs):
        matrix = apply_lfs(lfs, [20, 2, 7])
        assert matrix.shape == (3, 3)
        assert matrix[0].tolist() == [1, ABSTAIN, 1]
        assert matrix[1].tolist() == [ABSTAIN, 0, 1]
        assert matrix[2].tolist() == [ABSTAIN, ABSTAIN, 1]

    def test_apply_requires_lfs(self):
        with pytest.raises(ValueError):
            apply_lfs([], [1])


class TestSummary:
    def test_coverage_and_conflict(self, lfs):
        matrix = apply_lfs(lfs, [20, 2, 7])
        summary = lf_summary(matrix, lfs)
        by_name = {row["name"]: row for row in summary}
        assert by_name["always_positive"]["coverage"] == 1.0
        assert by_name["positive_if_big"]["coverage"] == pytest.approx(1 / 3)
        # small vs always conflict on example index 1.
        assert by_name["negative_if_small"]["conflict"] == pytest.approx(1 / 3)

    def test_accuracy_with_gold(self, lfs):
        matrix = apply_lfs(lfs, [20, 2, 7])
        gold = np.array([1, 0, 0])
        summary = lf_summary(matrix, lfs, gold=gold)
        by_name = {row["name"]: row for row in summary}
        assert by_name["positive_if_big"]["accuracy"] == 1.0
        assert by_name["always_positive"]["accuracy"] == pytest.approx(1 / 3)
