"""Auto-generated labeling function tests (§6.2.4 automation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.weak import ABSTAIN, EMLabelModel, apply_lfs, auto_labeling_functions


@pytest.fixture(scope="module")
def candidate_pool(small_benchmark):
    labeled = small_benchmark.labeled_pairs(negative_ratio=5, rng=1)
    triples = [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]
    pairs = [(a, b) for a, b, _ in triples]
    gold = np.array([y for _, _, y in triples])
    return pairs, gold


class TestAutoLabelingFunctions:
    def test_generates_named_lfs(self, small_benchmark, candidate_pool):
        pairs, _ = candidate_pool
        lfs = auto_labeling_functions(pairs, small_benchmark.compare_columns)
        assert lfs
        assert all(lf.name.startswith("auto_") for lf in lfs)

    def test_votes_are_valid(self, small_benchmark, candidate_pool):
        pairs, _ = candidate_pool
        lfs = auto_labeling_functions(pairs, small_benchmark.compare_columns)
        votes = apply_lfs(lfs, pairs[:50])
        assert set(np.unique(votes)) <= {ABSTAIN, 0, 1}

    def test_zero_supervision_labels_mostly_correct(self, small_benchmark, candidate_pool):
        """The §6.2.4 payoff: automatically generated weak labels reach
        'mostly correct' quality with no expert in the loop."""
        pairs, gold = candidate_pool
        lfs = auto_labeling_functions(pairs, small_benchmark.compare_columns)
        votes = apply_lfs(lfs, pairs)
        weak = EMLabelModel().fit(votes).predict(votes)
        assert (weak == gold).mean() > 0.85

    def test_missing_values_abstain(self, small_benchmark, candidate_pool):
        pairs, _ = candidate_pool
        lfs = auto_labeling_functions(pairs, small_benchmark.compare_columns)
        empty = {c: None for c in small_benchmark.compare_columns}
        assert all(lf((empty, empty)) == ABSTAIN for lf in lfs)

    def test_flat_columns_produce_no_lf(self):
        pairs = [({"c": "same"}, {"c": "same"})] * 40
        assert auto_labeling_functions(pairs, ["c"]) == []

    def test_too_few_observations_skipped(self):
        pairs = [({"c": "ab"}, {"c": "cd"})] * 5
        assert auto_labeling_functions(pairs, ["c"]) == []

    def test_quantile_validation(self, candidate_pool):
        pairs, _ = candidate_pool
        with pytest.raises(ValueError):
            auto_labeling_functions(pairs, ["title"], positive_quantile=0.3,
                                    negative_quantile=0.5)
