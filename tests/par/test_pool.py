"""pmap/pstarmap/pmap_chunks: serial≡parallel, fallbacks, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import REGISTRY, collecting, drain_roots
from repro.par import pmap, pmap_chunks, pstarmap
from repro.par import pool as pool_module


def _double(x):
    return x * 2


def _add(a, b):
    return a + b


def _noisy(x, rng):
    return x + rng.random()


def _noisy_pair(a, b, rng):
    return a * b + rng.random()


def _chunk_sum(payload):
    return sum(payload)


def _chunk_draw(payload, rng):
    return [x + rng.random() for x in payload]


def _boom(x):
    raise RuntimeError(f"kaboom on {x}")


def _map_span():
    """The par.map span from the most recent drained trace roots."""
    for root in drain_roots():
        found = root.find("par.map") if hasattr(root, "find") else None
        if found is not None:
            return found
        if root.name == "par.map":
            return root
    raise AssertionError("no par.map span recorded")


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 3, 4])
    def test_pmap(self, jobs):
        items = list(range(97))
        assert pmap(_double, items, jobs=jobs) == [x * 2 for x in items]

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_pstarmap(self, jobs):
        items = [(i, i + 1) for i in range(53)]
        assert pstarmap(_add, items, jobs=jobs) == [a + b for a, b in items]

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_pmap_chunks_fold(self, jobs):
        items = list(range(40))
        total = pmap_chunks(
            _chunk_sum, items, jobs=jobs, chunk_size=7,
            combine=lambda a, b: a + b, initial=0,
        )
        assert total == sum(items)

    def test_pmap_chunks_parts_ordered(self):
        parts = pmap_chunks(_chunk_sum, list(range(40)), jobs=3, chunk_size=7)
        assert parts == [sum(range(40)[k : k + 7]) for k in range(0, 40, 7)]

    @pytest.mark.parametrize("call", [
        lambda jobs: pmap(_double, [], jobs=jobs),
        lambda jobs: pstarmap(_add, [], jobs=jobs),
        lambda jobs: pmap_chunks(_chunk_sum, [], jobs=jobs),
    ])
    def test_empty_input(self, call):
        assert call(1) == call(4) == []

    def test_single_item(self):
        assert pmap(_double, [21], jobs=4) == [42]


class TestSeededEquivalence:
    def test_pmap_rng_is_jobs_independent(self):
        items = list(range(100))
        serial = pmap(_noisy, items, jobs=1, seed=123)
        for jobs in (2, 3, 4):
            assert pmap(_noisy, items, jobs=jobs, seed=123) == serial

    def test_pstarmap_rng_is_jobs_independent(self):
        items = [(i, i + 2) for i in range(60)]
        serial = pstarmap(_noisy_pair, items, jobs=1, seed=9)
        assert pstarmap(_noisy_pair, items, jobs=4, seed=9) == serial

    def test_pmap_chunks_rng_is_jobs_independent(self):
        items = list(range(80))
        serial = pmap_chunks(_chunk_draw, items, jobs=1, seed=5, chunk_size=11)
        assert pmap_chunks(_chunk_draw, items, jobs=3, seed=5, chunk_size=11) == serial

    def test_different_seeds_differ(self):
        items = list(range(30))
        assert pmap(_noisy, items, jobs=2, seed=1) != pmap(_noisy, items, jobs=2, seed=2)

    def test_chunk_size_changes_streams_but_not_layout_contract(self):
        # chunk_size is part of the contract: changing it may change the
        # random streams, but any fixed value is still jobs-independent.
        items = list(range(50))
        assert (
            pmap(_noisy, items, jobs=1, seed=3, chunk_size=5)
            == pmap(_noisy, items, jobs=4, seed=3, chunk_size=5)
        )


class TestValidationAndErrors:
    def test_jobs_zero_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            pmap(_double, [1], jobs=0)

    @pytest.mark.parametrize("bad", [True, 2.0, "2", None])
    def test_jobs_wrong_type_rejected(self, bad):
        with pytest.raises(TypeError, match="jobs"):
            pmap(_double, [1], jobs=bad)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_chunk_fn_errors_propagate(self, jobs):
        with pytest.raises(RuntimeError, match="kaboom"):
            pmap(_boom, list(range(10)), jobs=jobs, chunk_size=2)


class TestFallbacks:
    def test_unpicklable_fn_falls_back_to_serial(self):
        items = list(range(20))
        with collecting(reset=True):
            result = pmap(lambda x: x + 1, items, jobs=4, chunk_size=2)
            snapshot = REGISTRY.snapshot()
        assert result == [x + 1 for x in items]
        assert snapshot["counters"]["par.fallback.unpicklable"] == 1.0

    def test_single_chunk_falls_back(self):
        drain_roots()
        assert pmap(_double, [1, 2, 3], jobs=4, chunk_size=10) == [2, 4, 6]
        assert _map_span().meta["mode"] == "serial:single_chunk"

    def test_jobs_one_is_serial(self):
        drain_roots()
        pmap(_double, list(range(10)), jobs=1, chunk_size=2)
        assert _map_span().meta["mode"] == "serial:jobs"

    def test_nested_call_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_IN_WORKER", True)
        drain_roots()
        assert pmap(_double, list(range(10)), jobs=4, chunk_size=2) == [
            x * 2 for x in range(10)
        ]
        assert _map_span().meta["mode"] == "serial:nested"

    def test_pool_error_falls_back(self, monkeypatch):
        def _broken(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(pool_module, "_run_parallel", _broken)
        drain_roots()
        with collecting(reset=True):
            result = pmap(_double, list(range(10)), jobs=4, chunk_size=2)
            snapshot = REGISTRY.snapshot()
        assert result == [x * 2 for x in range(10)]
        assert snapshot["counters"]["par.fallback.pool_error"] == 1.0
        assert _map_span().meta["mode"] == "serial:pool_error"


class TestTelemetry:
    def test_parallel_span_meta(self):
        drain_roots()
        pmap(_double, list(range(24)), jobs=2, chunk_size=6)
        meta = _map_span().meta
        assert meta["mode"] == "parallel"
        assert meta["jobs"] == 2
        assert meta["chunks"] == 4
        assert meta["items"] == 24
        assert len(meta["chunk_seconds"]) == 4
        assert all(seconds >= 0 for seconds in meta["chunk_seconds"])

    def test_metrics_behind_enabled_guard(self):
        REGISTRY.reset()
        assert not REGISTRY.enabled
        pmap(_double, list(range(10)), jobs=2, chunk_size=2)
        assert REGISTRY.snapshot()["counters"] == {}

    def test_metrics_when_collecting(self):
        with collecting(reset=True):
            pmap(_double, list(range(10)), jobs=2, chunk_size=2)
            snapshot = REGISTRY.snapshot()
        assert snapshot["counters"]["par.calls"] == 1.0
        assert snapshot["counters"]["par.items"] == 10.0
        assert snapshot["counters"]["par.chunks"] == 5.0
        assert snapshot["histograms"]["par.chunk_seconds"]["count"] == 5
