"""Property tests for the chunking/seeding/reduction invariants.

These are the three legs the serial≡parallel proof stands on; each is
checked over a seeded sweep of input shapes rather than hand-picked
examples (stdlib + numpy only — no hypothesis in the container).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.par import (
    Chunk,
    chunk_items,
    chunk_rng,
    chunk_seed,
    chunk_spans,
    ordered_reduce,
)
from repro.par.chunking import DEFAULT_TARGET_CHUNKS, resolve_chunk_size


def _cases(rng, rounds=200):
    """Seeded (n_items, chunk_size) sweep, including the edge shapes."""
    yield 0, None
    yield 0, 3
    yield 1, None
    yield 1, 1
    for _ in range(rounds):
        n_items = int(rng.integers(0, 500))
        chunk_size = None if rng.random() < 0.3 else int(rng.integers(1, 64))
        yield n_items, chunk_size


class TestChunkSpans:
    def test_partition_invariants(self):
        rng = np.random.default_rng(7)
        for n_items, chunk_size in _cases(rng):
            spans = chunk_spans(n_items, chunk_size)
            # Ids are 0..k-1 in order.
            assert [span.chunk_id for span in spans] == list(range(len(spans)))
            # Spans tile [0, n) contiguously.
            covered = [i for span in spans for i in range(span.start, span.stop)]
            assert covered == list(range(n_items))
            # No empty chunk unless the input itself is empty.
            if n_items == 0:
                assert spans == []
            else:
                assert all(span.size >= 1 for span in spans)

    def test_chunk_items_concatenates_to_input(self):
        rng = np.random.default_rng(11)
        for n_items, chunk_size in _cases(rng):
            items = list(rng.integers(0, 10**6, size=n_items))
            chunks = chunk_items(items, chunk_size)
            assert [x for _, payload in chunks for x in payload] == items

    def test_layout_independent_of_anything_but_n_and_size(self):
        # The same (n, chunk_size) must always produce the same spans —
        # this is what makes per-chunk seeds jobs-independent.
        assert chunk_spans(100, 7) == chunk_spans(100, 7)
        assert chunk_spans(100, 7)[3] == Chunk(3, 21, 28)

    def test_default_size_targets_fixed_chunk_count(self):
        for n_items in (1, 31, 32, 33, 1000, 12345):
            spans = chunk_spans(n_items)
            assert 1 <= len(spans) <= DEFAULT_TARGET_CHUNKS

    def test_negative_items_raises(self):
        with pytest.raises(ValueError):
            chunk_spans(-1)

    def test_nonpositive_chunk_size_raises(self):
        with pytest.raises(ValueError):
            resolve_chunk_size(10, 0)


class TestChunkSeed:
    def test_deterministic_and_distinct(self):
        seeds = [chunk_seed(42, chunk_id) for chunk_id in range(100)]
        assert seeds == [chunk_seed(42, chunk_id) for chunk_id in range(100)]
        assert len(set(seeds)) == 100
        assert seeds != [chunk_seed(43, chunk_id) for chunk_id in range(100)]

    def test_rng_streams_match_seed(self):
        a = chunk_rng(5, 3).random(8)
        b = np.random.default_rng(chunk_seed(5, 3)).random(8)
        assert np.array_equal(a, b)


class TestOrderedReduce:
    def test_completion_order_irrelevant(self):
        rng = np.random.default_rng(3)
        pairs = [(chunk_id, chunk_id * 10) for chunk_id in range(20)]
        expected = ordered_reduce(pairs)
        for _ in range(50):
            shuffled = list(pairs)
            rng.shuffle(shuffled)
            assert ordered_reduce(shuffled) == expected
            assert ordered_reduce(shuffled, combine=lambda a, b: a + b) == sum(
                value for _, value in pairs
            )

    def test_fold_is_left_to_right_by_chunk_id(self):
        pairs = [(2, "c"), (0, "a"), (1, "b")]
        assert ordered_reduce(pairs, combine=lambda a, b: a + b) == "abc"
        assert ordered_reduce(pairs, combine=lambda a, b: a + b, initial="_") == "_abc"

    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError, match="duplicate chunk ids"):
            ordered_reduce([(0, "a"), (0, "b")])

    def test_empty_needs_initial_for_fold(self):
        assert ordered_reduce([]) == []
        assert ordered_reduce([], combine=lambda a, b: a | b, initial=set()) == set()
        with pytest.raises(ValueError, match="initial"):
            ordered_reduce([], combine=lambda a, b: a | b)
