"""Differential harness: every wired call site is serial≡parallel.

Each test runs the same seeded workload with ``jobs=1`` and
``jobs=2..4`` and asserts bit-identical results — the correctness
contract that lets callers treat ``jobs`` as a pure throughput knob.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.discovery import SemanticMatcher, SyntacticMatcher
from repro.er import DeepER, LSHBlocker, TokenBlocker
from repro.faults import Fault, FaultPlan
from repro.obs import REGISTRY, collecting, drain_roots
from repro.par import pmap


def _toy_vector(token: str) -> np.ndarray:
    """Picklable deterministic token embedding (content-seeded)."""
    rng = np.random.default_rng(sum(token.encode()) % (2**31))
    return rng.normal(size=16)


@pytest.fixture(scope="module")
def toy_records():
    rng = np.random.default_rng(0)
    nouns = ["pasta", "sushi", "grill", "deli", "cafe", "tavern", "bistro"]
    cities = ["austin", "boston", "chicago", "denver"]
    records = [
        {
            "name": f"{rng.choice(nouns)} {rng.choice(nouns)} {i}",
            "city": str(rng.choice(cities)),
            "phone": f"{rng.integers(100, 999)}-{rng.integers(1000, 9999)}",
        }
        for i in range(40)
    ]
    return records[:20], records[20:]


class TestBlockingDifferential:
    def test_lsh_candidate_pairs(self, rng):
        emb_a = rng.normal(size=(60, 24))
        emb_b = np.concatenate([emb_a[:30] + 0.01 * rng.normal(size=(30, 24)),
                                rng.normal(size=(30, 24))])
        ids_a = [f"a{i}" for i in range(60)]
        ids_b = [f"b{i}" for i in range(60)]
        blocker = LSHBlocker(n_bits=32, n_bands=8, rng=0)
        serial = blocker.candidate_pairs(emb_a, ids_a, emb_b, ids_b, jobs=1)
        assert serial, "workload produced no candidates; test is vacuous"
        for jobs in (2, 3, 4):
            assert blocker.candidate_pairs(emb_a, ids_a, emb_b, ids_b, jobs=jobs) == serial

    def test_token_candidate_pairs(self, toy_records):
        records_a, records_b = toy_records
        ids_a = [f"a{i}" for i in range(len(records_a))]
        ids_b = [f"b{i}" for i in range(len(records_b))]
        blocker = TokenBlocker(["name", "city", "phone"], max_df=0.2)
        serial = blocker.candidate_pairs(records_a, ids_a, records_b, ids_b, jobs=1)
        assert serial, "workload produced no candidates; test is vacuous"
        for jobs in (2, 4):
            assert blocker.candidate_pairs(records_a, ids_a, records_b, ids_b, jobs=jobs) == serial

    def test_empty_and_single_inputs(self, toy_records):
        records_a, records_b = toy_records
        token = TokenBlocker(["name", "city"], max_df=0.2)
        lsh = LSHBlocker(n_bits=16, n_bands=4, rng=0)
        empty_emb = np.empty((0, 8))
        one_emb = np.random.default_rng(1).normal(size=(1, 8))
        for jobs in (1, 2):
            assert token.candidate_pairs([], [], records_b, [f"b{i}" for i in range(20)], jobs=jobs) == set()
            assert token.candidate_pairs(records_a[:1], ["a0"], records_b[:1], ["b0"], jobs=jobs) in (set(), {("a0", "b0")})
            assert lsh.candidate_pairs(empty_emb, [], one_emb, ["b0"], jobs=jobs) == set()
            assert lsh.candidate_pairs(one_emb, ["a0"], one_emb, ["b0"], jobs=jobs) == {("a0", "b0")}


class TestDeepERDifferential:
    @pytest.fixture(scope="class")
    def labeled(self, small_benchmark):
        labeled = small_benchmark.labeled_pairs(negative_ratio=2, rng=1)[:60]
        return [
            (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
            for a, b, y in labeled
        ]

    def test_pair_features_and_predictions(self, word_model, small_benchmark, labeled):
        pairs = [(a, b) for a, b, _ in labeled]
        outputs = {}
        for jobs in (1, 3):
            model = DeepER(word_model, small_benchmark.compare_columns, rng=0, jobs=jobs)
            model.fit(labeled, epochs=3)
            outputs[jobs] = (
                model._pair_features_numpy(pairs),
                model.predict_proba(pairs),
            )
        assert np.array_equal(outputs[1][0], outputs[3][0])
        assert np.array_equal(outputs[1][1], outputs[3][1])


class TestMatcherDifferential:
    @pytest.fixture(scope="class")
    def tables(self):
        rng = np.random.default_rng(2)
        rows_a = [
            {"full_name": f"person {i}", "work_city": f"city {i % 5}", "dept": f"unit {i % 3}"}
            for i in range(12)
        ]
        rows_b = [
            {"person": f"person {i}", "location_town": f"city {i % 5}", "division": f"unit {i % 3}",
             "noise": float(rng.random())}
            for i in range(12)
        ]
        return Table.from_records("a", rows_a), Table.from_records("b", rows_b)

    def test_syntactic_matcher(self, tables):
        table_a, table_b = tables
        matcher = SyntacticMatcher(name_weight=0.5)
        serial = matcher.match_tables(table_a, table_b, threshold=0.1, jobs=1)
        assert serial, "workload produced no links; test is vacuous"
        for jobs in (2, 4):
            assert matcher.match_tables(table_a, table_b, threshold=0.1, jobs=jobs) == serial

    def test_semantic_matcher(self, tables):
        table_a, table_b = tables
        matcher = SemanticMatcher(_toy_vector, dim=16, name_weight=0.5)
        serial = matcher.match_tables(table_a, table_b, threshold=0.0, jobs=1)
        assert serial, "workload produced no links; test is vacuous"
        assert matcher.match_tables(table_a, table_b, threshold=0.0, jobs=3) == serial

    def test_single_column_tables(self):
        table_a = Table.from_records("a", [{"name": "x"}])
        table_b = Table.from_records("b", [{"title": "x"}])
        matcher = SyntacticMatcher()
        for jobs in (1, 2):
            links = matcher.match_tables(table_a, table_b, threshold=0.0, jobs=jobs)
            assert len(links) == 1


def _triple(x):
    return x * 3


def _map_span():
    """The par.map span from the most recent drained trace roots."""
    for root in drain_roots():
        if root.name == "par.map":
            return root
        found = root.find("par.map")
        if found is not None:
            return found
    raise AssertionError("no par.map span recorded")


class TestInjectedPoolFaults:
    """Injected pool faults exercise the retry-then-serial-fallback path
    without changing a single result — the par determinism contract holds
    under fault injection too."""

    ITEMS = list(range(37))

    def test_exhausted_pool_falls_back_serial_identical(self):
        serial = pmap(_triple, self.ITEMS, jobs=1)
        for jobs in (2, 3, 4):
            plan = FaultPlan([Fault("par.pool", "error", hits=(0, 1))])
            with collecting(reset=True), plan:
                drain_roots()
                result = pmap(_triple, self.ITEMS, jobs=jobs, chunk_size=5)
                snapshot = REGISTRY.snapshot()
            assert result == serial
            assert plan.ledger.count("error", "par.pool") == 2
            map_span = _map_span()
            assert map_span.meta["mode"] == "serial:injected"
            assert map_span.meta["pool_attempts"] == 2
            assert snapshot["counters"]["par.fallback.injected"] == 1.0

    def test_single_injected_fault_recovers_to_parallel(self):
        serial = pmap(_triple, self.ITEMS, jobs=1)
        with FaultPlan([Fault("par.pool", "error", hits=(0,))]) as plan:
            drain_roots()
            result = pmap(_triple, self.ITEMS, jobs=2, chunk_size=5)
        assert result == serial
        assert plan.ledger.count("error", "par.pool") == 1
        map_span = _map_span()
        assert map_span.meta["mode"] == "parallel"
        assert map_span.meta["pool_attempts"] == 2

    def test_no_faults_single_pool_attempt(self):
        with FaultPlan([]):
            drain_roots()
            pmap(_triple, self.ITEMS, jobs=2, chunk_size=5)
        map_span = _map_span()
        assert map_span.meta["mode"] == "parallel"
        assert map_span.meta["pool_attempts"] == 1


class TestBenchDifferential:
    def test_e2_rows_identical_across_jobs(self):
        from benchmarks.bench_e2_blocking import run_experiment

        def strip(rows):
            return [{k: v for k, v in row.items() if k != "seconds"} for row in rows]

        serial = run_experiment(profile="smoke", jobs=1)
        parallel = run_experiment(profile="smoke", jobs=2)
        assert strip(serial) == strip(parallel)
        assert all("seconds" in row for row in serial)
