"""Shared fixtures: deterministic RNGs and session-scoped expensive objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import World, citations_benchmark
from repro.embeddings import tuple_documents
from repro.text import SkipGram


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def world() -> World:
    return World(0)


@pytest.fixture(scope="session")
def small_benchmark():
    """A small citations EM benchmark shared across ER tests."""
    return citations_benchmark(n_entities=120, rng=0)


@pytest.fixture(scope="session")
def word_model(small_benchmark) -> SkipGram:
    """Word embeddings trained on the benchmark tables + world corpus."""
    docs = tuple_documents([small_benchmark.table_a, small_benchmark.table_b])
    word_docs = [[t for v in doc for t in str(v).split()] for doc in docs]
    corpus = World(5).corpus(400)
    return SkipGram(dim=24, window=8, epochs=8, rng=0).fit(word_docs + corpus)
