"""String-similarity feature tests with hypothesis metric properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.er import (
    exact_match,
    jaccard_tokens,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    numeric_similarity,
    overlap_coefficient,
    pair_features,
    trigram_jaccard,
    TEXT_FEATURES,
)

words = st.text(alphabet="abcdef ", min_size=0, max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("kitten", "sitting", 3),
            ("", "abc", 3),
            ("abc", "", 3),
            ("same", "same", 0),
            ("ab", "ba", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @settings(max_examples=50, deadline=None)
    @given(words, words)
    def test_symmetry_property(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=50, deadline=None)
    @given(words, words, words)
    def test_triangle_inequality_property(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    def test_similarity_bounds(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_winkler_prefix_bonus(self):
        assert jaro_winkler("prefixed", "prefixxx") >= jaro("prefixed", "prefixxx")

    @settings(max_examples=40, deadline=None)
    @given(words, words)
    def test_jaro_winkler_bounds_property(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-9


class TestSetSimilarities:
    def test_jaccard(self):
        assert jaccard_tokens("a b c", "b c d") == pytest.approx(0.5)
        assert jaccard_tokens("", "") == 1.0
        assert jaccard_tokens("a", "") == 0.0

    def test_overlap(self):
        assert overlap_coefficient("a b", "a b c d") == 1.0
        assert overlap_coefficient("", "") == 1.0

    def test_trigram_robust_to_single_typo(self):
        clean = trigram_jaccard("restaurant", "restaurant")
        typo = trigram_jaccard("restaurant", "restuarant")
        different = trigram_jaccard("restaurant", "bibliothek")
        assert clean == 1.0
        assert typo > 0.3
        assert different < 0.1

    def test_exact_match_case_insensitive(self):
        assert exact_match("ABC", "abc") == 1.0
        assert exact_match("ab", "ba") == 0.0

    @settings(max_examples=40, deadline=None)
    @given(words)
    def test_self_similarity_property(self, a):
        for fn in TEXT_FEATURES.values():
            assert fn(a, a) == pytest.approx(1.0)


class TestNumericSimilarity:
    def test_equal(self):
        assert numeric_similarity(5, 5.0) == 1.0

    def test_relative(self):
        assert numeric_similarity(100, 90) == pytest.approx(0.9)

    def test_unparseable(self):
        assert numeric_similarity("abc", 5) == 0.0

    def test_both_zero(self):
        assert numeric_similarity(0, 0) == 1.0


class TestPairFeatures:
    def test_length(self):
        features = pair_features(
            {"a": "x", "n": 1}, {"a": "y", "n": 2}, ["a"], ["n"]
        )
        assert len(features) == len(TEXT_FEATURES) + 1 + 2

    def test_missing_sets_indicator(self):
        features = pair_features({"a": None}, {"a": "y"}, ["a"])
        assert features[-1] == 1.0
        assert all(f == 0.0 for f in features[:-1])

    def test_identical_records_high(self):
        record = {"a": "john smith", "n": 5}
        features = pair_features(record, dict(record), ["a"], ["n"])
        assert features[0] == 1.0  # levenshtein similarity
        assert features[len(TEXT_FEATURES) + 1] == 1.0  # numeric sim
