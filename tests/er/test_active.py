"""Active-labelling loop tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import FeatureBasedER, random_sampling, uncertainty_sampling


@pytest.fixture(scope="module")
def active_setup(small_benchmark):
    labeled = small_benchmark.labeled_pairs(negative_ratio=6, rng=2)
    trips = [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]
    seed = trips[:20]
    pool_trips = trips[20:]
    pool = [(a, b) for a, b, _ in pool_trips]
    answers = [y for _, _, y in pool_trips]
    return seed, pool, answers


class TestUncertaintySampling:
    def test_budget_respected(self, small_benchmark, active_setup):
        seed, pool, answers = active_setup
        matcher = FeatureBasedER(small_benchmark.compare_columns)
        result = uncertainty_sampling(
            matcher, pool, lambda i: answers[i], seed, budget=30, batch_size=10
        )
        assert result.labels_used == len(seed) + 30

    def test_evaluate_callback_recorded(self, small_benchmark, active_setup):
        seed, pool, answers = active_setup
        matcher = FeatureBasedER(small_benchmark.compare_columns)
        result = uncertainty_sampling(
            matcher, pool, lambda i: answers[i], seed,
            budget=20, batch_size=10,
            evaluate=lambda m: {"checked": 1.0},
        )
        assert len(result.rounds) == 2
        assert result.rounds[0]["labels"] == 30.0

    def test_no_duplicate_pool_labels(self, small_benchmark, active_setup):
        seed, pool, answers = active_setup
        matcher = FeatureBasedER(small_benchmark.compare_columns)
        result = uncertainty_sampling(
            matcher, pool, lambda i: answers[i], seed, budget=30, batch_size=15
        )
        picked = result.labeled[len(seed):]
        keys = [tuple(sorted(a.items())) + tuple(sorted(b.items())) for a, b, _ in picked]
        # Records may legitimately repeat in the pool, but the count must
        # equal the budget (no pair labelled twice via the same index).
        assert len(picked) == 30

    def test_stops_when_pool_exhausted(self, small_benchmark, active_setup):
        seed, pool, answers = active_setup
        matcher = FeatureBasedER(small_benchmark.compare_columns)
        small_pool = pool[:7]
        result = uncertainty_sampling(
            matcher, small_pool, lambda i: answers[i], seed, budget=100, batch_size=5
        )
        assert result.labels_used == len(seed) + 7


class TestRandomSampling:
    def test_budget_respected(self, small_benchmark, active_setup):
        seed, pool, answers = active_setup
        matcher = FeatureBasedER(small_benchmark.compare_columns)
        result = random_sampling(
            matcher, pool, lambda i: answers[i], seed, budget=20, batch_size=10
        )
        assert result.labels_used == len(seed) + 20
