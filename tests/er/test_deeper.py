"""DeepER matcher tests (Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import DeepER, classification_prf
from repro.er.deeper import MatcherHead


@pytest.fixture(scope="module")
def labeled_split(small_benchmark):
    labeled = small_benchmark.labeled_pairs(negative_ratio=4, rng=1)
    trips = [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]
    split = int(0.7 * len(trips))
    return trips[:split], trips[split:]


def _test_arrays(test):
    return [(a, b) for a, b, _ in test], np.array([y for _, _, y in test])


class TestDeepER:
    def test_invalid_composition(self, word_model, small_benchmark):
        with pytest.raises(ValueError):
            DeepER(word_model, small_benchmark.compare_columns, composition="transformer")

    def test_fit_requires_pairs(self, word_model, small_benchmark):
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        with pytest.raises(ValueError):
            model.fit([])

    def test_predict_before_fit_raises(self, word_model, small_benchmark):
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        with pytest.raises(RuntimeError):
            model.predict_proba([({}, {})])

    def test_mean_composition_learns(self, word_model, small_benchmark, labeled_split):
        train, test = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train, epochs=30)
        pairs, labels = _test_arrays(test)
        prf = classification_prf(labels, model.predict(pairs))
        assert prf.f1 > 0.7

    def test_sif_composition_learns(self, word_model, small_benchmark, labeled_split):
        train, test = labeled_split
        model = DeepER(
            word_model, small_benchmark.compare_columns, composition="sif", rng=0
        )
        model.fit(train, epochs=30)
        pairs, labels = _test_arrays(test)
        assert classification_prf(labels, model.predict(pairs)).f1 > 0.7

    def test_lstm_composition_trains(self, word_model, small_benchmark, labeled_split):
        """End-to-end LSTM composer: just verify it trains and beats chance."""
        train, test = labeled_split
        model = DeepER(
            word_model,
            small_benchmark.compare_columns,
            composition="lstm",
            max_tokens=8,
            rng=0,
        )
        model.fit(train[:120], epochs=4)
        pairs, labels = _test_arrays(test)
        probs = model.predict_proba(pairs)
        assert probs.shape == (len(pairs),)
        auc_proxy = probs[labels == 1].mean() - probs[labels == 0].mean()
        assert auc_proxy > 0.05

    def test_cnn_composition_trains(self, word_model, small_benchmark, labeled_split):
        train, test = labeled_split
        model = DeepER(
            word_model,
            small_benchmark.compare_columns,
            composition="cnn",
            max_tokens=8,
            rng=0,
        )
        model.fit(train[:150], epochs=12)
        pairs, labels = _test_arrays(test)
        probs = model.predict_proba(pairs)
        auc_proxy = probs[labels == 1].mean() - probs[labels == 0].mean()
        assert auc_proxy > 0.05

    def test_trainable_composer_tuple_vectors(self, word_model, small_benchmark, labeled_split):
        train, _ = labeled_split
        model = DeepER(
            word_model, small_benchmark.compare_columns,
            composition="cnn", max_tokens=8, rng=0,
        ).fit(train[:60], epochs=2)
        records = [small_benchmark.table_a.row_dict(i) for i in range(4)]
        vectors = model.tuple_vectors(records)
        assert vectors.shape == (4, model.composer.output_dim)

    def test_probabilities_in_range(self, word_model, small_benchmark, labeled_split):
        train, test = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train, epochs=5)
        probs = model.predict_proba([(a, b) for a, b, _ in test])
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predict_empty_pairs(self, word_model, small_benchmark, labeled_split):
        train, _ = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train[:50], epochs=2)
        assert model.predict_proba([]).shape == (0,)

    def test_undersampling_caps_negatives(self, word_model, small_benchmark, labeled_split):
        train, _ = labeled_split
        model = DeepER(
            word_model,
            small_benchmark.compare_columns,
            undersample_ratio=1.0,
            rng=0,
        )
        sampled = model._maybe_undersample(train)
        positives = sum(1 for _, _, y in sampled if y == 1)
        negatives = sum(1 for _, _, y in sampled if y == 0)
        assert negatives <= positives

    def test_tuple_vectors_shape(self, word_model, small_benchmark):
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        records = [small_benchmark.table_a.row_dict(i) for i in range(5)]
        assert model.tuple_vectors(records).shape == (5, word_model.dim)

    def test_predict_proba_restores_prior_train_mode(
        self, word_model, small_benchmark, labeled_split
    ):
        """A freshly trained matcher (train mode) goes back to train mode."""
        train, test = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train[:50], epochs=2)
        assert model.classifier.training
        model.predict_proba([(a, b) for a, b, _ in test[:4]])
        assert model.classifier.training

    def test_predict_proba_preserves_eval_mode(
        self, word_model, small_benchmark, labeled_split
    ):
        """A matcher deliberately parked in eval mode (the serving
        contract) must not be flipped back to train by inference."""
        train, test = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train[:50], epochs=2)
        model.classifier.eval()
        model.predict_proba([(a, b) for a, b, _ in test[:4]])
        assert not model.classifier.training

    def test_predict_proba_preserves_composer_mode(
        self, word_model, small_benchmark, labeled_split
    ):
        train, test = labeled_split
        model = DeepER(
            word_model, small_benchmark.compare_columns,
            composition="lstm", max_tokens=8, rng=0,
        )
        model.fit(train[:60], epochs=1)
        model.classifier.eval()
        model.composer.eval()
        model.predict_proba([(a, b) for a, b, _ in test[:4]])
        assert not model.classifier.training
        assert not model.composer.training

    def test_missing_attributes_handled(self, word_model, small_benchmark, labeled_split):
        train, _ = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train[:50], epochs=2)
        empty = {c: None for c in small_benchmark.compare_columns}
        probs = model.predict_proba([(empty, empty)])
        assert np.isfinite(probs).all()


class TestPersistenceAndEarlyStopping:
    def test_save_load_roundtrip(self, word_model, small_benchmark, labeled_split, tmp_path):
        train, test = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train, epochs=15)
        path = tmp_path / "matcher.npz"
        model.save(str(path))
        loaded = DeepER.load(str(path), word_model)
        pairs, _ = _test_arrays(test)
        assert np.allclose(model.predict_proba(pairs), loaded.predict_proba(pairs))

    def test_save_load_predictions_bit_identical(
        self, word_model, small_benchmark, labeled_split, tmp_path
    ):
        """Persistence must not perturb a single bit of the probabilities —
        the serving layer's caches key on exact scores, so a reloaded
        matcher has to be indistinguishable from the original."""
        train, test = labeled_split
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(train[:120], epochs=4)
        pairs, _ = _test_arrays(test)
        before = model.predict_proba(pairs)
        path = tmp_path / "matcher.npz"
        model.save(str(path))
        loaded = DeepER.load(str(path), word_model)
        assert np.array_equal(before, loaded.predict_proba(pairs))
        # And the round-trip is stable: save the loaded model again.
        path2 = tmp_path / "matcher2.npz"
        loaded.save(str(path2))
        again = DeepER.load(str(path2), word_model)
        assert np.array_equal(before, again.predict_proba(pairs))

    def test_save_requires_fit(self, word_model, small_benchmark, tmp_path):
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        with pytest.raises(RuntimeError):
            model.save(str(tmp_path / "m.npz"))

    def test_load_preserves_config(self, word_model, small_benchmark, labeled_split, tmp_path):
        train, _ = labeled_split
        model = DeepER(
            word_model, small_benchmark.compare_columns, composition="sif", rng=0
        ).fit(train[:80], epochs=3)
        path = tmp_path / "m.npz"
        model.save(str(path))
        loaded = DeepER.load(str(path), word_model)
        assert loaded.composition == "sif"
        assert loaded.columns == model.columns

    def test_early_stopping_halts_and_restores(self, word_model, small_benchmark, labeled_split):
        train, test = labeled_split
        validation = test[:80]
        model = DeepER(word_model, small_benchmark.compare_columns, rng=0)
        model.fit(
            train[:150], epochs=200, validation_pairs=validation, patience=3
        )
        # It must still be a working matcher after restoration.
        pairs, labels = _test_arrays(test)
        probs = model.predict_proba(pairs)
        assert probs[labels == 1].mean() > probs[labels == 0].mean()


class TestMatcherHead:
    def test_fit_predict(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(80, 5))
        y = (x[:, 0] > 0).astype(float)
        head = MatcherHead(5, rng=0).fit(x, y, epochs=40)
        predictions = (head.predict_proba(x) > 0.5).astype(float)
        assert (predictions == y).mean() > 0.9

    def test_sample_weight_shifts_decision(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(float)
        weights = np.where(y == 1, 10.0, 0.1)
        head = MatcherHead(2, rng=0).fit(x, y, epochs=30, sample_weight=weights)
        # Heavily weighting positives should push mean probability up.
        assert head.predict_proba(x).mean() > 0.5
