"""Traditional ER baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import (
    FeatureBasedER,
    LogisticRegressionClassifier,
    ThresholdMatcher,
    classification_prf,
)


class TestLogisticRegression:
    def test_learns_linear_boundary(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = (x @ np.array([1.0, -2.0, 0.5]) > 0).astype(int)
        model = LogisticRegressionClassifier().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_probabilities_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 2))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegressionClassifier().fit(x, y)
        probs = model.predict_proba(x)
        assert np.all((probs > 0) & (probs < 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_balanced_class_weight_improves_minority_recall(self):
        rng = np.random.default_rng(1)
        x = np.vstack([rng.normal(-1, 1, size=(190, 2)), rng.normal(1.1, 1, size=(10, 2))])
        y = np.array([0] * 190 + [1] * 10)
        plain = LogisticRegressionClassifier().fit(x, y)
        balanced = LogisticRegressionClassifier(class_weight="balanced").fit(x, y)
        recall_plain = classification_prf(y, plain.predict(x)).recall
        recall_balanced = classification_prf(y, balanced.predict(x)).recall
        assert recall_balanced >= recall_plain

    def test_constant_feature_no_crash(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        y = (x[:, 1] > 4).astype(int)
        model = LogisticRegressionClassifier().fit(x, y)
        assert np.isfinite(model.predict_proba(x)).all()


class TestFeatureBasedER:
    def test_learns_benchmark(self, small_benchmark):
        labeled = small_benchmark.labeled_pairs(negative_ratio=4, rng=0)
        trips = [
            (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
            for a, b, y in labeled
        ]
        split = int(0.7 * len(trips))
        model = FeatureBasedER(small_benchmark.compare_columns, ["year"]).fit(trips[:split])
        test = trips[split:]
        labels = np.array([y for _, _, y in test])
        predictions = model.predict([(a, b) for a, b, _ in test])
        assert classification_prf(labels, predictions).f1 > 0.85

    def test_unfitted_raises(self, small_benchmark):
        with pytest.raises(RuntimeError):
            FeatureBasedER(small_benchmark.compare_columns).predict_proba([({}, {})])

    def test_empty_pairs(self, small_benchmark):
        labeled = small_benchmark.labeled_pairs(n_positives=5, negative_ratio=2, rng=0)
        trips = [
            (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
            for a, b, y in labeled
        ]
        model = FeatureBasedER(small_benchmark.compare_columns).fit(trips)
        assert model.predict_proba([]).shape == (0,)


class TestThresholdMatcher:
    def test_identical_scores_one(self):
        matcher = ThresholdMatcher(["name"])
        assert matcher.score({"name": "john"}, {"name": "john"}) == 1.0

    def test_missing_columns_ignored(self):
        matcher = ThresholdMatcher(["name", "city"])
        score = matcher.score({"name": "john", "city": None}, {"name": "john", "city": "x"})
        assert score == 1.0

    def test_all_missing_scores_zero(self):
        matcher = ThresholdMatcher(["name"])
        assert matcher.score({"name": None}, {"name": None}) == 0.0

    def test_best_threshold_improves_f1(self, small_benchmark):
        labeled = small_benchmark.labeled_pairs(negative_ratio=4, rng=0)
        trips = [
            (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
            for a, b, y in labeled
        ]
        matcher = ThresholdMatcher(small_benchmark.compare_columns, threshold=0.99)
        labels = np.array([y for _, _, y in trips])
        f1_before = classification_prf(labels, matcher.predict([(a, b) for a, b, _ in trips])).f1
        matcher.best_threshold(trips)
        f1_after = classification_prf(labels, matcher.predict([(a, b) for a, b, _ in trips])).f1
        assert f1_after >= f1_before
        assert 0.05 <= matcher.threshold <= 0.95
