"""ER/blocking metric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import (
    PRF,
    accuracy,
    classification_prf,
    pair_completeness,
    precision_recall_f1,
    reduction_ratio,
)


class TestSetPRF:
    def test_perfect(self):
        gold = {("a", "b"), ("c", "d")}
        prf = precision_recall_f1(gold, gold)
        assert prf == PRF(1.0, 1.0, 1.0)

    def test_half_precision(self):
        prf = precision_recall_f1({("a", "b"), ("x", "y")}, {("a", "b")})
        assert prf.precision == 0.5
        assert prf.recall == 1.0
        assert prf.f1 == pytest.approx(2 / 3)

    def test_empty_prediction(self):
        prf = precision_recall_f1(set(), {("a", "b")})
        assert prf == PRF(0.0, 0.0, 0.0)

    def test_empty_gold(self):
        prf = precision_recall_f1({("a", "b")}, set())
        assert prf.recall == 0.0

    def test_str_format(self):
        assert "P=1.000" in str(PRF(1.0, 0.5, 2 / 3))


class TestClassificationPRF:
    def test_known_confusion(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        prf = classification_prf(y_true, y_pred)
        assert prf.precision == pytest.approx(2 / 3)
        assert prf.recall == pytest.approx(2 / 3)

    def test_no_positives_predicted(self):
        prf = classification_prf(np.array([1, 0]), np.array([0, 0]))
        assert prf.precision == 0.0
        assert prf.f1 == 0.0

    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)
        assert accuracy(np.array([]), np.array([])) == 0.0


class TestBlockingMetrics:
    def test_reduction_ratio(self):
        assert reduction_ratio(100, 1000) == 0.9
        assert reduction_ratio(0, 0) == 0.0

    def test_pair_completeness(self):
        gold = {("a", "b"), ("c", "d")}
        assert pair_completeness({("a", "b")}, gold) == 0.5
        assert pair_completeness(set(), set()) == 1.0
        assert pair_completeness(gold | {("x", "y")}, gold) == 1.0


class TestSelectThreshold:
    def test_finds_separating_threshold(self):
        from repro.er import select_threshold

        probabilities = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        labels = np.array([0, 0, 0, 1, 1])
        threshold, score = select_threshold(probabilities, labels)
        assert 0.3 < threshold < 0.8
        assert score == 1.0

    def test_metric_choice(self):
        from repro.er import select_threshold

        probabilities = np.array([0.4, 0.6, 0.7, 0.9])
        labels = np.array([0, 1, 0, 1])
        threshold, recall = select_threshold(probabilities, labels, metric="recall")
        # Max recall achieved by the lowest threshold.
        assert recall == 1.0
        assert threshold <= 0.6

    def test_invalid_metric(self):
        from repro.er import select_threshold

        with pytest.raises(ValueError):
            select_threshold(np.array([0.5]), np.array([1]), metric="auc")

    def test_shape_mismatch(self):
        from repro.er import select_threshold

        with pytest.raises(ValueError):
            select_threshold(np.array([0.5, 0.6]), np.array([1]))
