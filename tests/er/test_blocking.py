"""Blocking tests: LSH banding behaviour and traditional baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.er import AttributeBlocker, LSHBlocker, TokenBlocker, pair_completeness, reduction_ratio


class TestLSHBlocker:
    def test_bits_divisible_by_bands(self):
        with pytest.raises(ValueError):
            LSHBlocker(n_bits=10, n_bands=3)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            LSHBlocker(n_bits=0)

    def test_identical_vectors_always_candidates(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(10, 8))
        blocker = LSHBlocker(n_bits=16, n_bands=4, rng=0)
        pairs = blocker.candidate_pairs(emb, [f"a{i}" for i in range(10)], emb.copy(), [f"b{i}" for i in range(10)])
        for i in range(10):
            assert (f"a{i}", f"b{i}") in pairs

    def test_clustered_data_recall_vs_reduction(self):
        """Near-duplicates must collide; far vectors mostly must not."""
        rng = np.random.default_rng(0)
        base = rng.normal(size=(40, 16))
        emb_a = base
        emb_b = base + rng.normal(0, 0.05, size=base.shape)  # near-duplicates
        ids_a = [f"a{i}" for i in range(40)]
        ids_b = [f"b{i}" for i in range(40)]
        blocker = LSHBlocker(n_bits=16, n_bands=4, rng=1)
        candidates = blocker.candidate_pairs(emb_a, ids_a, emb_b, ids_b)
        gold = {(f"a{i}", f"b{i}") for i in range(40)}
        assert pair_completeness(candidates, gold) > 0.85
        assert reduction_ratio(len(candidates), 1600) > 0.3

    def test_more_bands_higher_recall(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(50, 12))
        noisy = base + rng.normal(0, 0.25, size=base.shape)
        ids_a = [f"a{i}" for i in range(50)]
        ids_b = [f"b{i}" for i in range(50)]
        gold = {(f"a{i}", f"b{i}") for i in range(50)}
        few = LSHBlocker(n_bits=16, n_bands=2, rng=0).candidate_pairs(base, ids_a, noisy, ids_b)
        many = LSHBlocker(n_bits=16, n_bands=8, rng=0).candidate_pairs(base, ids_a, noisy, ids_b)
        assert pair_completeness(many, gold) >= pair_completeness(few, gold)

    def test_block_sizes_sum(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(30, 8))
        blocker = LSHBlocker(n_bits=8, n_bands=2, rng=0)
        blocker._fit_transform(emb)
        sizes = blocker.block_sizes(emb)
        assert sum(sizes) == 30 * 2  # every row lands in one bucket per band


class TestAttributeBlocker:
    def _records(self):
        records_a = [
            {"title": "deep learning systems"},
            {"title": "database curation"},
            {"title": None},
        ]
        records_b = [
            {"title": "deep neural models"},
            {"title": "graph matching"},
        ]
        return records_a, records_b

    def test_first_token_blocking(self):
        records_a, records_b = self._records()
        blocker = AttributeBlocker("title")
        pairs = blocker.candidate_pairs(records_a, ["a0", "a1", "a2"], records_b, ["b0", "b1"])
        assert pairs == {("a0", "b0")}  # both start with "deep"

    def test_missing_values_never_block(self):
        records_a, records_b = self._records()
        blocker = AttributeBlocker("title")
        pairs = blocker.candidate_pairs(records_a, ["a0", "a1", "a2"], records_b, ["b0", "b1"])
        assert all(a != "a2" for a, _ in pairs)

    def test_custom_key_fn(self):
        blocker = AttributeBlocker("x", key_fn=lambda r: str(r.get("x", ""))[:1] or None)
        pairs = blocker.candidate_pairs(
            [{"x": "apple"}], ["a0"], [{"x": "avocado"}, {"x": "banana"}], ["b0", "b1"]
        )
        assert pairs == {("a0", "b0")}

    def test_block_sizes(self):
        records_a, _ = self._records()
        assert sorted(AttributeBlocker("title").block_sizes(records_a)) == [1, 1]


class TestTokenBlocker:
    def test_shared_rare_token_blocks(self):
        records_a = [{"t": "unique9 common"}, {"t": "common other"}]
        records_b = [{"t": "unique9 thing"}, {"t": "common stuff"}]
        # "unique9" has df 2/4 = 0.5 (a matching pair's shared token always
        # has df >= 2/n); "common" has df 3/4 and must not block alone.
        blocker = TokenBlocker(["t"], max_df=0.5)
        pairs = blocker.candidate_pairs(records_a, ["a0", "a1"], records_b, ["b0", "b1"])
        assert ("a0", "b0") in pairs
        assert ("a1", "b1") not in pairs

    def test_multiple_columns(self):
        records_a = [{"name": "zorro", "city": "x"}, {"name": "plain", "city": "y"}]
        records_b = [{"name": "other", "city": "zorro"}]
        blocker = TokenBlocker(["name", "city"], max_df=0.7)
        pairs = blocker.candidate_pairs(records_a, ["a0", "a1"], records_b, ["b0"])
        assert ("a0", "b0") in pairs
        assert ("a1", "b0") not in pairs
