"""Entity clustering tests."""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.er import (
    cluster_metrics,
    connected_components,
    correlation_cluster,
    dedupe_table,
)


class TestConnectedComponents:
    def test_transitive_closure(self):
        clusters = connected_components(
            ["a", "b", "c", "d"], {("a", "b"), ("b", "c")}
        )
        assert ["a", "b", "c"] in clusters
        assert ["d"] in clusters

    def test_all_singletons_without_edges(self):
        clusters = connected_components(["x", "y"], set())
        assert clusters == [["x"], ["y"]]

    def test_deterministic_order(self):
        c1 = connected_components(["b", "a", "c"], {("c", "a")})
        c2 = connected_components(["c", "b", "a"], {("a", "c")})
        assert c1 == c2 == [["a", "c"], ["b"]]

    def test_every_item_exactly_once(self):
        items = [f"i{k}" for k in range(20)]
        pairs = {("i0", "i5"), ("i5", "i10"), ("i3", "i4")}
        clusters = connected_components(items, pairs)
        flat = sorted(x for c in clusters for x in c)
        assert flat == sorted(items)


class TestCorrelationCluster:
    def test_resists_single_spurious_edge(self):
        """a,b,c form a clique; d has one high score to a only.  Transitive
        closure would glue d in; average-linkage keeps it out."""
        scores = {
            frozenset(p): 0.9
            for p in [("a", "b"), ("a", "c"), ("b", "c")]
        }
        scores[frozenset(("a", "d"))] = 0.9  # the one bad edge
        fn = lambda x, y: scores.get(frozenset((x, y)), 0.05)
        clusters = correlation_cluster(["a", "b", "c", "d"], fn, threshold=0.5)
        assert ["a", "b", "c"] in clusters
        assert ["d"] in clusters
        # Contrast: components would merge everything.
        merged = connected_components(
            ["a", "b", "c", "d"],
            {p for p in [("a", "b"), ("a", "c"), ("b", "c"), ("a", "d")]},
        )
        assert merged == [["a", "b", "c", "d"]]

    def test_threshold_controls_granularity(self):
        fn = lambda x, y: 0.6
        loose = correlation_cluster(["a", "b", "c"], fn, threshold=0.5)
        strict = correlation_cluster(["a", "b", "c"], fn, threshold=0.7)
        assert len(loose) == 1
        assert len(strict) == 3


class TestDedupeTable:
    @pytest.fixture
    def dup_table(self):
        return Table(
            "people", ["id", "name"],
            rows=[
                ["1", "john smith"], ["2", "jon smith"], ["3", "maria garcia"],
                ["4", "maria garcia"], ["5", "peter king"],
            ],
        )

    def _score(self, a, b):
        from repro.er import trigram_jaccard

        return trigram_jaccard(str(a["name"]), str(b["name"]))

    def test_finds_duplicate_clusters(self, dup_table):
        clusters = dedupe_table(dup_table, "id", self._score, threshold=0.5)
        assert ["1", "2"] in clusters
        assert ["3", "4"] in clusters
        assert ["5"] in clusters

    def test_correlation_method(self, dup_table):
        clusters = dedupe_table(
            dup_table, "id", self._score, threshold=0.5, method="correlation"
        )
        assert ["3", "4"] in clusters

    def test_candidate_pairs_restrict_scoring(self, dup_table):
        calls = []

        def counting_score(a, b):
            calls.append(1)
            return self._score(a, b)

        dedupe_table(
            dup_table, "id", counting_score,
            candidate_pairs={("1", "2")}, threshold=0.5,
        )
        assert len(calls) == 1

    def test_invalid_method(self, dup_table):
        with pytest.raises(ValueError):
            dedupe_table(dup_table, "id", self._score, method="spectral")


class TestClusterMetrics:
    def test_perfect(self):
        gold = [["a", "b"], ["c"]]
        assert cluster_metrics(gold, gold)["f1"] == 1.0

    def test_overmerged_loses_precision(self):
        metrics = cluster_metrics([["a", "b", "c"]], [["a", "b"], ["c"]])
        assert metrics["recall"] == 1.0
        assert metrics["precision"] == pytest.approx(1 / 3)

    def test_all_singletons(self):
        metrics = cluster_metrics([["a"], ["b"]], [["a", "b"]])
        assert metrics["precision"] == 1.0  # no predicted pairs, vacuous
        assert metrics["recall"] == 0.0
