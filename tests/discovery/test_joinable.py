"""Join discovery / inclusion dependency tests."""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.discovery import (
    enrich,
    find_inclusion_dependencies,
    find_joinable_columns,
    joinability,
)


@pytest.fixture
def orders_and_customers():
    customers = Table(
        "customers", ["cid", "cname", "country"],
        rows=[["c1", "acme", "fr"], ["c2", "globex", "de"], ["c3", "stark", "it"]],
    )
    orders = Table(
        "orders", ["oid", "customer", "amount"],
        rows=[["o1", "c1", 10], ["o2", "c2", 20], ["o3", "c1", 30]],
    )
    return orders, customers


class TestInclusionDependencies:
    def test_foreign_key_found(self, orders_and_customers):
        orders, customers = orders_and_customers
        inds = find_inclusion_dependencies(orders, [customers])
        keys = {(d.column_a, d.table_b, d.column_b) for d in inds}
        assert ("customer", "customers", "cid") in keys
        best = inds[0]
        assert best.containment == 1.0

    def test_partial_containment_threshold(self):
        source = Table("s", ["k"], rows=[["a"], ["b"], ["c"], ["zzz"]])
        target = Table("t", ["k"], rows=[["a"], ["b"], ["c"]])
        assert not find_inclusion_dependencies(source, [target], min_containment=0.95)
        inds = find_inclusion_dependencies(source, [target], min_containment=0.7)
        assert inds and inds[0].containment == 0.75

    def test_constant_columns_skipped(self):
        source = Table("s", ["k"], rows=[["x"], ["x"]])
        target = Table("t", ["k"], rows=[["x"], ["y"], ["z"]])
        assert not find_inclusion_dependencies(source, [target], min_distinct=2)

    def test_self_excluded(self, orders_and_customers):
        orders, _ = orders_and_customers
        assert not find_inclusion_dependencies(orders, [orders])

    def test_str(self, orders_and_customers):
        orders, customers = orders_and_customers
        ind = find_inclusion_dependencies(orders, [customers])[0]
        assert "⊆" in str(ind)


class TestJoinability:
    def test_symmetric_max_containment(self):
        a = Table("a", ["x"], rows=[["1"], ["2"], ["3"], ["4"]])
        b = Table("b", ["x"], rows=[["3"], ["4"]])
        assert joinability(a, "x", b, "x") == 1.0  # b fully contained

    def test_disjoint_zero(self):
        a = Table("a", ["x"], rows=[["1"]])
        b = Table("b", ["x"], rows=[["2"]])
        assert joinability(a, "x", b, "x") == 0.0

    def test_find_joinable_ranked(self, orders_and_customers):
        orders, customers = orders_and_customers
        results = find_joinable_columns(orders, [customers], min_score=0.5)
        assert results[0][:3] == ("customer", "customers", "cid")


class TestEnrich:
    def test_left_join_adds_columns(self, orders_and_customers):
        orders, customers = orders_and_customers
        enriched = enrich(orders, customers, "customer", "cid")
        assert enriched.columns == ["oid", "customer", "amount", "cname", "country"]
        assert enriched.cell(0, "cname") == "acme"
        assert enriched.cell(2, "cname") == "acme"  # repeated key joins again

    def test_unmatched_rows_get_none(self, orders_and_customers):
        orders, customers = orders_and_customers
        orders.append(["o4", "c9", 99])
        enriched = enrich(orders, customers, "customer", "cid")
        assert enriched.cell(3, "cname") is None

    def test_column_clash_rejected(self, orders_and_customers):
        orders, customers = orders_and_customers
        clashing = customers.rename({"cname": "amount"})
        with pytest.raises(ValueError):
            enrich(orders, clashing, "customer", "cid")

    def test_subset_of_columns(self, orders_and_customers):
        orders, customers = orders_and_customers
        enriched = enrich(orders, customers, "customer", "cid", add_columns=["country"])
        assert enriched.columns == ["oid", "customer", "amount", "country"]
