"""Schema matcher tests: semantic (coherent groups) vs syntactic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.discovery import (
    SemanticMatcher,
    SyntacticMatcher,
    evaluate_links,
    name_word_group,
)


class TestNameWordGroup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("biopsy_site", ["biopsy", "site"]),
            ("biopsySite", ["biopsy", "site"]),
            ("biopsy-site", ["biopsy", "site"]),
            ("Biopsy Site ID", ["biopsy", "site", "id"]),
            ("simple", ["simple"]),
            ("dept.name", ["dept", "name"]),
        ],
    )
    def test_splitting(self, name, expected):
        assert name_word_group(name) == expected


@pytest.fixture(scope="module")
def vector_space():
    """Hand-built embedding space with a medical and a location cluster."""
    vectors = {
        "biopsy": np.array([1.0, 0.1, 0.0]),
        "site": np.array([0.9, 0.2, 0.0]),
        "tissue": np.array([0.95, 0.15, 0.0]),
        "sample": np.array([0.85, 0.2, 0.1]),
        "city": np.array([0.0, 1.0, 0.1]),
        "location": np.array([0.1, 0.95, 0.1]),
        "town": np.array([0.05, 0.9, 0.2]),
        "lung": np.array([0.8, 0.0, 0.3]),
        "paris": np.array([0.0, 0.8, 0.3]),
        "berlin": np.array([0.05, 0.85, 0.25]),
    }
    return lambda w: vectors.get(w, np.zeros(3)), 3


class TestSemanticMatcher:
    def test_semantically_related_columns_score_higher(self, vector_space):
        fn, dim = vector_space
        table_a = Table("a", ["biopsy_site"], rows=[["lung"]])
        table_b = Table("b", ["tissue_sample"], rows=[["lung"]])
        table_c = Table("c", ["city_location"], rows=[["paris"]])
        matcher = SemanticMatcher(fn, dim)
        related = matcher.score_columns(table_a, "biopsy_site", table_b, "tissue_sample")
        unrelated = matcher.score_columns(table_a, "biopsy_site", table_c, "city_location")
        assert related.score > unrelated.score

    def test_value_similarity_component(self, vector_space):
        fn, dim = vector_space
        cities_a = Table("a", ["place"], rows=[["paris"], ["berlin"]])
        cities_b = Table("b", ["spot"], rows=[["berlin"], ["paris"]])
        medical = Table("c", ["spot"], rows=[["lung"], ["lung"]])
        matcher = SemanticMatcher(fn, dim, name_weight=0.0)
        same_values = matcher.score_columns(cities_a, "place", cities_b, "spot")
        different = matcher.score_columns(cities_a, "place", medical, "spot")
        assert same_values.value_score > different.value_score

    def test_match_tables_threshold(self, vector_space):
        fn, dim = vector_space
        table_a = Table("a", ["biopsy_site", "city"], rows=[["lung", "paris"]])
        table_b = Table("b", ["tissue_sample", "town"], rows=[["lung", "berlin"]])
        matcher = SemanticMatcher(fn, dim)
        links = matcher.match_tables(table_a, table_b, threshold=0.55)
        keys = {(l.column_a, l.column_b) for l in links}
        assert ("biopsy_site", "tissue_sample") in keys
        assert ("biopsy_site", "town") not in keys

    def test_invalid_name_weight(self, vector_space):
        fn, dim = vector_space
        with pytest.raises(ValueError):
            SemanticMatcher(fn, dim, name_weight=1.5)


class TestSyntacticMatcher:
    def test_spurious_string_match_scores_high(self):
        """[21]'s example: 'biopsy site' vs 'site_components' look alike
        syntactically even though they are semantically unrelated."""
        table_a = Table("a", ["biopsy_site"], rows=[["alpha"]])
        table_b = Table("b", ["site_components"], rows=[["beta"]])
        matcher = SyntacticMatcher(name_weight=1.0)
        link = matcher.score_columns(table_a, "biopsy_site", table_b, "site_components")
        assert link.name_score >= 0.3  # shares 'site'

    def test_value_overlap(self):
        table_a = Table("a", ["c"], rows=[["x"], ["y"]])
        table_b = Table("b", ["c"], rows=[["x"], ["z"]])
        matcher = SyntacticMatcher(name_weight=0.0)
        link = matcher.score_columns(table_a, "c", table_b, "c")
        assert link.value_score == 0.5


class TestEvaluateLinks:
    def test_order_insensitive(self, vector_space):
        fn, dim = vector_space
        table_a = Table("a", ["biopsy_site"], rows=[["lung"]])
        table_b = Table("b", ["tissue_sample"], rows=[["lung"]])
        link = SemanticMatcher(fn, dim).score_columns(
            table_a, "biopsy_site", table_b, "tissue_sample"
        )
        gold = {("b", "tissue_sample", "a", "biopsy_site")}
        metrics = evaluate_links([link], gold)
        assert metrics["precision"] == 1.0
        assert metrics["recall"] == 1.0

    def test_empty_prediction(self):
        metrics = evaluate_links([], {("a", "x", "b", "y")})
        assert metrics["f1"] == 0.0
