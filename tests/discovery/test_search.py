"""Dataset search-engine tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.discovery import (
    BM25SearchEngine,
    EmbeddingSearchEngine,
    TfIdfSearchEngine,
    mean_reciprocal_rank,
    table_document,
)


@pytest.fixture(scope="module")
def lake():
    return [
        Table(
            "restaurant_reviews",
            ["restaurant", "cuisine", "rating"],
            rows=[["hall grill", "french", "4"], ["king cafe", "italian", "5"]],
        ),
        Table(
            "employee_salaries",
            ["employee", "department", "salary"],
            rows=[["john doe", "finance", "100"], ["jane doe", "marketing", "90"]],
        ),
        Table(
            "product_catalog",
            ["product", "brand", "price"],
            rows=[["acme laptop", "acme", "999"], ["stark phone", "stark", "799"]],
        ),
    ]


class TestTableDocument:
    def test_includes_schema_and_values(self, lake):
        tokens = table_document(lake[0])
        assert "restaurant" in tokens
        assert "cuisine" in tokens
        assert "french" in tokens

    def test_value_sampling_cap(self):
        table = Table("big", ["c"], rows=[[f"value{i}"] for i in range(100)])
        tokens = table_document(table, value_sample=5)
        value_tokens = [t for t in tokens if t.startswith("value")]
        assert len(value_tokens) == 5


@pytest.mark.parametrize("engine_cls", [TfIdfSearchEngine, BM25SearchEngine])
class TestLexicalEngines:
    def test_exact_term_ranks_right_table_first(self, lake, engine_cls):
        engine = engine_cls()
        engine.add_tables(lake)
        results = engine.search("french cuisine restaurant", topn=3)
        assert results[0][0] == "restaurant_reviews"

    def test_salary_query(self, lake, engine_cls):
        engine = engine_cls()
        engine.add_tables(lake)
        assert engine.search("department salary", topn=1)[0][0] == "employee_salaries"

    def test_duplicate_index_rejected(self, lake, engine_cls):
        engine = engine_cls()
        engine.add_table(lake[0])
        with pytest.raises(ValueError):
            engine.add_table(lake[0])

    def test_mrr(self, lake, engine_cls):
        engine = engine_cls()
        engine.add_tables(lake)
        queries = [
            ("french cuisine", "restaurant_reviews"),
            ("salary department", "employee_salaries"),
            ("laptop price brand", "product_catalog"),
        ]
        assert mean_reciprocal_rank(engine, queries) > 0.8


class TestEmbeddingEngine:
    def _engine(self, lake):
        clusters = {
            "restaurant": [1, 0, 0], "cuisine": [1, 0, 0], "french": [1, 0, 0],
            "italian": [1, 0, 0], "food": [1, 0, 0], "dining": [0.9, 0, 0.1],
            "employee": [0, 1, 0], "department": [0, 1, 0], "salary": [0, 1, 0],
            "payroll": [0, 0.9, 0.1], "staff": [0, 0.95, 0],
            "product": [0, 0, 1], "brand": [0, 0, 1], "price": [0, 0, 1],
            "laptop": [0, 0, 1], "catalog": [0, 0, 1], "gadgets": [0.1, 0, 0.9],
        }
        fn = lambda t: np.array(clusters.get(t, [0.0, 0.0, 0.0]), dtype=float)
        engine = EmbeddingSearchEngine(fn, dim=3)
        engine.add_tables(lake)
        return engine

    def test_semantic_query_without_shared_terms(self, lake):
        """'payroll staff' shares no token with employee_salaries but lands
        in the same embedding cluster — the semantic-search win."""
        engine = self._engine(lake)
        assert engine.search("payroll staff", topn=1)[0][0] == "employee_salaries"

    def test_dining_query(self, lake):
        engine = self._engine(lake)
        assert engine.search("dining food", topn=1)[0][0] == "restaurant_reviews"

    def test_lexical_engine_fails_semantic_query(self, lake):
        """Contrast: TF-IDF scores 0 for vocabulary-disjoint queries."""
        engine = TfIdfSearchEngine()
        engine.add_tables(lake)
        results = dict(engine.search("payroll staff", topn=3))
        assert results["employee_salaries"] == 0.0
