"""Enterprise-knowledge-graph tests."""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.discovery import (
    EnterpriseKnowledgeGraph,
    column_node,
    external_node,
    table_node,
)


@pytest.fixture
def ekg():
    graph = EnterpriseKnowledgeGraph()
    graph.add_table(Table("patients", ["pid", "biopsy_site"], rows=[["1", "lung"]]))
    graph.add_table(Table("assays", ["aid", "protein"], rows=[["1", "p53"]]))
    graph.add_table(Table("billing", ["bid", "amount"], rows=[["1", "10"]]))
    return graph


class TestEKG:
    def test_tables_registered(self, ekg):
        assert ekg.tables == ["assays", "billing", "patients"]
        assert ekg.table("patients").num_rows == 1

    def test_duplicate_table_rejected(self, ekg):
        with pytest.raises(ValueError):
            ekg.add_table(Table("patients", ["x"]))

    def test_contains_edges(self, ekg):
        assert ekg.graph.has_edge(
            table_node("patients"), column_node("patients", "biopsy_site")
        )

    def test_semantic_link_and_listing(self, ekg):
        ekg.add_semantic_link(
            column_node("patients", "biopsy_site"),
            column_node("assays", "protein"),
            score=0.8,
        )
        links = ekg.links(min_score=0.5)
        assert len(links) == 1
        assert links[0][2] == 0.8

    def test_link_to_unknown_node_rejected(self, ekg):
        with pytest.raises(KeyError):
            ekg.add_semantic_link("column:ghost.x", table_node("patients"), 0.9)

    def test_external_nodes(self, ekg):
        ekg.add_external("gene_ontology", description="GO terms")
        ekg.add_semantic_link(
            external_node("gene_ontology"), column_node("assays", "protein"), 0.7
        )
        assert len(ekg.links()) == 1

    def test_related_tables_through_links(self, ekg):
        ekg.add_semantic_link(
            column_node("patients", "biopsy_site"),
            column_node("assays", "protein"),
            score=0.9,
        )
        related = ekg.related_tables("patients")
        assert "assays" in related
        assert "billing" not in related

    def test_related_tables_unknown_table(self, ekg):
        with pytest.raises(KeyError):
            ekg.related_tables("ghost")

    def test_links_min_score_filter(self, ekg):
        ekg.add_semantic_link(
            column_node("patients", "pid"), column_node("billing", "bid"), score=0.2
        )
        assert ekg.links(min_score=0.5) == []
        assert len(ekg.links(min_score=0.1)) == 1
