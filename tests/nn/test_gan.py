"""GAN tests: interface, training dynamics on a simple distribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GAN


class TestGAN:
    def test_generate_shape(self):
        gan = GAN(data_dim=3, rng=0)
        assert gan.generate(5).shape == (5, 3)

    def test_rejects_wrong_data_shape(self):
        gan = GAN(data_dim=3, rng=0)
        with pytest.raises(ValueError):
            gan.fit(np.zeros((10, 4)), epochs=1)

    def test_history_keys_and_lengths(self):
        gan = GAN(data_dim=2, rng=0)
        history = gan.fit(np.random.default_rng(0).normal(size=(64, 2)), epochs=3)
        assert set(history) == {"d_loss", "g_loss", "d_accuracy"}
        assert all(len(v) == 3 for v in history.values())

    def test_learns_shifted_gaussian(self):
        """Generator output mean should move toward the data mean."""
        rng = np.random.default_rng(0)
        data = rng.normal(loc=0.8, scale=0.1, size=(256, 2))
        gan = GAN(data_dim=2, latent_dim=4, hidden_dim=32, rng=1)
        before = np.abs(gan.generate(200).mean(axis=0) - 0.8).mean()
        gan.fit(data, epochs=60, batch_size=64, lr=2e-3)
        after = np.abs(gan.generate(200).mean(axis=0) - 0.8).mean()
        assert after < before

    def test_discriminator_accuracy_drops_from_perfect(self):
        """As the forger improves, the dealer should stop being perfect."""
        rng = np.random.default_rng(0)
        data = rng.normal(size=(128, 2)) * 0.3
        gan = GAN(data_dim=2, rng=2)
        history = gan.fit(data, epochs=40, batch_size=32, lr=2e-3)
        assert history["d_accuracy"][-1] < 0.995
