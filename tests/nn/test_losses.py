"""Loss function tests: values, gradients, cost-sensitive options."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, bce_with_logits, cross_entropy, kl_divergence_gaussian, mae_loss, mse_loss
from repro.nn.gradcheck import check_gradients
from repro.nn.losses import sparsity_penalty


class TestMSE:
    def test_zero_for_identical(self):
        pred = Tensor([[1.0, 2.0]])
        assert mse_loss(pred, np.array([[1.0, 2.0]])).item() == 0.0

    def test_value(self):
        assert mse_loss(Tensor([2.0]), np.array([0.0])).item() == 4.0

    def test_mae_value(self):
        assert mae_loss(Tensor([2.0, -2.0]), np.array([0.0, 0.0])).item() == 2.0

    def test_gradcheck(self):
        w = Tensor(np.random.default_rng(0).normal(size=(3, 1)), requires_grad=True)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        y = np.random.default_rng(2).normal(size=(4, 1))
        check_gradients(lambda: mse_loss(x @ w, y), [w])


class TestBCE:
    def test_matches_reference_formula(self):
        logits = np.array([[0.3], [-1.2], [2.0]])
        y = np.array([[1.0], [0.0], [1.0]])
        expected = np.mean(
            np.maximum(logits, 0) - logits * y + np.log1p(np.exp(-np.abs(logits)))
        )
        assert np.isclose(bce_with_logits(Tensor(logits), y).item(), expected)

    def test_gradient_is_sigmoid_minus_target(self):
        logits = Tensor(np.array([[0.5], [-0.5]]), requires_grad=True)
        y = np.array([[1.0], [0.0]])
        bce_with_logits(logits, y).backward()
        sig = 1 / (1 + np.exp(-logits.data))
        assert np.allclose(logits.grad, (sig - y) / 2)

    def test_smooth_at_zero_logit(self):
        """Regression: the stable decomposition has kinks at 0 but BCE is
        smooth — the gradient there must be sigmoid(0) - y = 0.5 - y."""
        logits = Tensor(np.array([[0.0]]), requires_grad=True)
        bce_with_logits(logits, np.array([[0.0]])).backward()
        assert np.allclose(logits.grad, [[0.5]])

    def test_pos_weight_scales_positive_grad(self):
        logits = Tensor(np.array([[0.0]]), requires_grad=True)
        bce_with_logits(logits, np.array([[1.0]]), pos_weight=3.0).backward()
        assert np.allclose(logits.grad, [[3.0 * (-0.5)]])

    def test_sample_weight(self):
        logits = Tensor(np.array([[1.0], [1.0]]))
        y = np.array([[0.0], [0.0]])
        unweighted = bce_with_logits(logits, y).item()
        weighted = bce_with_logits(logits, y, sample_weight=np.array([[2.0], [0.0]])).item()
        assert np.isclose(weighted, unweighted)  # 2+0 averages to same as 1+1

    def test_extreme_logits_no_overflow(self):
        loss = bce_with_logits(Tensor([[1000.0], [-1000.0]]), np.array([[1.0], [0.0]]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor([[10.0, 0.0], [0.0, 10.0]])
        assert cross_entropy(logits, np.array([0, 1])).item() < 1e-3

    def test_uniform_logits_log_k(self):
        logits = Tensor(np.zeros((2, 4)))
        assert np.isclose(cross_entropy(logits, np.array([0, 3])).item(), np.log(4))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(4)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_class_weight_changes_loss(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.5, 1.0]]))
        labels = np.array([0, 1])
        plain = cross_entropy(logits, labels).item()
        weighted = cross_entropy(logits, labels, class_weight=np.array([1.0, 10.0])).item()
        assert plain != weighted

    def test_gradcheck(self):
        w = Tensor(np.random.default_rng(3).normal(size=(3, 4)), requires_grad=True)
        x = Tensor(np.random.default_rng(4).normal(size=(5, 3)))
        labels = np.array([0, 1, 2, 3, 0])
        check_gradients(lambda: cross_entropy(x @ w, labels), [w])


class TestRegularizers:
    def test_kl_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((3, 2)))
        log_var = Tensor(np.zeros((3, 2)))
        assert np.isclose(kl_divergence_gaussian(mu, log_var).item(), 0.0)

    def test_kl_positive_otherwise(self):
        mu = Tensor(np.ones((3, 2)))
        log_var = Tensor(np.zeros((3, 2)))
        assert kl_divergence_gaussian(mu, log_var).item() > 0

    def test_sparsity_penalty_zero_at_target(self):
        activations = Tensor(np.full((10, 4), 0.05))
        assert sparsity_penalty(activations, target_rho=0.05).item() < 1e-10

    def test_sparsity_penalty_grows_with_activation(self):
        low = sparsity_penalty(Tensor(np.full((10, 4), 0.1)), 0.05).item()
        high = sparsity_penalty(Tensor(np.full((10, 4), 0.5)), 0.05).item()
        assert high > low > 0
