"""Recurrent cell and sequence-encoder tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BiLSTM, GRUCell, LSTM, LSTMCell, RNNCell, SequenceEncoder, Tensor, Adam, mse_loss
from repro.nn.gradcheck import check_gradients


class TestCells:
    def test_rnn_cell_shapes(self):
        cell = RNNCell(4, 6, rng=0)
        h = cell(Tensor(np.zeros((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_gru_cell_shapes(self):
        cell = GRUCell(4, 6, rng=0)
        h = cell(Tensor(np.zeros((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_lstm_cell_shapes(self):
        cell = LSTMCell(4, 6, rng=0)
        h, c = cell(Tensor(np.zeros((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)
        assert c.shape == (3, 6)

    def test_lstm_forget_bias_initialised_to_one(self):
        cell = LSTMCell(4, 6, rng=0)
        assert np.allclose(cell.bias.data[6:12], 1.0)

    def test_rnn_cell_gradcheck(self):
        cell = RNNCell(3, 4, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        h0 = cell.initial_state(2)
        check_gradients(lambda: (cell(x, h0) ** 2).sum(), cell.parameters())

    def test_lstm_cell_gradcheck(self):
        cell = LSTMCell(3, 4, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        state = cell.initial_state(2)
        check_gradients(lambda: (cell(x, state)[0] ** 2).sum(), cell.parameters())

    def test_gru_cell_gradcheck(self):
        cell = GRUCell(3, 4, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        h0 = cell.initial_state(2)
        check_gradients(lambda: (cell(x, h0) ** 2).sum(), cell.parameters())


class TestSequenceModels:
    def test_lstm_output_shapes(self):
        lstm = LSTM(5, 7, rng=0)
        outputs, last = lstm(Tensor(np.zeros((2, 4, 5))))
        assert outputs.shape == (2, 4, 7)
        assert last.shape == (2, 7)

    def test_lstm_reverse_preserves_time_order(self):
        lstm = LSTM(2, 3, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 5, 2)))
        fwd_out, _ = lstm(x)
        rev_out, _ = lstm(x, reverse=True)
        assert fwd_out.shape == rev_out.shape
        # Reverse outputs differ from forward (different state accumulation).
        assert not np.allclose(fwd_out.data, rev_out.data)

    def test_bilstm_concatenates(self):
        bi = BiLSTM(5, 6, rng=0)
        outputs, last = bi(Tensor(np.zeros((2, 3, 5))))
        assert outputs.shape == (2, 3, 12)
        assert last.shape == (2, 12)

    def test_order_sensitivity(self):
        """RNN representations must depend on input order (paper §2.1)."""
        enc = SequenceEncoder(3, 4, rng=0)
        rng = np.random.default_rng(0)
        seq = rng.normal(size=(1, 4, 3))
        flipped = seq[:, ::-1, :].copy()
        out_a = enc(Tensor(seq)).data
        out_b = enc(Tensor(flipped)).data
        assert not np.allclose(out_a, out_b)

    def test_encoder_pooling_modes(self):
        for pooling in ("last", "mean"):
            enc = SequenceEncoder(3, 4, pooling=pooling, rng=0)
            assert enc(Tensor(np.zeros((2, 5, 3)))).shape == (2, 4)

    def test_encoder_invalid_pooling(self):
        with pytest.raises(ValueError):
            SequenceEncoder(3, 4, pooling="attention")

    def test_bidirectional_output_size(self):
        enc = SequenceEncoder(3, 4, bidirectional=True, rng=0)
        assert enc.output_size == 8
        assert enc(Tensor(np.zeros((2, 5, 3)))).shape == (2, 8)

    def test_lstm_learns_sequence_sum_sign(self):
        """An LSTM encoder must be trainable end-to-end on a toy task."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 6, 1))
        y = (x.sum(axis=1) > 0).astype(float)
        enc = SequenceEncoder(1, 8, rng=1)
        from repro.nn import Linear, bce_with_logits

        head = Linear(8, 1, rng=1)
        params = enc.parameters() + head.parameters()
        optimizer = Adam(params, lr=0.02)
        for _ in range(60):
            logits = head(enc(Tensor(x)))
            loss = bce_with_logits(logits, y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        accuracy = ((head(enc(Tensor(x))).data > 0) == y).mean()
        assert accuracy > 0.9
