"""Autoencoder family tests: reconstruction, sparsity, denoising, VAE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Autoencoder,
    DenoisingAutoencoder,
    SparseAutoencoder,
    Tensor,
    VAE,
)


def _train(model, data, epochs=120, lr=5e-3):
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(epochs):
        loss = model.loss(Tensor(data))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return loss.item()


def _low_rank_data(n=80, dim=8, rank=2, seed=0):
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(rank, dim))
    codes = rng.normal(size=(n, rank))
    return codes @ basis * 0.5


class TestAutoencoder:
    def test_shapes(self):
        model = Autoencoder(8, [4, 2], rng=0)
        x = Tensor(np.zeros((5, 8)))
        assert model(x).shape == (5, 8)
        assert model.encode(x).shape == (5, 2)

    def test_requires_hidden_sizes(self):
        with pytest.raises(ValueError):
            Autoencoder(8, [])

    def test_learns_low_rank_structure(self):
        data = _low_rank_data()
        model = Autoencoder(8, [6, 2], rng=0)
        initial = model.loss(Tensor(data)).item()
        final = _train(model, data)
        assert final < 0.25 * initial

    def test_reconstruction_error_per_row(self):
        data = _low_rank_data()
        model = Autoencoder(8, [6, 2], rng=0)
        _train(model, data, epochs=60)
        errors = model.reconstruction_error(data)
        assert errors.shape == (80,)
        assert np.all(errors >= 0)


class TestSparseAutoencoder:
    def test_k_sparse_zeroes_all_but_k(self):
        model = SparseAutoencoder(8, [6], k=2, rng=0)
        code = model.encode(Tensor(np.random.default_rng(0).normal(size=(4, 8))))
        nonzero = (np.abs(code.data) > 1e-12).sum(axis=1)
        assert np.all(nonzero <= 2)

    def test_kl_sparsity_reduces_mean_activation(self):
        data = _low_rank_data()
        dense = SparseAutoencoder(8, [10], sparsity_weight=0.0, rng=0)
        sparse = SparseAutoencoder(8, [10], sparsity_weight=2.0, target_rho=0.05, rng=0)
        _train(dense, data, epochs=80)
        _train(sparse, data, epochs=80)
        act_dense = dense.encode(Tensor(data)).data.mean()
        act_sparse = sparse.encode(Tensor(data)).data.mean()
        assert act_sparse < act_dense


class TestDenoisingAutoencoder:
    def test_corrupt_masks_fraction(self):
        model = DenoisingAutoencoder(10, [4], corruption=0.5, rng=0)
        data = np.ones((100, 10))
        noisy = model.corrupt(data)
        zero_fraction = (noisy == 0).mean()
        assert 0.4 < zero_fraction < 0.6

    def test_corrupt_does_not_mutate_input(self):
        model = DenoisingAutoencoder(4, [2], corruption=0.5, rng=0)
        data = np.ones((10, 4))
        model.corrupt(data)
        assert np.all(data == 1.0)

    def test_invalid_corruption(self):
        with pytest.raises(ValueError):
            DenoisingAutoencoder(4, [2], corruption=1.0)

    def test_denoising_recovers_structure(self):
        """After training, the DAE should reconstruct the clean signal from
        corrupted input better than the corrupted input itself does."""
        data = _low_rank_data(n=120)
        model = DenoisingAutoencoder(8, [6, 3], corruption=0.3, rng=0)
        _train(model, data, epochs=150)
        model.eval()
        rng = np.random.default_rng(42)
        mask = rng.random(data.shape) < 0.3
        corrupted = np.where(mask, 0.0, data)
        recon = model(Tensor(corrupted)).data
        err_recon = ((recon - data) ** 2)[mask].mean()
        err_zero = ((corrupted - data) ** 2)[mask].mean()
        assert err_recon < err_zero


class TestVAE:
    def test_forward_shapes(self):
        model = VAE(6, 8, 2, rng=0)
        recon, mu, log_var = model(Tensor(np.zeros((4, 6))))
        assert recon.shape == (4, 6)
        assert mu.shape == (4, 2)
        assert log_var.shape == (4, 2)

    def test_sample_shape(self):
        model = VAE(6, 8, 2, rng=0)
        assert model.sample(7).shape == (7, 6)

    def test_loss_decreases(self):
        data = _low_rank_data(dim=6)
        model = VAE(6, 10, 2, beta=0.1, rng=0)
        initial = model.loss(Tensor(data)).item()
        final = _train(model, data, epochs=100)
        assert final < initial

    def test_latent_space_continuity(self):
        """Nearby latent vectors must decode to nearby outputs (§2.1 VAE)."""
        model = VAE(6, 10, 2, rng=0)
        z = np.zeros((1, 2))
        base = model.decode(Tensor(z)).data
        nearby = model.decode(Tensor(z + 0.01)).data
        far = model.decode(Tensor(z + 3.0)).data
        assert np.linalg.norm(nearby - base) < np.linalg.norm(far - base)
