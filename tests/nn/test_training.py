"""Trainer, minibatching and early-stopping tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, EarlyStopping, Tensor, Trainer, bce_with_logits, iterate_minibatches, mlp, Tanh


class TestMinibatches:
    def test_covers_all_indices(self):
        batches = list(iterate_minibatches(10, 3, rng=0))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self):
        batches = list(iterate_minibatches(10, 4, rng=0))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_no_shuffle_is_ordered(self):
        batches = list(iterate_minibatches(6, 2, shuffle=False))
        assert np.concatenate(batches).tolist() == list(range(6))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0))


class TestTrainer:
    def _setup(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = (x @ true_w > 0).astype(float)
        model = mlp([3, 8, 1], activation=Tanh, rng=1)

        def loss_fn(batch):
            return bce_with_logits(model(Tensor(x[batch])), y[batch])

        return model, loss_fn, x, y

    def test_loss_decreases(self):
        model, loss_fn, x, y = self._setup()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), loss_fn, rng=0)
        history = trainer.fit(64, epochs=20, batch_size=16)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.epochs_run == 20

    def test_model_left_in_eval_mode(self):
        model, loss_fn, *_ = self._setup()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), loss_fn, rng=0)
        trainer.fit(64, epochs=2)
        assert not model.training

    def test_early_stopping_triggers_and_restores(self):
        model, loss_fn, x, y = self._setup()
        val_losses = iter([1.0, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1])

        def val_fn():
            return next(val_losses)

        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), loss_fn, rng=0)
        stopping = EarlyStopping(patience=3)
        history = trainer.fit(
            64, epochs=8, val_loss_fn=val_fn, early_stopping=stopping
        )
        assert history.stopped_epoch == 5
        assert stopping.best_loss == 0.5


class TestEarlyStopping:
    def test_improvement_resets_counter(self):
        model = mlp([2, 2, 1], rng=0)
        stopping = EarlyStopping(patience=2)
        assert not stopping.update(1.0, model)
        assert not stopping.update(1.1, model)
        assert not stopping.update(0.5, model)  # improvement resets
        assert not stopping.update(0.6, model)
        assert stopping.update(0.7, model)  # patience exhausted

    def test_restore_brings_back_best(self):
        model = mlp([2, 2, 1], rng=0)
        stopping = EarlyStopping(patience=1)
        stopping.update(1.0, model)
        best = model.state_dict()
        for p in model.parameters():
            p.data = p.data + 1.0
        stopping.restore(model)
        for key, value in model.state_dict().items():
            assert np.allclose(value, best[key])
