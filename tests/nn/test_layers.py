"""Layer and Module machinery tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Sequential,
    Tanh,
    Tensor,
    mlp,
)
from repro.nn.gradcheck import check_gradients


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self):
        layer = Linear(3, 2, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)))
        check_gradients(lambda: (layer(x) ** 2).sum(), layer.parameters())


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([7]))

    def test_from_pretrained(self):
        matrix = np.arange(12.0).reshape(4, 3)
        emb = Embedding.from_pretrained(matrix)
        assert np.allclose(emb(np.array([2])).data, matrix[2])

    def test_gradient_flows_to_rows(self):
        emb = Embedding(6, 3, rng=0)
        out = emb(np.array([1, 1, 4]))
        out.sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[1], 2.0)
        assert np.allclose(grad[4], 1.0)
        assert np.allclose(grad[0], 0.0)


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.training = False
        x = Tensor(np.ones((3, 3)))
        assert np.allclose(drop(x).data, 1.0)

    def test_train_masks_and_scales(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((200, 50)))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        assert np.allclose(out[out > 0], 2.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        norm = LayerNorm(4)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(6, 4)))
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self):
        norm = LayerNorm(3)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (norm(x) ** 2).sum(), [x] + norm.parameters())


class TestModuleMachinery:
    def test_parameter_discovery_recursive(self):
        model = Sequential(Linear(2, 3, rng=0), Tanh(), Linear(3, 1, rng=0))
        assert len(model.parameters()) == 4

    def test_parameters_in_lists_and_dicts(self):
        class Holder(Module):
            def __init__(self):
                self.items = [Linear(2, 2, rng=0)]
                self.named = {"head": Linear(2, 1, rng=0)}

        assert len(Holder().parameters()) == 4

    def test_shared_parameter_counted_once(self):
        layer = Linear(2, 2, rng=0)

        class Shared(Module):
            def __init__(self):
                self.a = layer
                self.b = layer

        assert len(Shared().parameters()) == 2

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=0))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model = mlp([3, 4, 1], rng=0)
        state = model.state_dict()
        clone = mlp([3, 4, 1], rng=99)
        clone.load_state_dict(state)
        x = Tensor(np.ones((2, 3)))
        assert np.allclose(model(x).data, clone(x).data)

    def test_load_state_dict_shape_mismatch(self):
        model = mlp([3, 4, 1], rng=0)
        wrong = mlp([3, 5, 1], rng=0)
        with pytest.raises(ValueError):
            wrong.load_state_dict(model.state_dict())

    def test_num_parameters(self):
        model = Linear(10, 5, rng=0)
        assert model.num_parameters() == 10 * 5 + 5

    def test_zero_grad_clears_all(self):
        model = mlp([2, 3, 1], rng=0)
        out = model(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestMlpFactory:
    def test_structure(self):
        model = mlp([4, 8, 2], rng=0)
        assert len(model) == 3  # linear, act, linear

    def test_with_dropout_and_output_activation(self):
        model = mlp([4, 8, 2], dropout=0.2, output_activation=Tanh, rng=0)
        out = model(Tensor(np.zeros((1, 4))))
        assert out.shape == (1, 2)
        assert np.all(np.abs(out.data) <= 1.0)

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            mlp([4])
