"""Conv1d / pooling tests — the CNN corner of the Figure-2 zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, CharCNN, Conv1d, GlobalMaxPool1d, MaxPool1d, Tensor, mse_loss
from repro.nn.gradcheck import check_gradients


class TestConv1d:
    def test_valid_output_length(self):
        conv = Conv1d(4, 6, kernel_size=3, rng=0)
        assert conv(Tensor(np.zeros((2, 10, 4)))).shape == (2, 8, 6)

    def test_same_padding_preserves_length(self):
        conv = Conv1d(4, 6, kernel_size=3, padding="same", rng=0)
        assert conv(Tensor(np.zeros((2, 10, 4)))).shape == (2, 10, 6)

    def test_even_kernel_same_padding(self):
        conv = Conv1d(2, 3, kernel_size=4, padding="same", rng=0)
        assert conv(Tensor(np.zeros((1, 7, 2)))).shape == (1, 7, 3)

    def test_invalid_padding(self):
        with pytest.raises(ValueError):
            Conv1d(2, 3, padding="circular")

    def test_wrong_rank_rejected(self):
        conv = Conv1d(2, 3, rng=0)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((4, 2))))

    def test_wrong_channels_rejected(self):
        conv = Conv1d(2, 3, rng=0)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 5, 7))))

    def test_too_short_input_rejected(self):
        conv = Conv1d(2, 3, kernel_size=5, rng=0)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 3, 2))))

    def test_matches_manual_convolution(self):
        conv = Conv1d(1, 1, kernel_size=2, bias=False, rng=0)
        conv.weight.data = np.array([[[1.0]], [[2.0]]])  # y_t = x_t + 2 x_{t+1}
        x = np.array([[[1.0], [2.0], [3.0]]])
        out = conv(Tensor(x)).data
        assert np.allclose(out[0, :, 0], [1 + 4, 2 + 6])

    def test_translation_equivariance(self):
        """The paper's CNN motivation: a pattern is recognised wherever it
        occurs."""
        conv = Conv1d(1, 4, kernel_size=3, bias=False, rng=0)
        pattern = np.array([1.0, -2.0, 1.0])
        x1 = np.zeros((1, 12, 1))
        x2 = np.zeros((1, 12, 1))
        x1[0, 2:5, 0] = pattern
        x2[0, 7:10, 0] = pattern
        out1 = conv(Tensor(x1)).data
        out2 = conv(Tensor(x2)).data
        assert np.allclose(out1[0, 2], out2[0, 7])

    def test_gradcheck(self):
        conv = Conv1d(2, 3, kernel_size=3, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 2)))
        check_gradients(lambda: (conv(x) ** 2).sum(), conv.parameters())


class TestPooling:
    def test_maxpool_shape_and_values(self):
        pool = MaxPool1d(2)
        x = Tensor(np.array([[[1.0], [5.0], [2.0], [3.0], [9.0]]]))
        out = pool(x)
        assert out.shape == (1, 2, 1)  # ragged tail truncated
        assert np.allclose(out.data[0, :, 0], [5.0, 3.0])

    def test_global_maxpool(self):
        pool = GlobalMaxPool1d()
        x = Tensor(np.array([[[1.0, -1.0], [3.0, -5.0]]]))
        assert np.allclose(pool(x).data, [[3.0, -1.0]])

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool1d(0)


class TestCharCNN:
    def test_output_shape(self):
        cnn = CharCNN(8, out_channels=16, rng=0)
        assert cnn(Tensor(np.zeros((3, 12, 8)))).shape == (3, 16)
        assert cnn.output_dim == 16

    def test_trains_on_motif_detection(self):
        """CharCNN must learn to detect a local motif anywhere in the
        sequence — the spatially-local-pattern task CNNs exist for."""
        rng = np.random.default_rng(0)
        n, time = 80, 12
        x = rng.normal(0, 0.3, size=(n, time, 1))
        y = np.zeros((n, 1))
        for i in range(0, n, 2):  # half the sequences get the motif
            pos = int(rng.integers(0, time - 3))
            x[i, pos : pos + 3, 0] = [2.0, -2.0, 2.0]
            y[i] = 1.0
        from repro.nn import Linear, bce_with_logits

        cnn = CharCNN(1, hidden_channels=8, out_channels=8, rng=1)
        head = Linear(8, 1, rng=1)
        params = cnn.parameters() + head.parameters()
        optimizer = Adam(params, lr=0.02)
        for _ in range(60):
            logits = head(cnn(Tensor(x)))
            loss = bce_with_logits(logits, y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        accuracy = ((head(cnn(Tensor(x))).data > 0) == y).mean()
        assert accuracy > 0.9
