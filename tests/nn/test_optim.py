"""Optimizer and schedule tests: each optimizer must minimise a quadratic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AdaGrad,
    ExponentialDecay,
    RMSProp,
    SGD,
    StepDecay,
    Tensor,
    clip_grad_norm,
)
from repro.nn.layers import Parameter


def _quadratic_descent(optimizer_cls, steps=200, **kwargs):
    param = Parameter(np.array([5.0, -3.0]))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return np.abs(param.data).max()


@pytest.mark.parametrize(
    "optimizer_cls,kwargs",
    [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.2}),
        (AdaGrad, {"lr": 0.8}),
        (RMSProp, {"lr": 0.05}),
    ],
)
def test_optimizers_minimise_quadratic(optimizer_cls, kwargs):
    assert _quadratic_descent(optimizer_cls, **kwargs) < 0.05


def test_sgd_weight_decay_shrinks_weights():
    param = Parameter(np.array([1.0]))
    optimizer = SGD([param], lr=0.1, weight_decay=0.5)
    param.grad = np.array([0.0])
    optimizer.step()
    assert param.data[0] < 1.0


def test_momentum_accelerates():
    slow = _quadratic_descent(SGD, steps=30, lr=0.02)
    fast = _quadratic_descent(SGD, steps=30, lr=0.02, momentum=0.9)
    assert fast < slow


def test_optimizer_skips_none_grads():
    param = Parameter(np.array([1.0]))
    optimizer = Adam([param], lr=0.1)
    optimizer.step()  # no grad set: must not crash or move
    assert param.data[0] == 1.0


def test_empty_params_rejected():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_negative_lr_rejected():
    with pytest.raises(ValueError):
        Adam([Parameter(np.zeros(1))], lr=-1.0)


class TestClipGradNorm:
    def test_clips_when_above(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.isclose(np.linalg.norm(param.grad), 1.0, atol=1e-6)

    def test_no_clip_when_below(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.1)
        clip_grad_norm([param], max_norm=10.0)
        assert np.allclose(param.grad, 0.1)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedules:
    def test_step_decay(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = StepDecay(optimizer, step_size=2, gamma=0.5)
        schedule.step()
        assert optimizer.lr == 1.0
        schedule.step()
        assert optimizer.lr == 0.5

    def test_exponential_decay(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = ExponentialDecay(optimizer, gamma=0.9)
        schedule.step()
        schedule.step()
        assert optimizer.lr == pytest.approx(0.81)

    def test_step_decay_validates(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepDecay(optimizer, step_size=0)
