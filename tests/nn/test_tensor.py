"""Autograd engine tests: op semantics, broadcasting, gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor, concat, log_softmax, softmax, stack, where


class TestForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_scalar_radd(self):
        out = 1.0 + Tensor([1.0])
        assert np.allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        assert np.allclose((Tensor([3.0]) - 1.0).data, [2.0])
        assert np.allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        assert np.allclose((Tensor([2.0]) * Tensor([3.0])).data, [6.0])
        assert np.allclose((Tensor([6.0]) / 2.0).data, [3.0])
        assert np.allclose((6.0 / Tensor([2.0])).data, [3.0])

    def test_pow(self):
        assert np.allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0], [1.0]])
        assert np.allclose((a @ b).data, [[3.0], [7.0]])

    def test_broadcast_add(self):
        out = Tensor(np.ones((2, 3))) + Tensor([1.0, 2.0, 3.0])
        assert out.shape == (2, 3)
        assert np.allclose(out.data[0], [2.0, 3.0, 4.0])

    def test_reductions(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.sum().item() == 10.0
        assert t.mean().item() == 2.5
        assert np.allclose(t.sum(axis=0).data, [4.0, 6.0])
        assert np.allclose(t.mean(axis=1).data, [1.5, 3.5])
        assert t.max().item() == 4.0

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape(2, 3).T.shape == (3, 2)

    def test_getitem(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(t[0].data, [1.0, 2.0])
        assert np.allclose(t[:, 1].data, [2.0, 4.0])

    def test_concat_and_stack(self):
        a, b = Tensor([[1.0]]), Tensor([[2.0]])
        assert concat([a, b], axis=0).shape == (2, 1)
        assert concat([a, b], axis=1).shape == (1, 2)
        assert stack([a, b], axis=0).shape == (2, 1, 1)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_softmax_rows_sum_to_one(self):
        s = softmax(Tensor(np.random.default_rng(0).normal(size=(4, 5))))
        assert np.allclose(s.data.sum(axis=1), 1.0)

    def test_log_softmax_matches_softmax(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_softmax_stability_large_values(self):
        s = softmax(Tensor([[1000.0, 1000.0]]))
        assert np.allclose(s.data, [[0.5, 0.5]])

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_detach_cuts_graph(self):
        t = Tensor([2.0], requires_grad=True)
        out = (t.detach() * 3.0).sum()
        out.backward()
        assert t.grad is None

    def test_item_and_len(self):
        assert Tensor([[3.0]]).item() == 3.0
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestBackward:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor([2.0], requires_grad=True)
        out = (t * t + t).sum()  # d/dt = 2t + 1 = 5
        out.backward()
        assert np.allclose(t.grad, [5.0])

    def test_multiple_backward_calls_accumulate(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 3.0).sum().backward()
        (t * 3.0).sum().backward()
        assert np.allclose(t.grad, [6.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_broadcast_grad_unbroadcasts(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((4, 3)))
        (x + bias).sum().backward()
        assert np.allclose(bias.grad, [4.0, 4.0, 4.0])

    def test_diamond_graph(self):
        t = Tensor([3.0], requires_grad=True)
        a = t * 2.0
        b = t * 4.0
        (a + b).sum().backward()
        assert np.allclose(t.grad, [6.0])

    def test_gather_scatter_repeated_indices(self):
        table = Tensor(np.ones((3, 2)), requires_grad=True)
        picked = table.take_rows(np.array([0, 0, 2]))
        picked.sum().backward()
        assert np.allclose(table.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])


class TestGradChecks:
    """Numeric gradient verification for every differentiable op."""

    def _leaf(self, shape, seed=0, positive=False):
        data = np.random.default_rng(seed).normal(size=shape)
        if positive:
            data = np.abs(data) + 0.5
        return Tensor(data, requires_grad=True)

    @pytest.mark.parametrize(
        "op",
        [
            lambda t: (t * t).sum(),
            lambda t: (t + 2.0).mean(),
            lambda t: (t / 3.0).sum(),
            lambda t: (t**3).sum(),
            lambda t: t.tanh().sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.exp().mean(),
            lambda t: (-t).sum(),
            lambda t: t.mean(axis=0).sum(),
            lambda t: t.sum(axis=1, keepdims=True).mean(),
            lambda t: t.reshape(6).sum(),
            lambda t: t.T.mean(),
            lambda t: t[0:1, :].sum(),
            lambda t: softmax(t).max(axis=1).sum(),
            lambda t: log_softmax(t).sum(),
        ],
    )
    def test_unary_ops(self, op):
        t = self._leaf((2, 3), seed=1)
        check_gradients(lambda: op(t), [t])

    def test_log_sqrt_on_positive(self):
        t = self._leaf((2, 3), seed=2, positive=True)
        check_gradients(lambda: t.log().sum(), [t])
        check_gradients(lambda: t.sqrt().sum(), [t])

    def test_matmul(self):
        a = self._leaf((3, 4), seed=3)
        b = self._leaf((4, 2), seed=4)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector(self):
        a = self._leaf((4,), seed=5)
        b = self._leaf((4,), seed=6)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_div_both_sides(self):
        a = self._leaf((2, 2), seed=7)
        b = self._leaf((2, 2), seed=8, positive=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_concat_stack_where(self):
        a = self._leaf((2, 2), seed=9)
        b = self._leaf((2, 2), seed=10)
        cond = np.array([[True, False], [False, True]])
        check_gradients(lambda: concat([a, b], axis=1).sum(), [a, b])
        check_gradients(lambda: stack([a, b], axis=0).mean(), [a, b])
        check_gradients(lambda: where(cond, a, b).sum(), [a, b])

    def test_take_rows(self):
        table = self._leaf((5, 3), seed=11)
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda: (table.take_rows(idx) ** 2).sum(), [table])

    def test_concat_axis0_and_many_tensors(self):
        a = self._leaf((1, 3), seed=12)
        b = self._leaf((2, 3), seed=13)
        c = self._leaf((3, 3), seed=14)
        check_gradients(lambda: (concat([a, b, c], axis=0) ** 2).sum(), [a, b, c])

    def test_concat_mixed_requires_grad(self):
        a = self._leaf((2, 2), seed=15)
        frozen = Tensor(np.ones((2, 2)))
        check_gradients(lambda: concat([a, frozen], axis=0).sum(), [a])
        assert frozen.grad is None

    def test_transpose_with_permutation_3d(self):
        t = self._leaf((2, 3, 4), seed=16)
        check_gradients(lambda: (t.transpose(2, 0, 1) ** 2).sum(), [t])
        check_gradients(lambda: (t.transpose(1, 2, 0) * 0.5).sum(), [t])

    def test_getitem_fancy_repeated_indices(self):
        t = self._leaf((4, 3), seed=17)
        idx = np.array([1, 1, 3, 1])
        check_gradients(lambda: (t[idx] ** 2).sum(), [t])
        # Scatter-add semantics: grad of row 1 counts every pick.
        t.zero_grad()
        t[idx].sum().backward()
        assert np.allclose(t.grad[1], 3.0)
        assert np.allclose(t.grad[0], 0.0)

    def test_getitem_tuple_fancy_index(self):
        t = self._leaf((3, 4), seed=18)
        rows = np.array([0, 2, 2])
        cols = np.array([1, 1, 3])
        check_gradients(lambda: (t[rows, cols] ** 2).sum(), [t])

    def test_broadcast_row_and_column(self):
        row = self._leaf((1, 3), seed=19)
        full = self._leaf((4, 3), seed=20)
        check_gradients(lambda: (full * row).sum(), [full, row])
        col = self._leaf((2, 1), seed=21)
        wide = self._leaf((2, 5), seed=22)
        check_gradients(lambda: (wide + col).sum(), [wide, col])

    def test_broadcast_scalar_and_new_axis(self):
        scalar = self._leaf((), seed=23)
        grid = self._leaf((3, 2), seed=24)
        check_gradients(lambda: (grid * scalar).sum(), [grid, scalar])
        vec = self._leaf((2,), seed=25)  # (2,) + (3,2) prepends an axis
        check_gradients(lambda: (grid + vec).sum(), [grid, vec])

    def test_unbroadcast_keeps_one_sized_axes(self):
        # Both operands broadcast: (1,3) * (4,1) -> (4,3); each grad must
        # collapse back to its own shape, not the output's.
        a = self._leaf((1, 3), seed=26)
        b = self._leaf((4, 1), seed=27)
        check_gradients(lambda: (a * b).sum(), [a, b])
        a.zero_grad(); b.zero_grad()
        (a * b).sum().backward()
        assert a.grad.shape == (1, 3)
        assert b.grad.shape == (4, 1)


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, (3, 2), elements=st.floats(-5, 5, allow_nan=False)),
    arrays(np.float64, (3, 2), elements=st.floats(-5, 5, allow_nan=False)),
)
def test_add_commutes_property(a, b):
    assert np.allclose((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (4, 3), elements=st.floats(-10, 10, allow_nan=False)))
def test_softmax_is_distribution_property(x):
    s = softmax(Tensor(x)).data
    assert np.all(s >= 0)
    assert np.allclose(s.sum(axis=1), 1.0)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (2, 3), elements=st.floats(-3, 3, allow_nan=False)))
def test_tanh_grad_matches_identity_property(x):
    t = Tensor(x, requires_grad=True)
    t.tanh().sum().backward()
    assert np.allclose(t.grad, 1 - np.tanh(x) ** 2)
