"""Differential tier: batched kernels versus the per-pair loop reference.

The kernel contract (:mod:`repro.kernels.features`) is *bit-exactness* in
float mode — not closeness.  Every test here compares full byte patterns
(``np.array_equal``), across batch sizes 1/2/7/32/1000, empty input and
duplicate pairs, at three levels: feature matrices, classifier
probabilities, and end-to-end serving answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.er.deeper import _pair_feature_row
from repro.kernels import compose_pair_features, pair_feature_matrix, score_pairs
from repro.serve import MatchService

BATCH_SIZES = [1, 2, 7, 32, 1000]


def _loop_features(pairs, embedder) -> np.ndarray:
    return np.array([_pair_feature_row(pair, embedder) for pair in pairs])


def _column_stacks(pairs, embedder):
    u = np.array([embedder.embed_columns(a) for a, _ in pairs])
    v = np.array([embedder.embed_columns(b) for _, b in pairs])
    return u, v


class TestFeatureKernel:
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_bit_exact_across_batch_sizes(self, trained_matcher, pair_pool, size):
        pairs = pair_pool[:size]
        embedder = trained_matcher.embedder
        batched = pair_feature_matrix(*_column_stacks(pairs, embedder))
        assert np.array_equal(batched, _loop_features(pairs, embedder))

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_composed_bit_exact_across_batch_sizes(
        self, trained_matcher, pair_pool, size
    ):
        pairs = pair_pool[:size]
        embedder = trained_matcher.embedder
        composed = compose_pair_features(pairs, embedder)
        assert np.array_equal(composed, _loop_features(pairs, embedder))

    def test_empty_batch(self, trained_matcher):
        embedder = trained_matcher.embedder
        out = compose_pair_features([], embedder)
        assert out.shape == (0, len(embedder.columns) * (embedder.dim + 1))

    def test_duplicate_pairs(self, trained_matcher, pair_pool):
        # Duplicates exercise the dedup gather: repeated pairs must come
        # back as identical rows, and the whole matrix must still match
        # the (dedup-free) loop.
        pairs = pair_pool[:6] + pair_pool[:3] + [pair_pool[0]]
        embedder = trained_matcher.embedder
        composed = compose_pair_features(pairs, embedder)
        assert np.array_equal(composed, _loop_features(pairs, embedder))
        assert np.array_equal(composed[0], composed[6])
        assert np.array_equal(composed[0], composed[9])

    def test_zero_norm_columns_guarded(self, trained_matcher, pair_pool):
        # A record with no known tokens embeds to all-zero columns; the
        # guarded lanes must agree with the loop's scalar branches.
        embedder = trained_matcher.embedder
        blank = {column: "" for column in embedder.columns}
        pairs = [(blank, pair_pool[0][1]), (blank, blank), pair_pool[1]]
        composed = compose_pair_features(pairs, embedder)
        assert np.array_equal(composed, _loop_features(pairs, embedder))
        assert np.all(np.isfinite(composed))

    def test_kernel_and_loop_matcher_paths_identical(
        self, trained_matcher, pair_pool
    ):
        pairs = pair_pool[:25]
        assert trained_matcher.kernels
        kernel_features = trained_matcher._pair_features_numpy(pairs)
        trained_matcher.kernels = False
        try:
            loop_features = trained_matcher._pair_features_numpy(pairs)
        finally:
            trained_matcher.kernels = True
        assert np.array_equal(kernel_features, loop_features)


class TestScoreKernel:
    @pytest.mark.parametrize("size", [1, 2, 7, 32])
    def test_probabilities_match_predict_proba(
        self, trained_matcher, pair_pool, size
    ):
        pairs = pair_pool[:size]
        u, v = _column_stacks(pairs, trained_matcher.embedder)
        kernel = score_pairs(trained_matcher.classifier, u, v)
        offline = trained_matcher.predict_proba(pairs)
        assert np.array_equal(kernel, offline)

    def test_empty_batch(self, trained_matcher):
        dim = trained_matcher.embedder.dim
        columns = len(trained_matcher.embedder.columns)
        out = score_pairs(
            trained_matcher.classifier,
            np.zeros((0, columns, dim)),
            np.zeros((0, columns, dim)),
        )
        assert out.shape == (0,)


class TestServingDifferential:
    def test_kernel_service_equals_loop_service(
        self, trained_matcher, built_index, query_records
    ):
        queries = query_records[:40]
        kernel = MatchService(
            trained_matcher, built_index, jobs=1, scoring="kernel"
        ).match_batch(queries)
        loop = MatchService(
            trained_matcher, built_index, jobs=1, scoring="loop"
        ).match_batch(queries)
        assert kernel.scored_pairs == loop.scored_pairs
        for a, b in zip(kernel.answers, loop.answers):
            assert a.best_id == b.best_id
            assert a.probability == b.probability  # bit-equal, not approx
            assert a.matched == b.matched

    def test_kernel_service_equals_offline_predict(
        self, trained_matcher, built_index, query_records
    ):
        service = MatchService(trained_matcher, built_index, jobs=1)
        assert service.scoring == "kernel"
        for query in query_records[:12]:
            answer = service.match_one(query)
            if not answer.candidates:
                continue
            pairs = [(query, built_index.record(c)) for c in answer.candidates]
            offline = trained_matcher.predict_proba(pairs)
            assert answer.probability == float(offline.max())
            best_position = answer.candidates.index(answer.best_id)
            assert answer.probability == float(offline[best_position])
