"""Quantized-store properties: error bound, idempotence, stable keys.

int8 mode uses power-of-two scales precisely so these properties hold
*exactly* (see :mod:`repro.kernels.quant`); the tests assert them as
properties over seeded random matrices spanning many magnitudes, not on
a single lucky example.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.kernels import MODES, quantize
from repro.serve import BlockingIndex, MatchService


def _random_matrices():
    """Seeded matrices covering magnitudes, signs, zero rows and 3-D stacks."""
    rng = np.random.default_rng(7)
    flat = rng.normal(size=(40, 24)) * np.exp2(rng.integers(-20, 20, size=(40, 1)))
    flat[5] = 0.0  # all-zero row must survive every mode
    flat[6] = -flat[6]
    stack = rng.normal(size=(15, 5, 8)) * np.exp2(rng.integers(-8, 8, size=(15, 1, 1)))
    stack[3] = 0.0
    return [flat, stack]


class TestRoundTrip:
    @pytest.mark.parametrize("mode", MODES)
    def test_quantize_dequantize_quantize_idempotent(self, mode):
        for matrix in _random_matrices():
            first = quantize(matrix, mode=mode)
            second = quantize(first.dequantize(), mode=mode)
            assert np.array_equal(first.codes, second.codes)
            assert np.array_equal(first.scales, second.scales)
            assert first.content_key() == second.content_key()
            # And the dequantized values themselves are a fixed point.
            assert np.array_equal(first.dequantize(), second.dequantize())

    def test_none_mode_is_lossless(self):
        for matrix in _random_matrices():
            assert np.array_equal(quantize(matrix, mode="none").dequantize(), matrix)

    def test_rows_gather_matches_full_dequantize(self):
        for matrix in _random_matrices():
            store = quantize(matrix, mode="int8")
            indices = np.array([0, 3, 3, len(matrix) - 1], dtype=np.intp)
            assert np.array_equal(store.rows(indices), store.dequantize()[indices])

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            quantize(np.ones((2, 2)), mode="int4")


class TestErrorContract:
    def test_int8_elementwise_bound(self):
        # |x − deq(x)| ≤ scale/2 per element, scale ≤ 2·max_abs/127 per row.
        for matrix in _random_matrices():
            store = quantize(matrix, mode="int8")
            error = np.abs(matrix - store.dequantize())
            per_row_scale = store.scales.reshape(
                (len(store.scales),) + (1,) * (matrix.ndim - 1)
            )
            assert np.all(error <= per_row_scale / 2.0)
            max_abs = np.abs(matrix.reshape(len(matrix), -1)).max(axis=1)
            bounded = max_abs > 0
            assert np.all(store.scales[bounded] <= 2.0 * max_abs[bounded] / 127.0)

    def test_float16_relative_bound(self):
        # Magnitudes kept inside half's *normalized* range, where the
        # 2^-11 relative bound is the IEEE guarantee.
        rng = np.random.default_rng(11)
        matrix = (
            rng.choice([-1.0, 1.0], size=(50, 16))
            * np.exp2(rng.uniform(-10, 10, size=(50, 16)))
        )
        store = quantize(matrix, mode="float16")
        relative = np.abs(matrix - store.dequantize()) / np.abs(matrix)
        assert np.all(relative <= 2.0**-11)

    def test_int8_store_is_smaller(self):
        matrix = np.random.default_rng(3).normal(size=(100, 5, 24))
        assert quantize(matrix, mode="int8").nbytes * 6 < matrix.nbytes
        assert quantize(matrix, mode="float16").nbytes * 3 < matrix.nbytes


class TestContentKey:
    def test_key_distinguishes_payloads(self):
        matrix = np.random.default_rng(5).normal(size=(8, 4))
        base = quantize(matrix, mode="int8")
        assert base.content_key() != quantize(matrix * 3.0, mode="int8").content_key()
        assert base.content_key() != quantize(matrix, mode="float16").content_key()

    def test_key_stable_across_hash_seeds(self):
        """The sha1 content key must not depend on PYTHONHASHSEED."""
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.kernels import quantize
            matrix = np.random.default_rng(9).normal(size=(6, 3, 4))
            print(quantize(matrix, mode="int8").content_key())
            """
        )
        digests = set()
        for seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestQuantizedServing:
    """Quantized index modes: answers within the documented error, never exact."""

    @pytest.mark.parametrize("mode", ["float16", "int8"])
    def test_quantized_index_answers_within_tolerance(
        self, trained_matcher, reference_records, query_records, mode
    ):
        records, ids = reference_records
        exact_index = BlockingIndex(
            trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
        ).build(records, ids, jobs=1)
        quant_index = BlockingIndex(
            trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
        ).build(records, ids, jobs=1, quantize=mode)
        assert quant_index.quantization == mode
        assert quant_index.column_store.nbytes < exact_index.column_store.nbytes
        exact = MatchService(trained_matcher, exact_index, jobs=1)
        quant = MatchService(trained_matcher, quant_index, jobs=1)
        queries = query_records[:30]
        exact_answers = exact.match_batch(queries).answers
        quant_answers = quant.match_batch(queries).answers
        for a, b in zip(exact_answers, quant_answers):
            # Blocking runs on full-precision tuple embeddings either way.
            assert a.candidates == b.candidates
            assert abs(a.probability - b.probability) < 0.05
