"""Cache coherence: one embedding composition per unique tuple per batch.

The per-pair loop silently recomputed a tuple's attribute embeddings for
every pair it appeared in — a query scored against 12 candidates was
composed 12 times.  The kernel path deduplicates by content key before
composing; these tests pin that down with the guarded
``kernels.compose.*`` counters rather than timing.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import compose_pair_features
from repro.obs import REGISTRY, collecting
from repro.serve import MatchService


class TestComposeDedup:
    def test_one_composition_per_unique_record(self, trained_matcher, pair_pool):
        query, reference = pair_pool[0]
        other = pair_pool[1][1]
        # 4 pairs, 8 record slots, but only 3 distinct records.
        pairs = [(query, reference), (query, other), (query, reference),
                 (reference, other)]
        with collecting(reset=True):
            compose_pair_features(pairs, trained_matcher.embedder)
            assert REGISTRY.counter("kernels.compose.requests").value == 8
            assert REGISTRY.counter("kernels.compose.unique").value == 3

    def test_dedup_is_by_content_not_identity(self, trained_matcher, pair_pool):
        query, reference = pair_pool[0]
        copy = dict(reference)  # equal content, different object
        with collecting(reset=True):
            compose_pair_features([(query, reference), (query, copy)],
                                  trained_matcher.embedder)
            assert REGISTRY.counter("kernels.compose.unique").value == 2

    def test_offline_matcher_composes_once_per_unique_tuple(
        self, trained_matcher, pair_pool
    ):
        # The DeepER hot path itself (not just serving) goes through the
        # deduplicated kernel: a tuple in N pairs is embedded once.
        query = pair_pool[0][0]
        references = [pair_pool[i][1] for i in range(6)]
        pairs = [(query, r) for r in references]
        with collecting(reset=True):
            trained_matcher.predict_proba(pairs)
            assert REGISTRY.counter("kernels.compose.unique").value == 7
            assert REGISTRY.counter("kernels.compose.requests").value == 12


class TestServingColumnCache:
    def test_duplicate_queries_compose_once_in_batch(
        self, trained_matcher, built_index, query_records
    ):
        service = MatchService(trained_matcher, built_index, jobs=1)
        q1, q2 = query_records[0], query_records[1]
        with collecting(reset=True):
            service.match_batch([q1, q1, q2, q1])
            # Two unique query tuples -> at most two compositions; the
            # reference side never composes (gathered from the store).
            assert REGISTRY.counter("kernels.compose.unique").value <= 2

    def test_warm_column_cache_skips_composition(
        self, trained_matcher, built_index, query_records
    ):
        service = MatchService(trained_matcher, built_index, jobs=1)
        queries = query_records[:5]
        service.match_batch(queries)  # cold pass populates every cache
        with collecting(reset=True):
            report = service.match_batch(queries)
            assert report.scored_pairs == 0  # score cache already has them
            assert REGISTRY.counter("kernels.compose.unique").value == 0

    def test_column_cache_disabled_still_correct(
        self, trained_matcher, built_index, query_records
    ):
        cached = MatchService(trained_matcher, built_index, jobs=1)
        uncached = MatchService(
            trained_matcher, built_index, jobs=1,
            embedding_cache_size=0, score_cache_size=0,
        )
        queries = query_records[:10]
        warm = cached.match_batch(queries)  # noqa: F841 — warm the caches
        again = cached.match_batch(queries)
        cold = uncached.match_batch(queries)
        for a, b in zip(again.answers, cold.answers):
            assert a.best_id == b.best_id
            assert a.probability == b.probability
