"""Kernel-tier fixtures: a trained fixed-composition matcher + records.

Mirrors the serving suite's setup (module-scoped, built once) — the
differential tier compares kernel output against this matcher's loop
reference, so both suites must exercise the same model family.
"""

from __future__ import annotations

import pytest

from repro.er import DeepER
from repro.serve import BlockingIndex


@pytest.fixture(scope="module")
def trained_matcher(word_model, small_benchmark):
    labeled = small_benchmark.labeled_pairs(negative_ratio=3, rng=1)[:120]
    train = [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]
    return DeepER(
        word_model, small_benchmark.compare_columns, composition="sif", rng=0
    ).fit(train, epochs=5)


@pytest.fixture(scope="module")
def reference_records(small_benchmark):
    records = [
        small_benchmark.table_a.row_dict(i)
        for i in range(len(small_benchmark.table_a))
    ]
    ids = [str(v) for v in small_benchmark.table_a.column(small_benchmark.id_column)]
    return records, ids


@pytest.fixture(scope="module")
def query_records(small_benchmark):
    return [
        small_benchmark.table_b.row_dict(i)
        for i in range(len(small_benchmark.table_b))
    ]


@pytest.fixture(scope="module")
def built_index(trained_matcher, reference_records):
    records, ids = reference_records
    return BlockingIndex(
        trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
    ).build(records, ids, jobs=1)


@pytest.fixture(scope="module")
def pair_pool(reference_records, query_records):
    """A deterministic pool of (query, reference) record pairs to draw
    batches from; large enough to cover the 1000-pair sweep."""
    records, _ = reference_records
    pool = []
    i = 0
    while len(pool) < 1200:
        pool.append(
            (query_records[i % len(query_records)], records[(i * 7) % len(records)])
        )
        i += 1
    return pool
