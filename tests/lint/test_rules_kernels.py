"""RL1001: batched-kernel contract under repro/serve/ and repro/er/."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

SERVE_PATH = "src/repro/serve/service.py"
ER_PATH = "src/repro/er/matching.py"


class TestLoopCalls:
    def test_predict_proba_in_for_loop_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def score(matcher, pairs):
                out = []
                for pair in pairs:
                    out.append(matcher.predict_proba([pair]))
                return out
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == {"RL1001"}

    def test_embed_in_while_loop_flagged(self, lint_file):
        result = lint_file(ER_PATH, """
            def drain(embedder, queue):
                while queue:
                    record = queue.pop()
                    vector = embedder.embed(record)
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == {"RL1001"}

    def test_embed_columns_in_listcomp_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def columns(embedder, records):
                return [embedder.embed_columns(r) for r in records]
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == {"RL1001"}

    def test_token_matrix_in_genexp_flagged(self, lint_file):
        result = lint_file(ER_PATH, """
            import numpy as np

            def batch(embedder, records, max_tokens):
                return np.array(
                    list(embedder.token_matrix(r, max_tokens) for r in records)
                )
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == {"RL1001"}

    def test_loop_reference_call_in_loop_flagged(self, lint_file):
        result = lint_file(ER_PATH, """
            def features(pairs, embedder):
                return [_pair_feature_row(p, embedder) for p in pairs]
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == {"RL1001"}

    def test_nested_loop_flagged(self, lint_file):
        result = lint_file(ER_PATH, """
            def cross(matcher, queries, candidates):
                for q in queries:
                    for c in candidates:
                        matcher.predict_proba([(q, c)])
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == {"RL1001"}

    def test_dictcomp_value_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def lookup(embedder, records):
                return {r["id"]: embedder.embed(r) for r in records}
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == {"RL1001"}


class TestKernelCallSitesAllowed:
    def test_single_batched_call_allowed(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def score(matcher, pairs):
                return matcher.predict_proba(pairs)
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == set()

    def test_pmap_by_reference_allowed(self, lint_file):
        # Passing the primitive by reference fans it out without a Python
        # loop at this call site — that IS the sanctioned pattern.
        result = lint_file(ER_PATH, """
            from functools import partial

            from repro.par import pmap

            def features(pairs, embedder, jobs):
                return pmap(
                    partial(_pair_feature_row, embedder=embedder),
                    pairs, jobs=jobs, label="x",
                )
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == set()

    def test_comprehension_source_iterable_allowed(self, lint_file):
        # Only the first generator's iterable is evaluated once; a batched
        # call there is not a per-element call.
        result = lint_file(SERVE_PATH, """
            def flags(matcher, pairs, threshold):
                return [p >= threshold for p in matcher.predict_proba(pairs)]
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == set()

    def test_function_defined_in_loop_allowed(self, lint_file):
        result = lint_file(ER_PATH, """
            def make_scorers(matchers):
                scorers = []
                for matcher in matchers:
                    def scorer(pairs, matcher=matcher):
                        return matcher.predict_proba(pairs)
                    scorers.append(scorer)
                return scorers
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == set()

    def test_unrelated_calls_in_loop_allowed(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def assemble(index, candidate_ids):
                return [index.record(c) for c in candidate_ids]
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == set()


class TestScoping:
    def test_rule_silent_outside_hot_packages(self, lint_file):
        result = lint_file("src/repro/cleaning/imputer.py", """
            def impute(matcher, pairs):
                return [matcher.predict_proba([p]) for p in pairs]
        """, rule_ids=["RL1001"])
        assert rule_ids(result) == set()

    def test_real_serve_package_is_clean(self):
        from pathlib import Path

        from repro.lint.engine import lint_paths
        import repro.serve

        package_dir = Path(repro.serve.__file__).parent
        repo_src = package_dir.parent.parent.parent
        result = lint_paths([package_dir], root=repo_src.parent,
                            rule_ids=["RL1001"])
        assert result.findings == []

    def test_real_kernels_package_not_in_scope(self):
        from pathlib import Path

        from repro.lint.engine import lint_paths
        import repro.kernels

        package_dir = Path(repro.kernels.__file__).parent
        repo_src = package_dir.parent.parent.parent
        result = lint_paths([package_dir], root=repo_src.parent,
                            rule_ids=["RL1001"])
        assert result.findings == []
