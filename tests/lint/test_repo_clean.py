"""Tier-1 gate: the repo itself must lint clean against its baseline.

This is the enforcement half of the linter — any new violation of an
RL rule in ``src/`` or ``benchmarks/`` fails this test unless it is
either fixed or added to ``lint-baseline.json`` with a justification.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.baseline import DEFAULT_BASELINE_NAME, load_baseline
from repro.lint.engine import lint_paths
from repro.lint.report import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def repo_result():
    baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
    baseline = load_baseline(baseline_path) if baseline_path.is_file() else None
    return lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
        baseline=baseline,
        root=REPO_ROOT,
    )


def test_repo_lints_clean(repo_result):
    assert repo_result.ok, "\n" + render_text(repo_result)


def test_no_stale_baseline_entries(repo_result):
    assert repo_result.stale_baseline == [], "\n" + render_text(repo_result)


def test_baseline_entries_are_justified(repo_result):
    baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
    if not baseline_path.is_file():
        pytest.skip("no baseline committed")
    for entry in load_baseline(baseline_path).entries:
        assert entry.justification.strip(), f"unjustified baseline entry: {entry}"
        assert not entry.justification.startswith("TODO"), (
            f"baseline entry still carries a TODO justification: {entry}"
        )


def test_lint_covers_repo_files(repo_result):
    # Sanity check that the walk actually visited the codebase; a collection
    # bug that silently checked 0 files would make the gate vacuous.
    assert repo_result.files_checked > 100


def test_shard_layer_is_clean_under_serve_contracts(repo_result):
    # The scatter-gather router must satisfy the serving contracts with no
    # baseline help: RL901 (read-only serving — no .fit/.backward/.data
    # mutation) and RL1104 (serve purity closure) over the shard layer,
    # plus RL401 guards on its hot metrics calls.  Zero findings in the
    # repo-wide result could also mean the walk never saw the file, so a
    # targeted single-file run proves it is both visited and clean.
    shard_findings = [
        f for f in repo_result.findings
        if f.path.endswith("repro/serve/shard.py")
    ]
    assert shard_findings == [], (
        "shard layer must lint clean without baseline entries:\n"
        + "\n".join(f"{f.rule_id} {f.path}:{f.line} {f.message}" for f in shard_findings)
    )
    solo = lint_paths(
        [REPO_ROOT / "src" / "repro" / "serve" / "shard.py"], root=REPO_ROOT
    )
    assert solo.files_checked == 1
    assert solo.findings == []


def test_loop_package_is_clean_under_the_hot_and_fault_contracts(repo_result):
    # The continuous-curation loop package must satisfy the hot-path and
    # fault-wiring contracts with no baseline help: RL401 (guarded metrics
    # accessors) and RL801 (no fault-swallowing excepts) both name
    # /repro/loop/ in their path markers, and the whole-program pass
    # (RL1101 purity of retried sites, RL1104 serve closure — the loop
    # depends on serve, never the reverse) runs over its files.  Zero
    # findings repo-wide could also mean the walk never saw the package,
    # so a targeted run proves the files are both visited and clean.
    from repro.lint.registry import get_rule

    for rule_id in ("RL401", "RL801"):
        assert any(
            "/repro/loop/" in marker for marker in get_rule(rule_id).path_markers
        ), f"{rule_id} does not cover the loop package"
    loop_findings = [
        f for f in repo_result.findings if "repro/loop/" in f.path
    ]
    assert loop_findings == [], (
        "loop package must lint clean without baseline entries:\n"
        + "\n".join(f"{f.rule_id} {f.path}:{f.line} {f.message}" for f in loop_findings)
    )
    solo = lint_paths([REPO_ROOT / "src" / "repro" / "loop"], root=REPO_ROOT)
    assert solo.files_checked == 5
    assert solo.findings == []


def test_gate_exercises_interprocedural_rules(repo_result):
    # The RL11xx rules only bite when the project graph actually resolves
    # the repo's call edges: the baselined RL1101/RL1102 findings (run_all's
    # wall-clock stamp, ensure_rng's escape hatch) are the canaries.  If a
    # resolver regression silently dropped the graph, those findings would
    # vanish and their baseline entries would go stale — so an empty stale
    # list plus the canaries present proves the whole-program pass ran.
    baselined_rules = {f.rule_id for f in repo_result.baselined_findings}
    assert {"RL1101", "RL1102"} <= baselined_rules, (
        "interprocedural canary findings missing: the project-phase pass "
        "did not run or the call-graph resolver regressed"
    )


def test_gateway_package_is_clean_under_the_hot_and_fault_contracts(repo_result):
    # The gateway package fronts the serving stack, so the same contracts
    # bite: RL401 (guarded metrics accessors), RL801 (no fault-swallowing
    # excepts) and RL901 (read-only serving) name /repro/gateway/ in their
    # path markers, and RL1103 keeps its three fault-site strings
    # (gateway.admit / gateway.route / gateway.dispatch) coherent with the
    # declared catalog.  Zero findings repo-wide could also mean the walk
    # never saw the package, so a targeted run proves every file — the six
    # top-level modules plus the seven router modules and __init__ — is
    # both visited and clean.
    from repro.lint.registry import get_rule

    for rule_id in ("RL401", "RL801", "RL901"):
        assert any(
            "/repro/gateway/" in marker for marker in get_rule(rule_id).path_markers
        ), f"{rule_id} does not cover the gateway package"
    gateway_findings = [
        f for f in repo_result.findings if "repro/gateway/" in f.path
    ]
    assert gateway_findings == [], (
        "gateway package must lint clean without baseline entries:\n"
        + "\n".join(f"{f.rule_id} {f.path}:{f.line} {f.message}" for f in gateway_findings)
    )
    solo = lint_paths([REPO_ROOT / "src" / "repro" / "gateway"], root=REPO_ROOT)
    assert solo.files_checked == 14
    assert solo.findings == []
