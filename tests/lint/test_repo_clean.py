"""Tier-1 gate: the repo itself must lint clean against its baseline.

This is the enforcement half of the linter — any new violation of an
RL rule in ``src/`` or ``benchmarks/`` fails this test unless it is
either fixed or added to ``lint-baseline.json`` with a justification.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.baseline import DEFAULT_BASELINE_NAME, load_baseline
from repro.lint.engine import lint_paths
from repro.lint.report import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def repo_result():
    baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
    baseline = load_baseline(baseline_path) if baseline_path.is_file() else None
    return lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
        baseline=baseline,
        root=REPO_ROOT,
    )


def test_repo_lints_clean(repo_result):
    assert repo_result.ok, "\n" + render_text(repo_result)


def test_no_stale_baseline_entries(repo_result):
    assert repo_result.stale_baseline == [], "\n" + render_text(repo_result)


def test_baseline_entries_are_justified(repo_result):
    baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
    if not baseline_path.is_file():
        pytest.skip("no baseline committed")
    for entry in load_baseline(baseline_path).entries:
        assert entry.justification.strip(), f"unjustified baseline entry: {entry}"
        assert not entry.justification.startswith("TODO"), (
            f"baseline entry still carries a TODO justification: {entry}"
        )


def test_lint_covers_repo_files(repo_result):
    # Sanity check that the walk actually visited the codebase; a collection
    # bug that silently checked 0 files would make the gate vacuous.
    assert repo_result.files_checked > 100
