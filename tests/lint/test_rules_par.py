"""RL701/RL702: repro.par call sites pin jobs/seed explicitly."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

SRC_PATH = "src/repro/er/blocking.py"


class TestExplicitJobs:
    def test_missing_jobs_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from repro.par import pmap

            def score(items):
                return pmap(str, items)
            """,
            rule_ids=["RL701"],
        )
        assert rule_ids(result) == {"RL701"}
        assert "pmap()" in result.findings[0].message

    def test_explicit_jobs_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from repro.par import pmap, pstarmap

            def score(items, jobs):
                a = pmap(str, items, jobs=jobs)
                b = pstarmap(divmod, items, jobs=1)
                return a, b
            """,
            rule_ids=["RL701"],
        )
        assert result.findings == []

    def test_aliased_import_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from repro.par import pmap_chunks as fanout

            def score(items):
                return fanout(len, items)
            """,
            rule_ids=["RL701"],
        )
        assert rule_ids(result) == {"RL701"}
        assert "pmap_chunks()" in result.findings[0].message

    def test_module_attribute_call_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from repro import par

            def score(items):
                return par.pmap(str, items)
            """,
            rule_ids=["RL701"],
        )
        assert rule_ids(result) == {"RL701"}

    def test_import_repro_par_as_alias_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import repro.par as rp

            def score(items):
                return rp.pstarmap(divmod, items)
            """,
            rule_ids=["RL701"],
        )
        assert rule_ids(result) == {"RL701"}

    def test_kwargs_splat_tolerated(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from repro.par import pmap

            def score(items, **kwargs):
                return pmap(str, items, **kwargs)
            """,
            rule_ids=["RL701"],
        )
        assert result.findings == []

    def test_unrelated_pmap_ignored(self, lint_file):
        # A local function that happens to be called pmap is not repro.par.
        result = lint_file(
            SRC_PATH,
            """
            def pmap(fn, items):
                return [fn(item) for item in items]

            def score(items):
                return pmap(str, items)
            """,
            rule_ids=["RL701"],
        )
        assert result.findings == []

    def test_outside_scoped_paths_ignored(self, lint_file):
        result = lint_file(
            "examples/demo.py",
            """
            from repro.par import pmap

            def score(items):
                return pmap(str, items)
            """,
            rule_ids=["RL701"],
        )
        assert result.findings == []


class TestAmbientState:
    def test_cpu_count_jobs_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import os

            from repro.par import pmap

            def score(items):
                return pmap(str, items, jobs=os.cpu_count())
            """,
            rule_ids=["RL702"],
        )
        assert rule_ids(result) == {"RL702"}
        assert "os.cpu_count()" in result.findings[0].message

    def test_environ_seed_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import os

            from repro.par import pmap

            def score(items, jobs):
                return pmap(str, items, jobs=jobs, seed=int(os.environ["SEED"]))
            """,
            rule_ids=["RL702"],
        )
        assert rule_ids(result) == {"RL702"}
        assert "os.environ" in result.findings[0].message

    def test_getenv_jobs_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import os

            from repro.par import pstarmap

            def score(items):
                return pstarmap(divmod, items, jobs=int(os.getenv("JOBS", "1")))
            """,
            rule_ids=["RL702"],
        )
        assert rule_ids(result) == {"RL702"}

    def test_multiprocessing_cpu_count_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import multiprocessing

            from repro.par import pmap

            def score(items):
                return pmap(str, items, jobs=multiprocessing.cpu_count())
            """,
            rule_ids=["RL702"],
        )
        assert rule_ids(result) == {"RL702"}

    def test_bare_cpu_count_import_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from os import cpu_count

            from repro.par import pmap

            def score(items):
                return pmap(str, items, jobs=cpu_count() or 1)
            """,
            rule_ids=["RL702"],
        )
        assert rule_ids(result) == {"RL702"}

    def test_explicit_values_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from repro.par import pmap

            def score(items, jobs, seed):
                return pmap(str, items, jobs=jobs, seed=seed)
            """,
            rule_ids=["RL702"],
        )
        assert result.findings == []

    def test_ambient_read_elsewhere_ok(self, lint_file):
        # Only the jobs=/seed= values are policed; other env use is RL702's
        # problem only when it feeds the parallel contract.
        result = lint_file(
            SRC_PATH,
            """
            import os

            from repro.par import pmap

            def score(items, jobs):
                label = os.environ.get("RUN_LABEL", "run")
                return pmap(str, items, jobs=jobs, label=label)
            """,
            rule_ids=["RL702"],
        )
        assert result.findings == []
