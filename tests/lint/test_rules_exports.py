"""RL601 (__all__ names exist) and RL602 (packages define __all__)."""

from __future__ import annotations

from tests.lint.conftest import rule_ids


class TestAllNamesExist:
    def test_phantom_export_flagged(self, lint_file):
        result = lint_file(
            "src/repro/er/__init__.py",
            """
            from repro.er.blocking import block_pairs

            __all__ = ["block_pairs", "match_pairs"]
            """,
            rule_ids=["RL601"],
        )
        assert rule_ids(result) == {"RL601"}
        assert "match_pairs" in result.findings[0].message

    def test_duplicate_export_flagged(self, lint_file):
        result = lint_file(
            "src/repro/er/__init__.py",
            """
            from repro.er.blocking import block_pairs

            __all__ = ["block_pairs", "block_pairs"]
            """,
            rule_ids=["RL601"],
        )
        assert rule_ids(result) == {"RL601"}
        assert "more than once" in result.findings[0].message

    def test_all_names_defined_ok(self, lint_file):
        result = lint_file(
            "src/repro/er/__init__.py",
            """
            from repro.er.blocking import block_pairs
            from repro.er import matching

            CONST = 3

            def helper():
                return CONST

            __all__ = ["block_pairs", "matching", "CONST", "helper"]
            """,
            rule_ids=["RL601"],
        )
        assert result.findings == []

    def test_conditional_definition_counts(self, lint_file):
        result = lint_file(
            "src/repro/er/__init__.py",
            """
            try:
                from repro.er.fast import block_pairs
            except ImportError:
                def block_pairs(rows):
                    return []

            __all__ = ["block_pairs"]
            """,
            rule_ids=["RL601"],
        )
        assert result.findings == []

    def test_dynamic_all_skipped(self, lint_file):
        result = lint_file(
            "src/repro/er/__init__.py",
            """
            names = ["a", "b"]
            __all__ = sorted(names)
            """,
            rule_ids=["RL601"],
        )
        assert result.findings == []


class TestPackageDefinesAll:
    def test_missing_all_flagged(self, lint_file):
        result = lint_file(
            "src/repro/er/__init__.py",
            """
            from repro.er.blocking import block_pairs
            """,
            rule_ids=["RL602"],
        )
        assert rule_ids(result) == {"RL602"}

    def test_all_present_ok(self, lint_file):
        result = lint_file(
            "src/repro/er/__init__.py",
            """
            from repro.er.blocking import block_pairs

            __all__ = ["block_pairs"]
            """,
            rule_ids=["RL602"],
        )
        assert result.findings == []

    def test_plain_module_not_required(self, lint_file):
        result = lint_file(
            "src/repro/er/blocking.py",
            """
            def block_pairs(rows):
                return []
            """,
            rule_ids=["RL602"],
        )
        assert result.findings == []
