"""Project graph, incremental cache, and parallel-phase contracts.

The engine's whole-program promises are behavioural, not structural:
warm runs must reproduce cold findings byte for byte, ``--jobs`` must be
invisible in the output, and the module/call graph must resolve the
repo's idioms (package ``__init__``, relative imports, ``self.``
methods, constructor-typed locals) without inventing edges.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint.engine import DEFAULT_CACHE_NAME, collect_files, lint_paths
from repro.lint.project import ProjectContext, module_name_for, summarize_module
from repro.lint.report import render_json

import ast


def _summaries(files):
    out = {}
    for display, source in files.items():
        tree = ast.parse(textwrap.dedent(source))
        out[display] = summarize_module(tree, display)
    return out


class TestModuleNaming:
    def test_src_layout_stripped(self):
        assert module_name_for("src/repro/er/train.py") == "repro.er.train"

    def test_package_init_is_the_package(self):
        assert module_name_for("src/repro/faults/__init__.py") == "repro.faults"

    def test_benchmarks_keep_their_root(self):
        assert module_name_for("benchmarks/bench_foo.py") == "benchmarks.bench_foo"


class TestCallResolution:
    def test_cross_module_import_edge(self):
        project = ProjectContext(_summaries({
            "src/repro/a.py": """
                def helper():
                    return 1
            """,
            "src/repro/b.py": """
                from repro.a import helper

                def caller():
                    return helper()
            """,
        }))
        edges = project.edges["repro.b::caller"]
        assert [e.callee for e in edges] == ["repro.a::helper"]

    def test_self_method_edge(self):
        project = ProjectContext(_summaries({
            "src/repro/a.py": """
                class C:
                    def low(self):
                        return 1

                    def high(self):
                        return self.low()
            """,
        }))
        edges = project.edges["repro.a::C.high"]
        assert [e.callee for e in edges] == ["repro.a::C.low"]

    def test_constructor_typed_local_method_edge(self):
        project = ProjectContext(_summaries({
            "src/repro/a.py": """
                class C:
                    def low(self):
                        return 1

                def use():
                    c = C()
                    return c.low()
            """,
        }))
        callees = {e.callee for e in project.edges["repro.a::use"]}
        assert "repro.a::C.low" in callees

    def test_unresolved_calls_make_no_edges(self):
        project = ProjectContext(_summaries({
            "src/repro/a.py": """
                def use(thing):
                    return thing.whatever()
            """,
        }))
        assert project.edges.get("repro.a::use", []) == []


class TestCollectFilesOrdering:
    def test_posix_sorted_regardless_of_input_order(self, tmp_path):
        for rel in ("pkg/zeta.py", "pkg/alpha.py", "pkg/sub/mid.py", "top.py"):
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("x = 1\n")
        forward = collect_files([tmp_path])
        scrambled = collect_files(
            [tmp_path / "top.py", tmp_path / "pkg", tmp_path])
        as_posix = [p.as_posix() for p in forward]
        assert as_posix == sorted(as_posix)
        assert [p.resolve() for p in scrambled] == [p.resolve() for p in forward]

    def test_deduplicates_overlapping_inputs(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        assert len(collect_files([tmp_path, path, path])) == 1


@pytest.fixture
def tree(tmp_path):
    files = {
        "src/repro/utils/helper.py": """
            import numpy as np

            def make_rng(seed=None):
                return np.random.default_rng(seed)
        """,
        "src/repro/er/uses.py": """
            import time

            from repro.utils.helper import make_rng

            def launder():
                return make_rng(time.time())
        """,
        "src/repro/er/clean.py": """
            def double(x):
                return 2 * x
        """,
    }
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def _findings_json(result):
    return json.loads(render_json(result))["findings"]


class TestIncrementalCache:
    def test_warm_run_reuses_everything_and_matches_cold(self, tree):
        cache = tree / DEFAULT_CACHE_NAME
        cold = lint_paths([tree], root=tree, cache_path=cache)
        assert cold.files_reused == 0
        assert cache.is_file()
        warm = lint_paths([tree], root=tree, cache_path=cache)
        assert warm.files_reused == warm.files_checked == cold.files_checked
        assert _findings_json(warm) == _findings_json(cold)

    def test_jobs_do_not_change_findings(self, tree):
        serial = lint_paths([tree], root=tree)
        fanned = lint_paths([tree], root=tree, jobs=4)
        assert _findings_json(serial) == _findings_json(fanned)

    def test_edited_file_invalidates_only_itself(self, tree):
        cache = tree / DEFAULT_CACHE_NAME
        lint_paths([tree], root=tree, cache_path=cache)
        target = tree / "src/repro/er/clean.py"
        target.write_text(target.read_text() + "\n\ny = double(3)\n")
        warm = lint_paths([tree], root=tree, cache_path=cache)
        assert warm.files_checked == 3
        assert warm.files_reused == 2

    def test_cross_file_violation_survives_warm_runs(self, tree):
        # The RL1102 finding needs the cross-module call graph; a fully
        # cache-served run must still rebuild it from the summaries.
        cache = tree / DEFAULT_CACHE_NAME
        cold = lint_paths([tree], root=tree, rule_ids=["RL1102"], cache_path=cache)
        warm = lint_paths([tree], root=tree, rule_ids=["RL1102"], cache_path=cache)
        assert warm.files_reused == warm.files_checked
        assert [f.rule_id for f in cold.findings] == ["RL1102"]
        assert _findings_json(warm) == _findings_json(cold)

    def test_corrupt_cache_degrades_to_cold(self, tree):
        cache = tree / DEFAULT_CACHE_NAME
        cold = lint_paths([tree], root=tree, cache_path=cache)
        cache.write_text("{ not json")
        rebuilt = lint_paths([tree], root=tree, cache_path=cache)
        assert rebuilt.files_reused == 0
        assert _findings_json(rebuilt) == _findings_json(cold)

    def test_changed_only_reports_only_edited_files(self, tree):
        cache = tree / DEFAULT_CACHE_NAME
        lint_paths([tree], root=tree, cache_path=cache)
        target = tree / "src/repro/er/clean.py"
        target.write_text("import random\n")
        changed = lint_paths(
            [tree], root=tree, cache_path=cache, changed_only=True,
            rule_ids=["RL302"],
        )
        assert {f.path for f in changed.findings} == {"src/repro/er/clean.py"}

    def test_no_cache_path_never_writes(self, tree):
        lint_paths([tree], root=tree)
        assert not (tree / DEFAULT_CACHE_NAME).exists()
