"""RL11xx: whole-program interprocedural rules over the project call graph.

Each test writes a small synthetic package tree (mimicking the repo
layout, since the rules are path-scoped) seeded with one cross-file
violation the per-file families cannot see: a helper-laundered seed, a
cross-module serve mutation, a typo'd fault site, a ``time.time``-tainted
bench row.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.engine import lint_paths
from tests.lint.conftest import rule_ids


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` under a temp root and lint the tree."""

    def _lint(files, rule_ids=None):
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return lint_paths([tmp_path], root=tmp_path, rule_ids=rule_ids)

    return _lint


def messages(result):
    return [f.message for f in result.findings]


class TestDeterminismTaint:
    """RL1101: nondet sources must not reach bench rows / span meta / serve."""

    STAMP = """
        import time

        def wall_stamp():
            return time.time()

        def duration():
            return time.perf_counter()
    """

    def test_time_tainted_bench_row(self, lint_tree):
        result = lint_tree({
            "src/repro/obs/stamp.py": self.STAMP,
            "benchmarks/bench_foo.py": """
                from repro.obs.stamp import wall_stamp

                def run_experiment(profile="smoke"):
                    return [{"t": wall_stamp()}]
            """,
        }, rule_ids=["RL1101"])
        (finding,) = result.findings
        assert finding.path == "benchmarks/bench_foo.py"
        assert "bench rows (run_experiment)" in finding.message
        assert (
            "benchmarks.bench_foo.run_experiment -> "
            "repro.obs.stamp.wall_stamp -> time.time()" in finding.message
        )

    def test_perf_counter_is_exempt(self, lint_tree):
        result = lint_tree({
            "src/repro/obs/stamp.py": self.STAMP,
            "benchmarks/bench_foo.py": """
                from repro.obs.stamp import duration

                def run_experiment(profile="smoke"):
                    return [{"elapsed": duration()}]
            """,
        }, rule_ids=["RL1101"])
        assert rule_ids(result) == set()

    def test_serve_layer_is_a_sink(self, lint_tree):
        result = lint_tree({
            "src/repro/obs/stamp.py": self.STAMP,
            "src/repro/serve/api.py": """
                from repro.obs.stamp import wall_stamp

                def handle(batch):
                    return {"ts": wall_stamp(), "n": len(batch)}
            """,
        }, rule_ids=["RL1101"])
        (finding,) = result.findings
        assert finding.path == "src/repro/serve/api.py"
        assert "the serving layer" in finding.message

    def test_span_meta_writer_is_a_sink(self, lint_tree):
        result = lint_tree({
            "src/repro/obs/tracer.py": """
                import uuid

                def traced(span):
                    span.meta["trace_id"] = str(uuid.uuid4())
            """,
        }, rule_ids=["RL1101"])
        (finding,) = result.findings
        assert "span meta" in finding.message
        assert "uuid.uuid4()" in finding.message

    def test_set_iteration_flagged_in_serve(self, lint_tree):
        result = lint_tree({
            "src/repro/serve/api.py": """
                def handle(ids):
                    return [i for i in set(ids)]
            """,
        }, rule_ids=["RL1101"])
        (finding,) = result.findings
        assert "set iteration" in finding.message

    def test_nondet_outside_any_sink_is_silent(self, lint_tree):
        result = lint_tree({
            "src/repro/obs/stamp.py": self.STAMP,
            "src/repro/er/train.py": """
                from repro.obs.stamp import wall_stamp

                def log_started():
                    return wall_stamp()
            """,
        }, rule_ids=["RL1101"])
        assert rule_ids(result) == set()


class TestSeedFlow:
    """RL1102: helper-laundered seeds are flagged at the call site."""

    HELPER = """
        import numpy as np

        def make_rng(seed=None):
            return np.random.default_rng(seed)
    """

    def test_helper_laundered_clock_seed(self, lint_tree):
        result = lint_tree({
            "src/repro/utils/helper.py": self.HELPER,
            "src/repro/er/uses.py": """
                import time

                from repro.utils.helper import make_rng

                def launder():
                    return make_rng(time.time())
            """,
        }, rule_ids=["RL1102"])
        (finding,) = result.findings
        assert finding.path == "src/repro/er/uses.py"
        assert "passes time.time() as seed argument 'seed'" in finding.message
        assert "laundering nondeterminism into the default_rng()" in finding.message
        assert "src/repro/utils/helper.py" in finding.message

    def test_silent_omission_through_none_default(self, lint_tree):
        result = lint_tree({
            "src/repro/utils/helper.py": self.HELPER,
            "src/repro/er/uses.py": """
                from repro.utils.helper import make_rng

                def omit():
                    return make_rng()
            """,
        }, rule_ids=["RL1102"])
        (finding,) = result.findings
        assert "omits seed argument 'seed'" in finding.message
        assert "None default launders an unseeded default_rng()" in finding.message

    def test_two_hop_laundering_chain(self, lint_tree):
        result = lint_tree({
            "src/repro/utils/helper.py": self.HELPER,
            "src/repro/er/uses.py": """
                import time

                from repro.utils.helper import make_rng

                def chained(s=None):
                    return make_rng(s)

                def deep():
                    return chained(time.time())
            """,
        }, rule_ids=["RL1102"])
        (finding,) = result.findings
        assert "call to repro.er.uses.chained() passes time.time()" in finding.message

    def test_explicit_seed_is_clean(self, lint_tree):
        result = lint_tree({
            "src/repro/utils/helper.py": self.HELPER,
            "src/repro/er/uses.py": """
                from repro.utils.helper import make_rng

                def explicit():
                    return make_rng(1234)
            """,
        }, rule_ids=["RL1102"])
        assert rule_ids(result) == set()

    def test_direct_unseeded_construction(self, lint_tree):
        result = lint_tree({
            "src/repro/er/uses.py": """
                import numpy as np

                def fresh():
                    return np.random.default_rng()
            """,
        }, rule_ids=["RL1102"])
        (finding,) = result.findings
        assert "unseeded default_rng() in repro.er.uses.fresh" in finding.message


class TestFaultSiteCoherence:
    """RL1103: inject() strings and the declared catalog must agree."""

    TREE = {
        "src/repro/faults/sites.py": """
            RETRY_SITES = {
                "er.blocking.lsh": "blocker band matching",
                "pipeline.step.*": "per-step pattern",
            }

            LATENCY_ONLY_SITES = {
                "weak.vote": "never wired anywhere",
            }

            CORRUPT_SITES = ("er.blocking.lsh", "serve.rogue")
        """,
        "src/repro/er/blocking.py": """
            from repro.faults import inject

            def candidates(plan):
                inject("er.blocking.lshh")
                inject("er.blocking.lsh")
                inject("pipeline.step.clean")
        """,
    }

    def test_typo_dead_site_and_subset_violation(self, lint_tree):
        result = lint_tree(dict(self.TREE), rule_ids=["RL1103"])
        found = messages(result)
        assert len(found) == 3
        typo = next(f for f in result.findings if "er.blocking.lshh" in f.message)
        assert typo.path == "src/repro/er/blocking.py"
        assert typo.severity == "error"
        assert "not declared" in typo.message
        rogue = next(f for f in result.findings if "serve.rogue" in f.message)
        assert rogue.path == "src/repro/faults/sites.py"
        assert "CORRUPT_SITES" in rogue.message
        dead = next(f for f in result.findings if "weak.vote" in f.message)
        assert dead.severity == "warning"
        assert "no inject()/site= reference" in dead.message

    def test_dead_site_warning_does_not_fail_the_gate(self, lint_tree):
        tree = {
            "src/repro/faults/sites.py": self.TREE["src/repro/faults/sites.py"]
            .replace('CORRUPT_SITES = ("er.blocking.lsh", "serve.rogue")',
                     'CORRUPT_SITES = ("er.blocking.lsh",)'),
            "src/repro/er/blocking.py": """
                from repro.faults import inject

                def candidates(plan):
                    inject("er.blocking.lsh")
                    inject("pipeline.step.clean")
            """,
        }
        result = lint_tree(tree, rule_ids=["RL1103"])
        assert [f.severity for f in result.findings] == ["warning"]
        assert result.new_warnings and not result.new_errors
        assert result.ok

    def test_site_kwarg_usage_counts(self, lint_tree):
        tree = dict(self.TREE)
        tree["src/repro/er/blocking.py"] = """
            from repro.faults import inject, inject_result

            def candidates(plan, rows):
                inject("er.blocking.lsh")
                inject("pipeline.step.clean")
                return inject_result(rows, site="weak.vote")
        """
        result = lint_tree(tree, rule_ids=["RL1103"])
        found = messages(result)
        assert not any("weak.vote" in m for m in found)

    def test_gateway_style_retry_kwargs_satisfy_the_catalog(self, lint_tree):
        # The gateway declares three sites and references every one of
        # them via ``retry_call(..., site=...)`` — the kwarg form must
        # count as a reference (no dead-site warning) and the corrupt
        # subset must accept the two pure sites.
        result = lint_tree({
            "src/repro/faults/sites.py": """
                RETRY_SITES = {
                    "gateway.admit": "token-bucket preview",
                    "gateway.route": "route-table lookup",
                    "gateway.dispatch": "router group execution",
                }

                LATENCY_ONLY_SITES = {}

                CORRUPT_SITES = ("gateway.admit", "gateway.route")
            """,
            "src/repro/gateway/api.py": """
                from repro.faults.retry import retry_call

                def admit(bucket, now):
                    return retry_call(bucket.preview, now, site="gateway.admit")

                def dispatch(gateway, group):
                    router = retry_call(
                        gateway.resolve, group.route, site="gateway.route"
                    )
                    return retry_call(
                        router.handle_group, group.requests,
                        site="gateway.dispatch",
                    )
            """,
        }, rule_ids=["RL1103"])
        assert messages(result) == []

    def test_tree_without_catalog_is_silent(self, lint_tree):
        result = lint_tree({
            "src/repro/er/blocking.py": """
                from repro.faults import inject

                def candidates(plan):
                    inject("whatever.site")
            """,
        }, rule_ids=["RL1103"])
        assert rule_ids(result) == set()


class TestServePurityClosure:
    """RL1104: the serve call-graph closure must stay inference-only."""

    TRAINER = """
        def refresh(model, pairs):
            model.fit(pairs)
            return model
    """

    def test_cross_module_fit_flagged_where_rl901_is_blind(self, lint_tree):
        result = lint_tree({
            "src/repro/er/trainer.py": self.TRAINER,
            "src/repro/serve/service.py": """
                from repro.er.trainer import refresh

                def handle(model, pairs):
                    return refresh(model, pairs)
            """,
        }, rule_ids=["RL901", "RL1104"])
        assert rule_ids(result) == {"RL1104"}
        (finding,) = result.findings
        assert finding.path == "src/repro/serve/service.py"
        assert (
            "repro.serve.service.handle -> repro.er.trainer.refresh"
            in finding.message
        )
        assert ".fit() call" in finding.message

    def test_in_package_mutation_stays_rl901s(self, lint_tree):
        result = lint_tree({
            "src/repro/serve/service.py": """
                def retrain(model, pairs):
                    model.fit(pairs)
            """,
        }, rule_ids=["RL901", "RL1104"])
        assert rule_ids(result) == {"RL901"}

    def test_pure_closure_is_clean(self, lint_tree):
        result = lint_tree({
            "src/repro/er/scorer.py": """
                def score(model, pairs):
                    return model.predict(pairs)
            """,
            "src/repro/serve/service.py": """
                from repro.er.scorer import score

                def handle(model, pairs):
                    return score(model, pairs)
            """,
        }, rule_ids=["RL1104"])
        assert rule_ids(result) == set()

    def test_transitive_data_write_flagged(self, lint_tree):
        result = lint_tree({
            "src/repro/nn/update.py": """
                def nudge(param, delta):
                    param.data = param.data + delta
            """,
            "src/repro/er/adjust.py": """
                from repro.nn.update import nudge

                def calibrate(model, delta):
                    nudge(model.bias, delta)
            """,
            "src/repro/serve/service.py": """
                from repro.er.adjust import calibrate

                def handle(model, delta):
                    calibrate(model, delta)
            """,
        }, rule_ids=["RL1104"])
        (finding,) = result.findings
        assert ".data write" in finding.message
        assert (
            "repro.serve.service.handle -> repro.er.adjust.calibrate -> "
            "repro.nn.update.nudge" in finding.message
        )
