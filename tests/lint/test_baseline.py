"""Baseline round-trip, stale detection, and justification preservation."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import Finding


def _finding(rule="RL301", path="src/repro/weak/sampler.py", line=4,
             message="np.random.rand() uses the legacy global RandomState"):
    return Finding(rule_id=rule, path=path, line=line, col=1, message=message)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        target = tmp_path / "lint-baseline.json"
        findings = [_finding(), _finding(rule="RL302", message="stdlib random imported")]
        write_baseline(findings, target)
        loaded = load_baseline(target)
        assert len(loaded.entries) == 2
        assert {e.rule for e in loaded.entries} == {"RL301", "RL302"}
        assert all(e.justification == "TODO: justify this exception" for e in loaded.entries)

    def test_rewrite_preserves_justifications(self, tmp_path):
        target = tmp_path / "lint-baseline.json"
        finding = _finding()
        first = write_baseline([finding], target)
        # Simulate a human editing the TODO into a real justification.
        document = json.loads(target.read_text())
        document["findings"][0]["justification"] = "legacy sampler, tracked in #42"
        target.write_text(json.dumps(document))
        rewritten = write_baseline([finding], target, previous=load_baseline(target))
        assert rewritten.entries[0].justification == "legacy sampler, tracked in #42"
        assert first.entries[0].justification == "TODO: justify this exception"

    def test_load_rejects_bad_version(self, tmp_path):
        target = tmp_path / "lint-baseline.json"
        target.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(target)

    def test_load_rejects_missing_keys(self, tmp_path):
        target = tmp_path / "lint-baseline.json"
        target.write_text(json.dumps({"version": 1, "findings": [{"rule": "RL301"}]}))
        with pytest.raises(ValueError):
            load_baseline(target)


class TestApplyBaseline:
    def test_matching_finding_marked_baselined(self):
        finding = _finding()
        baseline = Baseline(entries=[BaselineEntry(
            rule=finding.rule_id, path=finding.path, message=finding.message)])
        marked, stale = apply_baseline([finding], baseline)
        assert marked[0].baselined
        assert stale == []

    def test_line_number_drift_still_matches(self):
        # Fingerprints are line-insensitive: editing unrelated code above a
        # grandfathered finding must not invalidate the baseline.
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL301", path="src/repro/weak/sampler.py",
            message="np.random.rand() uses the legacy global RandomState")])
        marked, stale = apply_baseline([_finding(line=200)], baseline)
        assert marked[0].baselined
        assert stale == []

    def test_multiplicity_budget(self):
        # Two identical findings, one baseline entry: only one is covered.
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL301", path="src/repro/weak/sampler.py",
            message="np.random.rand() uses the legacy global RandomState")])
        marked, stale = apply_baseline([_finding(line=4), _finding(line=9)], baseline)
        assert [f.baselined for f in marked] == [True, False]
        assert stale == []

    def test_stale_entry_reported(self):
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL999", path="src/gone.py", message="was fixed")])
        marked, stale = apply_baseline([], baseline)
        assert marked == []
        assert len(stale) == 1
        assert stale[0].rule == "RL999"

    def test_no_baseline_passthrough(self):
        finding = _finding()
        marked, stale = apply_baseline([finding], None)
        assert marked == [finding]
        assert not marked[0].baselined
        assert stale == []


class TestEngineIntegration:
    def test_baselined_result_is_ok(self, lint_file, tmp_path):
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL302", path="src/repro/weak/sampler.py",
            message="stdlib 'random' imported; use seeded "
                    "np.random.default_rng(...) Generators")])
        result = lint_file(
            "src/repro/weak/sampler.py",
            "import random\n",
            rule_ids=["RL302"],
            baseline=baseline,
        )
        assert len(result.findings) == 1
        assert result.findings[0].baselined
        assert result.ok

    def test_stale_entry_makes_result_dirty(self, lint_file):
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL302", path="src/repro/weak/sampler.py", message="not there")])
        result = lint_file(
            "src/repro/weak/sampler.py",
            "import numpy as np\n",
            rule_ids=["RL302"],
            baseline=baseline,
        )
        assert result.findings == []
        assert result.stale_baseline
        assert not result.ok
