"""RL501 (profile hooks) and RL502 (run_all registration)."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

RUN_ALL = (
    "benchmarks/run_all.py",
    """
    EXPERIMENTS = {
        "e1": ("bench_e1_thing", "E1: thing"),
    }
    """,
)

GOOD_BENCH = """
    _P = {
        "full": dict(epochs=50),
        "smoke": dict(epochs=2),
    }

    def run_experiment(profile="full"):
        cfg = profile_config(_P, profile)
        return [{"metric": cfg["epochs"]}]
    """


class TestBenchProfileContract:
    def test_complete_bench_ok(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e1_thing.py", GOOD_BENCH,
            rule_ids=["RL501"], extra_files=[RUN_ALL],
        )
        assert result.findings == []

    def test_empty_module_single_combined_finding(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e9_stub.py",
            """
            def helper():
                return 1
            """,
            rule_ids=["RL501"],
        )
        assert [f.rule_id for f in result.findings] == ["RL501"]
        assert "neither" in result.findings[0].message

    def test_missing_profile_parameter_flagged(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e1_thing.py",
            """
            _P = {"full": {}, "smoke": {}}

            def run_experiment():
                return [dict(_P["full"])]
            """,
            rule_ids=["RL501"],
        )
        assert rule_ids(result) == {"RL501"}
        assert any("'profile' parameter" in f.message for f in result.findings)

    def test_profile_without_default_flagged(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e1_thing.py",
            """
            _P = {"full": {}, "smoke": {}}

            def run_experiment(profile):
                return [dict(_P[profile])]
            """,
            rule_ids=["RL501"],
        )
        assert rule_ids(result) == {"RL501"}
        assert any("default" in f.message for f in result.findings)

    def test_missing_smoke_profile_flagged(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e1_thing.py",
            """
            _P = {"full": {"epochs": 50}}

            def run_experiment(profile="full"):
                return [dict(_P[profile])]
            """,
            rule_ids=["RL501"],
        )
        assert rule_ids(result) == {"RL501"}
        assert any("smoke" in f.message for f in result.findings)

    def test_dead_profile_knob_flagged(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e1_thing.py",
            """
            _P = {"full": {}, "smoke": {}}

            def run_experiment(profile="full"):
                return [{"metric": 1.0}]
            """,
            rule_ids=["RL501"],
        )
        assert rule_ids(result) == {"RL501"}
        assert any("dead" in f.message for f in result.findings)

    def test_non_bench_files_ignored(self, lint_file):
        result = lint_file(
            "benchmarks/common.py",
            "def helper():\n    return 1\n",
            rule_ids=["RL501"],
        )
        assert result.findings == []


class TestBenchRegistered:
    def test_registered_module_ok(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e1_thing.py", GOOD_BENCH,
            rule_ids=["RL502"], extra_files=[RUN_ALL],
        )
        assert result.findings == []

    def test_unregistered_module_flagged(self, lint_file):
        result = lint_file(
            "benchmarks/bench_e2_other.py", GOOD_BENCH,
            rule_ids=["RL502"], extra_files=[RUN_ALL],
        )
        assert rule_ids(result) == {"RL502"}
        assert "bench_e2_other" in result.findings[0].message

    def test_no_run_all_sibling_ok(self, lint_file):
        # Without a run_all.py next to the bench there is no registry to check.
        result = lint_file(
            "benchmarks/bench_e1_thing.py", GOOD_BENCH, rule_ids=["RL502"],
        )
        assert result.findings == []
