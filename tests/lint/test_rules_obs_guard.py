"""RL401: metrics instrument calls must sit behind the enabled check."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

NN_PATH = "src/repro/nn/hot.py"


class TestObsHotPathGuard:
    def test_unguarded_call_flagged(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def step(self):
                _OBS.counter("optim.steps").inc()
                self._step()
            """,
            rule_ids=["RL401"],
        )
        assert rule_ids(result) == {"RL401"}
        assert "_OBS.counter()" in result.findings[0].message

    def test_direct_guard_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def step(self):
                if _OBS.enabled:
                    _OBS.counter("optim.steps").inc()
                self._step()
            """,
            rule_ids=["RL401"],
        )
        assert result.findings == []

    def test_guard_variable_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def fit(self, epochs):
                observing = _OBS.enabled
                for epoch in range(epochs):
                    if observing:
                        _OBS.counter("train.epochs").inc()
            """,
            rule_ids=["RL401"],
        )
        assert result.findings == []

    def test_early_return_guard_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def record(self, value):
                if not _OBS.enabled:
                    return
                _OBS.histogram("train.value").observe(value)
            """,
            rule_ids=["RL401"],
        )
        assert result.findings == []

    def test_short_circuit_and_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def record(self, value):
                _OBS.enabled and _OBS.gauge("v").set(value)
            """,
            rule_ids=["RL401"],
        )
        assert result.findings == []

    def test_negated_guard_body_flagged(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def record(self, value):
                if not _OBS.enabled:
                    _OBS.counter("backwards").inc()
            """,
            rule_ids=["RL401"],
        )
        assert rule_ids(result) == {"RL401"}

    def test_nested_def_does_not_inherit_guard(self, lint_file):
        # The closure may run long after the guard was evaluated.
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def fit(self):
                if _OBS.enabled:
                    def hook():
                        _OBS.counter("late").inc()
                    self.register(hook)
            """,
            rule_ids=["RL401"],
        )
        assert rule_ids(result) == {"RL401"}

    def test_lifecycle_calls_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def finish(self):
                snapshot = _OBS.snapshot()
                _OBS.reset()
                return snapshot
            """,
            rule_ids=["RL401"],
        )
        assert result.findings == []

    def test_outside_hot_packages_ok(self, lint_file):
        result = lint_file(
            "src/repro/cleaning/impute.py",
            """
            from repro.obs.metrics import REGISTRY as _OBS
            def run(self):
                _OBS.counter("cleaning.runs").inc()
            """,
            rule_ids=["RL401"],
        )
        assert result.findings == []
