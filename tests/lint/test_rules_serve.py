"""RL901: read-only inference contract under repro/serve/."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

SERVE_PATH = "src/repro/serve/service.py"


class TestTrainingCalls:
    def test_fit_call_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def refresh(matcher, pairs):
                matcher.fit(pairs)
        """, rule_ids=["RL901"])
        assert rule_ids(result) == {"RL901"}

    def test_backward_call_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def probe(loss):
                loss.backward()
        """, rule_ids=["RL901"])
        assert rule_ids(result) == {"RL901"}

    def test_optimizer_step_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def tune(optimizer):
                optimizer.step()
        """, rule_ids=["RL901"])
        assert rule_ids(result) == {"RL901"}

    def test_plain_step_allowed(self, lint_file):
        # A simulator's own `step` is not an optimizer step.
        result = lint_file(SERVE_PATH, """
            def drain(loop):
                loop.step()
        """, rule_ids=["RL901"])
        assert rule_ids(result) == set()

    def test_any_step_flagged_once_optim_imported(self, lint_file):
        result = lint_file(SERVE_PATH, """
            from repro.nn.optim import SGD

            def tune(s):
                s.step()
        """, rule_ids=["RL901"])
        # Both the import and the now-suspicious step are findings.
        assert len(result.findings) == 2
        assert rule_ids(result) == {"RL901"}

    def test_optim_import_flagged(self, lint_file):
        for snippet in (
            "import repro.nn.optim\n",
            "from repro.nn import optim\n",
        ):
            result = lint_file(SERVE_PATH, snippet, rule_ids=["RL901"])
            assert rule_ids(result) == {"RL901"}


class TestDataWrites:
    def test_data_rebinding_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def clamp(param, array):
                param.data = array
        """, rule_ids=["RL901"])
        assert rule_ids(result) == {"RL901"}

    def test_data_augassign_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def nudge(param, gradient):
                param.data += gradient
        """, rule_ids=["RL901"])
        assert rule_ids(result) == {"RL901"}

    def test_data_slice_assign_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def zero(param):
                param.data[:] = 0.0
        """, rule_ids=["RL901"])
        assert rule_ids(result) == {"RL901"}

    def test_data_inplace_method_flagged(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def wipe(param):
                param.data.fill(0.0)
        """, rule_ids=["RL901"])
        assert rule_ids(result) == {"RL901"}

    def test_data_read_allowed(self, lint_file):
        result = lint_file(SERVE_PATH, """
            import hashlib

            def fingerprint(params):
                digest = hashlib.sha1()
                for param in params:
                    digest.update(param.data.tobytes())
                return digest.hexdigest()
        """, rule_ids=["RL901"])
        assert rule_ids(result) == set()


class TestScoping:
    def test_inference_only_code_clean(self, lint_file):
        result = lint_file(SERVE_PATH, """
            def answer(matcher, pairs):
                matcher.classifier.eval()
                return matcher.predict_proba(pairs)
        """, rule_ids=["RL901"])
        assert rule_ids(result) == set()

    def test_rule_silent_outside_serve(self, lint_file):
        result = lint_file("src/repro/er/retrain.py", """
            def retrain(matcher, pairs, optimizer):
                matcher.fit(pairs)
                optimizer.step()
        """, rule_ids=["RL901"])
        assert rule_ids(result) == set()

    def test_real_serve_package_is_clean(self):
        from pathlib import Path

        from repro.lint.engine import lint_paths
        import repro.serve

        package_dir = Path(repro.serve.__file__).parent
        repo_src = package_dir.parent.parent.parent
        result = lint_paths([package_dir], root=repo_src.parent,
                            rule_ids=["RL901"])
        assert result.findings == []
