"""Text and JSON reporter output contracts."""

from __future__ import annotations

import json

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.report import JSON_REPORT_VERSION, render_json, render_text

SRC_PATH = "src/repro/weak/sampler.py"
DIRTY = "import random\n"


class TestTextReport:
    def test_clean_run_says_clean(self, lint_file):
        result = lint_file(SRC_PATH, "import numpy as np\n", rule_ids=["RL302"])
        text = render_text(result)
        assert text.endswith("— clean")
        assert "0 new finding(s)" in text

    def test_finding_rendered_compiler_style(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        text = render_text(result)
        assert f"{SRC_PATH}:1:1: RL302" in text
        assert "1 new finding(s)" in text

    def test_baselined_hidden_by_default(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        baselined = [f.as_baselined() for f in result.findings]
        result.findings = baselined
        assert "RL302" not in render_text(result).splitlines()[0]
        assert "RL302" in render_text(result, verbose_baselined=True)

    def test_stale_entries_listed(self, lint_file):
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL302", path=SRC_PATH, message="not there")])
        result = lint_file(
            SRC_PATH, "import numpy as np\n", rule_ids=["RL302"], baseline=baseline)
        text = render_text(result)
        assert "stale baseline entry: RL302" in text


class TestJsonReport:
    def test_schema(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        document = json.loads(render_json(result))
        assert document["version"] == JSON_REPORT_VERSION
        assert set(document) == {"version", "rules", "findings", "stale_baseline", "summary"}
        assert document["rules"]["RL302"]  # rule id -> human name
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message", "baselined"}
        assert finding["rule"] == "RL302"
        assert finding["path"] == SRC_PATH
        assert finding["baselined"] is False
        summary = document["summary"]
        assert summary == {
            "files_checked": 1,
            "total": 1,
            "new": 1,
            "baselined": 0,
            "stale": 0,
            "ok": False,
        }

    def test_clean_summary_ok_true(self, lint_file):
        result = lint_file(SRC_PATH, "import numpy as np\n", rule_ids=["RL302"])
        summary = json.loads(render_json(result))["summary"]
        assert summary["ok"] is True
        assert summary["total"] == 0

    def test_stale_entries_serialised(self, lint_file):
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL302", path=SRC_PATH, message="not there", justification="old")])
        result = lint_file(
            SRC_PATH, "import numpy as np\n", rule_ids=["RL302"], baseline=baseline)
        document = json.loads(render_json(result))
        assert document["stale_baseline"] == [{
            "rule": "RL302", "path": SRC_PATH,
            "message": "not there", "justification": "old",
        }]
        assert document["summary"]["ok"] is False
