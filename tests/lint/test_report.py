"""Text, JSON, and SARIF reporter output contracts."""

from __future__ import annotations

import json

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.report import (
    JSON_REPORT_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)

SRC_PATH = "src/repro/weak/sampler.py"
DIRTY = "import random\n"


class TestTextReport:
    def test_clean_run_says_clean(self, lint_file):
        result = lint_file(SRC_PATH, "import numpy as np\n", rule_ids=["RL302"])
        text = render_text(result)
        assert text.endswith("— clean")
        assert "0 new finding(s)" in text

    def test_finding_rendered_compiler_style(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        text = render_text(result)
        assert f"{SRC_PATH}:1:1: RL302" in text
        assert "1 new finding(s)" in text

    def test_summary_splits_errors_and_warnings(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        text = render_text(result)
        assert "(1 error(s), 0 warning(s))" in text

    def test_baselined_hidden_by_default(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        baselined = [f.as_baselined() for f in result.findings]
        result.findings = baselined
        assert "RL302" not in render_text(result).splitlines()[0]
        assert "RL302" in render_text(result, verbose_baselined=True)

    def test_stale_entries_listed(self, lint_file):
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL302", path=SRC_PATH, message="not there")])
        result = lint_file(
            SRC_PATH, "import numpy as np\n", rule_ids=["RL302"], baseline=baseline)
        text = render_text(result)
        assert "stale baseline entry: RL302" in text


class TestJsonReport:
    def test_schema(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        document = json.loads(render_json(result))
        assert document["version"] == JSON_REPORT_VERSION
        assert set(document) == {"version", "rules", "findings", "stale_baseline", "summary"}
        assert document["rules"]["RL302"]  # rule id -> human name
        (finding,) = document["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "severity", "baselined",
        }
        assert finding["rule"] == "RL302"
        assert finding["path"] == SRC_PATH
        assert finding["severity"] == "error"
        assert finding["baselined"] is False
        summary = document["summary"]
        assert summary == {
            "files_checked": 1,
            "files_reused": 0,
            "total": 1,
            "new": 1,
            "new_errors": 1,
            "new_warnings": 0,
            "baselined": 0,
            "stale": 0,
            "ok": False,
        }

    def test_clean_summary_ok_true(self, lint_file):
        result = lint_file(SRC_PATH, "import numpy as np\n", rule_ids=["RL302"])
        summary = json.loads(render_json(result))["summary"]
        assert summary["ok"] is True
        assert summary["total"] == 0

    def test_stale_entries_serialised(self, lint_file):
        baseline = Baseline(entries=[BaselineEntry(
            rule="RL302", path=SRC_PATH, message="not there", justification="old")])
        result = lint_file(
            SRC_PATH, "import numpy as np\n", rule_ids=["RL302"], baseline=baseline)
        document = json.loads(render_json(result))
        assert document["stale_baseline"] == [{
            "rule": "RL302", "path": SRC_PATH,
            "message": "not there", "justification": "old",
        }]
        assert document["summary"]["ok"] is False


class TestSarifReport:
    def test_schema_shape(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        document = json.loads(render_sarif(result))
        assert document["version"] == SARIF_VERSION
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        (rule,) = driver["rules"]
        assert rule["id"] == "RL302"
        assert rule["properties"] == {"family": "determinism", "scope": "file"}
        assert rule["fullDescription"]["text"]
        (sarif_result,) = run["results"]
        assert sarif_result["ruleId"] == "RL302"
        assert sarif_result["ruleIndex"] == 0
        assert sarif_result["level"] == "error"
        assert sarif_result["baselineState"] == "new"
        assert sarif_result["message"]["text"]
        (location,) = sarif_result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == SRC_PATH
        assert physical["region"] == {"startLine": 1, "startColumn": 1}

    def test_baselined_maps_to_unchanged(self, lint_file):
        result = lint_file(SRC_PATH, DIRTY, rule_ids=["RL302"])
        result.findings = [f.as_baselined() for f in result.findings]
        (sarif_result,) = json.loads(render_sarif(result))["runs"][0]["results"]
        assert sarif_result["baselineState"] == "unchanged"

    def test_empty_findings_run_is_valid(self, lint_file):
        result = lint_file(SRC_PATH, "import numpy as np\n", rule_ids=["RL302"])
        document = json.loads(render_sarif(result))
        (run,) = document["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"] == []

    def test_rule_inventory_deduplicates_and_indexes(self, lint_file):
        source = "import random\nrandom.random()\n"
        result = lint_file(SRC_PATH, source, rule_ids=["RL302"])
        document = json.loads(render_sarif(result))
        (run,) = document["runs"]
        assert len(run["results"]) >= 1
        assert len(run["tool"]["driver"]["rules"]) == 1
        for sarif_result in run["results"]:
            rule_row = run["tool"]["driver"]["rules"][sarif_result["ruleIndex"]]
            assert rule_row["id"] == sarif_result["ruleId"]
