"""Per-line and per-file suppression comments."""

from __future__ import annotations

from repro.lint.suppress import parse_suppressions

from tests.lint.conftest import rule_ids

SRC_PATH = "src/repro/weak/sampler.py"


class TestParseSuppressions:
    def test_line_directive(self):
        sup = parse_suppressions(
            "import random  # repro-lint: disable=RL302\n"
        )
        assert sup.is_suppressed("RL302", 1)
        assert not sup.is_suppressed("RL301", 1)
        assert not sup.is_suppressed("RL302", 2)

    def test_file_directive(self):
        sup = parse_suppressions(
            "# repro-lint: disable-file=RL301,RL302\nimport random\n"
        )
        assert sup.is_suppressed("RL301", 99)
        assert sup.is_suppressed("RL302", 2)
        assert not sup.is_suppressed("RL303", 2)

    def test_all_keyword(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=all\n")
        assert sup.is_suppressed("RL201", 1)
        assert sup.is_suppressed("RL601", 1)

    def test_plain_comment_ignored(self):
        sup = parse_suppressions("x = 1  # just a comment about lint\n")
        assert not sup.is_suppressed("RL201", 1)

    def test_unparseable_source_falls_back(self):
        # tokenize chokes on this, but the line-scan fallback still works.
        sup = parse_suppressions(
            "def broken(:\n    pass  # repro-lint: disable=RL101\n"
        )
        assert sup.is_suppressed("RL101", 2)


class TestSuppressionEndToEnd:
    def test_line_suppression_silences_finding(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import random  # repro-lint: disable=RL302
            """,
            rule_ids=["RL302"],
        )
        assert result.findings == []

    def test_file_suppression_silences_all_occurrences(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            # repro-lint: disable-file=RL301
            import numpy as np

            def a(n):
                return np.random.rand(n)

            def b(n):
                return np.random.randn(n)
            """,
            rule_ids=["RL301"],
        )
        assert result.findings == []

    def test_suppression_is_rule_specific(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import random  # repro-lint: disable=RL301
            """,
            rule_ids=["RL302"],
        )
        assert rule_ids(result) == {"RL302"}
