"""Shared helpers for the lint test suite.

Rules are path-scoped (e.g. the autograd rules only fire under
``repro/nn/``), so the ``lint_file`` fixture writes each snippet into a
synthetic tree that mimics the repo layout before running the engine.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.engine import lint_paths


@pytest.fixture
def lint_file(tmp_path):
    """Write ``source`` at ``relpath`` under a temp root and lint it."""

    def _lint(relpath, source, rule_ids=None, baseline=None, extra_files=()):
        for extra_relpath, extra_source in extra_files:
            extra = tmp_path / extra_relpath
            extra.parent.mkdir(parents=True, exist_ok=True)
            extra.write_text(textwrap.dedent(extra_source))
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_paths(
            [path], baseline=baseline, root=tmp_path, rule_ids=rule_ids
        )

    return _lint


def rule_ids(result):
    """The set of rule ids present in a result's findings."""
    return {finding.rule_id for finding in result.findings}
