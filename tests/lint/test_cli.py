"""CLI exit codes, report formats, rule listing, cache flags, --write-baseline."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint.cli import main

DIRTY = "import random\n"
CLEAN = "import numpy as np\n"


@pytest.fixture
def project(tmp_path):
    """A minimal lintable tree; returns (root, write) for adding files."""

    def write(relpath, source):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    return tmp_path, write


class TestExitCodes:
    def test_clean_exits_zero(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 0
        assert "— clean" in capsys.readouterr().out

    def test_findings_exit_one(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 1
        assert "RL302" in capsys.readouterr().out

    def test_no_python_files_exit_two(self, project, capsys):
        root, write = project
        write("src/notes.txt", "nothing here")
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 2
        assert "no python files" in capsys.readouterr().err

    def test_no_paths_exit_two(self, capsys):
        assert main([]) == 2
        assert "no paths given" in capsys.readouterr().err

    def test_bad_jobs_exit_two(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        code = main([str(root / "src"), "--root", str(root), "--jobs", "0"])
        assert code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_missing_baseline_file_exit_two(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        code = main([
            str(root / "src"), "--root", str(root),
            "--baseline", str(root / "absent.json"),
        ])
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err


class TestJsonFlag:
    def test_json_report_parses(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        code = main([str(root / "src"), "--root", str(root), "--json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["new"] == 1
        assert document["findings"][0]["rule"] == "RL302"


class TestFormatFlag:
    def test_sarif_report_parses(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        code = main([
            str(root / "src"), "--root", str(root), "--format", "sarif",
        ])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["results"][0]["ruleId"] == "RL302"

    def test_format_json_matches_json_alias(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        args = [str(root / "src"), "--root", str(root), "--no-cache"]
        main(args + ["--format", "json"])
        via_format = capsys.readouterr().out
        main(args + ["--json"])
        assert capsys.readouterr().out == via_format


class TestRulesListing:
    def test_bare_rules_prints_registry_table(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        for column in ("id", "family", "scope", "severity", "doc"):
            assert column in header
        for rule_id in ("RL101", "RL302", "RL1101", "RL1104"):
            assert rule_id in out
        assert "interproc" in out
        assert "project" in out


class TestCacheFlags:
    def test_warm_run_reuses_cache(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        args = [str(root / "src"), "--root", str(root)]
        assert main(args) == 0
        assert (root / ".lint-cache.json").is_file()
        cold = capsys.readouterr().out
        assert main(args + ["--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["files_reused"] == 1
        assert main(args) == 0
        assert capsys.readouterr().out == cold

    def test_no_cache_writes_nothing(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        assert main([str(root / "src"), "--root", str(root), "--no-cache"]) == 0
        assert not (root / ".lint-cache.json").exists()

    def test_explicit_cache_path(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        cache = root / "elsewhere" / "lint.json"
        cache.parent.mkdir()
        args = [str(root / "src"), "--root", str(root), "--cache", str(cache)]
        assert main(args) == 0
        assert cache.is_file()
        assert not (root / ".lint-cache.json").exists()

    def test_changed_only_skips_unchanged_files(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        args = [str(root / "src"), "--root", str(root), "--no-baseline"]
        assert main(args) == 1
        capsys.readouterr()
        write("src/repro/weak/other.py", DIRTY)
        assert main(args + ["--changed-only"]) == 1
        out = capsys.readouterr().out
        assert "other.py" in out
        assert "sampler.py" not in out


class TestJobsFlag:
    def test_jobs_output_identical(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        write("src/repro/weak/other.py", DIRTY)
        args = [str(root / "src"), "--root", str(root), "--no-cache", "--json"]
        main(args)
        serial = capsys.readouterr().out
        main(args + ["--jobs", "2"])
        assert capsys.readouterr().out == serial


class TestBaselineFlow:
    def test_write_then_gate(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        baseline = root / "lint-baseline.json"

        code = main([
            str(root / "src"), "--root", str(root),
            "--baseline", str(baseline), "--write-baseline",
        ])
        assert code == 0
        assert baseline.is_file()

        # Grandfathered finding no longer fails the gate...
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 0
        capsys.readouterr()

        # ...but a fresh violation still does.
        write("src/repro/weak/other.py", DIRTY)
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 1
        assert "other.py" in capsys.readouterr().out

    def test_default_baseline_discovered_from_root(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        main([
            str(root / "src"), "--root", str(root), "--write-baseline",
        ])
        assert (root / "lint-baseline.json").is_file()
        assert main([str(root / "src"), "--root", str(root)]) == 0

    def test_no_baseline_ignores_default(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        main([str(root / "src"), "--root", str(root), "--write-baseline"])
        assert main([str(root / "src"), "--root", str(root), "--no-baseline"]) == 1

    def test_stale_baseline_fails_gate(self, project, capsys):
        root, write = project
        target = write("src/repro/weak/sampler.py", DIRTY)
        main([str(root / "src"), "--root", str(root), "--write-baseline"])
        target.write_text(CLEAN)  # the violation is fixed; the entry is stale
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestRulesFlag:
    def test_rule_filter(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        assert main([str(root / "src"), "--root", str(root), "--rules", "RL301"]) == 0
        assert main([str(root / "src"), "--root", str(root), "--rules", "RL302"]) == 1
