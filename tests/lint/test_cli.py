"""CLI exit codes, --json output, and --write-baseline."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint.cli import main

DIRTY = "import random\n"
CLEAN = "import numpy as np\n"


@pytest.fixture
def project(tmp_path):
    """A minimal lintable tree; returns (root, write) for adding files."""

    def write(relpath, source):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    return tmp_path, write


class TestExitCodes:
    def test_clean_exits_zero(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 0
        assert "— clean" in capsys.readouterr().out

    def test_findings_exit_one(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 1
        assert "RL302" in capsys.readouterr().out

    def test_no_python_files_exit_two(self, project, capsys):
        root, write = project
        write("src/notes.txt", "nothing here")
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 2
        assert "no python files" in capsys.readouterr().err

    def test_missing_baseline_file_exit_two(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", CLEAN)
        code = main([
            str(root / "src"), "--root", str(root),
            "--baseline", str(root / "absent.json"),
        ])
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err


class TestJsonFlag:
    def test_json_report_parses(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        code = main([str(root / "src"), "--root", str(root), "--json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["new"] == 1
        assert document["findings"][0]["rule"] == "RL302"


class TestBaselineFlow:
    def test_write_then_gate(self, project, capsys):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        baseline = root / "lint-baseline.json"

        code = main([
            str(root / "src"), "--root", str(root),
            "--baseline", str(baseline), "--write-baseline",
        ])
        assert code == 0
        assert baseline.is_file()

        # Grandfathered finding no longer fails the gate...
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 0
        capsys.readouterr()

        # ...but a fresh violation still does.
        write("src/repro/weak/other.py", DIRTY)
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 1
        assert "other.py" in capsys.readouterr().out

    def test_default_baseline_discovered_from_root(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        main([
            str(root / "src"), "--root", str(root), "--write-baseline",
        ])
        assert (root / "lint-baseline.json").is_file()
        assert main([str(root / "src"), "--root", str(root)]) == 0

    def test_no_baseline_ignores_default(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        main([str(root / "src"), "--root", str(root), "--write-baseline"])
        assert main([str(root / "src"), "--root", str(root), "--no-baseline"]) == 1

    def test_stale_baseline_fails_gate(self, project, capsys):
        root, write = project
        target = write("src/repro/weak/sampler.py", DIRTY)
        main([str(root / "src"), "--root", str(root), "--write-baseline"])
        target.write_text(CLEAN)  # the violation is fixed; the entry is stale
        code = main([str(root / "src"), "--root", str(root)])
        assert code == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestRulesFlag:
    def test_rule_filter(self, project):
        root, write = project
        write("src/repro/weak/sampler.py", DIRTY)
        assert main([str(root / "src"), "--root", str(root), "--rules", "RL301"]) == 0
        assert main([str(root / "src"), "--root", str(root), "--rules", "RL302"]) == 1
