"""RL301/RL302/RL303: all randomness flows through seeded Generators."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

SRC_PATH = "src/repro/weak/sampler.py"


class TestLegacyNumpyRandom:
    def test_module_level_call_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """,
            rule_ids=["RL301"],
        )
        assert rule_ids(result) == {"RL301"}
        assert "np.random.rand()" in result.findings[0].message

    def test_global_seed_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import numpy as np

            def setup(seed):
                np.random.seed(seed)
            """,
            rule_ids=["RL301"],
        )
        assert rule_ids(result) == {"RL301"}

    def test_default_rng_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import numpy as np

            def sample(n, seed=0):
                rng = np.random.default_rng(seed)
                return rng.random(n)
            """,
            rule_ids=["RL301"],
        )
        assert result.findings == []

    def test_generator_annotation_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import numpy as np

            def sample(rng: np.random.Generator, n: int):
                return rng.random(n)
            """,
            rule_ids=["RL301"],
        )
        assert result.findings == []


class TestStdlibRandom:
    def test_import_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import random

            def flip():
                return random.random() < 0.5
            """,
            rule_ids=["RL302"],
        )
        assert rule_ids(result) == {"RL302"}

    def test_from_import_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            from random import shuffle
            """,
            rule_ids=["RL302"],
        )
        assert rule_ids(result) == {"RL302"}

    def test_other_imports_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import numpy as np
            from collections import Counter
            """,
            rule_ids=["RL302"],
        )
        assert result.findings == []


class TestTimeSeeded:
    def test_time_seed_positional_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import time
            import numpy as np

            def make_rng():
                return np.random.default_rng(int(time.time()))
            """,
            rule_ids=["RL303"],
        )
        assert rule_ids(result) == {"RL303"}
        assert "time.time()" in result.findings[0].message

    def test_time_seed_keyword_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import time

            def build(model_cls):
                return model_cls(seed=time.time_ns())
            """,
            rule_ids=["RL303"],
        )
        assert rule_ids(result) == {"RL303"}

    def test_constant_seed_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            import numpy as np

            def make_rng(seed=0):
                return np.random.default_rng(seed)
            """,
            rule_ids=["RL303"],
        )
        assert result.findings == []

    def test_timing_use_of_clock_ok(self, lint_file):
        # time.time() for measurement (not seeding) is legitimate.
        result = lint_file(
            SRC_PATH,
            """
            import time

            def timed(fn):
                start = time.time()
                fn()
                return time.time() - start
            """,
            rule_ids=["RL303"],
        )
        assert result.findings == []
