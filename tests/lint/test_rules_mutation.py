"""RL201: in-place mutation of a live Tensor's ``.data``."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

ER_PATH = "src/repro/er/model.py"


class TestInPlaceDataMutation:
    def test_augmented_assign_flagged(self, lint_file):
        result = lint_file(
            ER_PATH,
            """
            def update(param, grad, lr):
                param.data -= lr * grad
            """,
            rule_ids=["RL201"],
        )
        assert rule_ids(result) == {"RL201"}

    def test_slice_assign_flagged(self, lint_file):
        result = lint_file(
            ER_PATH,
            """
            def reset_rows(t, rows):
                t.data[rows] = 0.0
            """,
            rule_ids=["RL201"],
        )
        assert rule_ids(result) == {"RL201"}

    def test_augmented_subscript_flagged(self, lint_file):
        result = lint_file(
            ER_PATH,
            """
            def bump(t, i):
                t.data[i] += 1.0
            """,
            rule_ids=["RL201"],
        )
        assert rule_ids(result) == {"RL201"}

    def test_inplace_ndarray_method_flagged(self, lint_file):
        result = lint_file(
            ER_PATH,
            """
            def clear(t):
                t.data.fill(0.0)
            """,
            rule_ids=["RL201"],
        )
        assert rule_ids(result) == {"RL201"}

    def test_rebinding_ok(self, lint_file):
        result = lint_file(
            ER_PATH,
            """
            def update(param, grad, lr):
                param.data = param.data - lr * grad
            """,
            rule_ids=["RL201"],
        )
        assert result.findings == []

    def test_local_array_mutation_ok(self, lint_file):
        result = lint_file(
            ER_PATH,
            """
            def accumulate(values):
                total = values.copy()
                total += 1.0
                total[0] = 9.0
                return total
            """,
            rule_ids=["RL201"],
        )
        assert result.findings == []

    def test_optimizer_whitelisted(self, lint_file):
        result = lint_file(
            "src/repro/nn/optim.py",
            """
            def fused_step(param, grad, lr):
                param.data -= lr * grad
            """,
            rule_ids=["RL201"],
        )
        assert result.findings == []
