"""RL801: overbroad except handlers in fault-wired code must re-raise."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

SRC_PATH = "src/repro/orchestration/pipeline.py"


class TestFlagged:
    def test_bare_except_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            def run(step):
                try:
                    return step()
                except:
                    return None
            """,
            rule_ids=["RL801"],
        )
        assert rule_ids(result) == {"RL801"}
        assert "bare 'except:'" in result.findings[0].message

    def test_except_exception_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            def run(step):
                try:
                    return step()
                except Exception:
                    return None
            """,
            rule_ids=["RL801"],
        )
        assert rule_ids(result) == {"RL801"}
        assert "'except Exception'" in result.findings[0].message

    def test_base_exception_in_tuple_flagged(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            def run(step):
                try:
                    return step()
                except (KeyError, BaseException) as exc:
                    return exc
            """,
            rule_ids=["RL801"],
        )
        assert rule_ids(result) == {"RL801"}

    def test_other_fault_wired_packages_in_scope(self, lint_file):
        for relpath in ("src/repro/par/pool.py", "src/repro/er/blocking.py"):
            result = lint_file(
                relpath,
                """
                def probe(fn):
                    try:
                        return fn()
                    except Exception:
                        return None
                """,
                rule_ids=["RL801"],
            )
            assert rule_ids(result) == {"RL801"}, relpath


class TestNotFlagged:
    def test_narrow_handler_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            def run(step):
                try:
                    return step()
                except (KeyError, ValueError):
                    return None
            """,
            rule_ids=["RL801"],
        )
        assert result.findings == []

    def test_handler_that_reraises_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            def run(step):
                try:
                    return step()
                except Exception:
                    step.cleanup()
                    raise
            """,
            rule_ids=["RL801"],
        )
        assert result.findings == []

    def test_handler_that_translates_ok(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            def run(step):
                try:
                    return step()
                except BaseException as exc:
                    if recoverable(exc):
                        return None
                    raise RuntimeError("step failed") from exc
            """,
            rule_ids=["RL801"],
        )
        assert result.findings == []

    def test_out_of_scope_path_not_flagged(self, lint_file):
        result = lint_file(
            "src/repro/cleaning/impute.py",
            """
            def probe(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
            rule_ids=["RL801"],
        )
        assert result.findings == []


class TestSuppressions:
    def test_line_suppression(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            def probe(fn):
                try:
                    return fn()
                except Exception:  # repro-lint: disable=RL801
                    return None
            """,
            rule_ids=["RL801"],
        )
        assert result.findings == []

    def test_file_suppression(self, lint_file):
        result = lint_file(
            SRC_PATH,
            """
            # repro-lint: disable-file=RL801
            def probe(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
            rule_ids=["RL801"],
        )
        assert result.findings == []
