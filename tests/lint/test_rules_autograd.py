"""RL101 (backward contract) and RL102 (loop-variable capture)."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

NN_PATH = "src/repro/nn/op.py"


class TestBackwardContract:
    def test_missing_backward_argument_flagged(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def relu(self):
                return self._make(self.data, (self,))
            """,
            rule_ids=["RL101"],
        )
        assert rule_ids(result) == {"RL101"}
        assert "missing its backward closure" in result.findings[0].message

    def test_lambda_backward_flagged(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def relu(self):
                return self._make(self.data, (self,), lambda g: None, "relu")
            """,
            rule_ids=["RL101"],
        )
        assert rule_ids(result) == {"RL101"}
        assert "lambda" in result.findings[0].message

    def test_non_local_backward_flagged(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def relu(self):
                return self._make(self.data, (self,), module_level_fn, "relu")
            """,
            rule_ids=["RL101"],
        )
        assert rule_ids(result) == {"RL101"}

    def test_local_def_backward_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def relu(self):
                mask = self.data > 0

                def backward(grad):
                    self._accumulate(grad * mask)

                return self._make(self.data * mask, (self,), backward, "relu")
            """,
            rule_ids=["RL101"],
        )
        assert result.findings == []

    def test_keyword_backward_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def relu(self):
                def backward(grad):
                    pass

                return _node(self.data, (self,), backward=backward, op="relu")
            """,
            rule_ids=["RL101"],
        )
        assert result.findings == []

    def test_forwarding_shim_parameter_ok(self, lint_file):
        # Tensor._make forwards its own backward parameter to _node.
        result = lint_file(
            NN_PATH,
            """
            def _make(self, data, parents, backward, op="?"):
                return _node(data, parents, backward, op)
            """,
            rule_ids=["RL101"],
        )
        assert result.findings == []

    def test_rule_scoped_to_nn(self, lint_file):
        result = lint_file(
            "src/repro/er/op.py",
            """
            def f(self):
                return self._make(1, (), None, "x")
            """,
            rule_ids=["RL101"],
        )
        assert result.findings == []


class TestLoopCapture:
    def test_loop_variable_capture_flagged(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def split(self, pieces):
                outs = []
                for i, piece in enumerate(pieces):
                    def backward(grad):
                        self._accumulate_at(i, grad)
                    outs.append(self._make(piece, (self,), backward, "split"))
                return outs
            """,
            rule_ids=["RL102"],
        )
        assert rule_ids(result) == {"RL102"}
        assert "'i'" in result.findings[0].message

    def test_default_argument_binding_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def split(self, pieces):
                outs = []
                for i, piece in enumerate(pieces):
                    def backward(grad, i=i):
                        self._accumulate_at(i, grad)
                    outs.append(self._make(piece, (self,), backward, "split"))
                return outs
            """,
            rule_ids=["RL102"],
        )
        assert result.findings == []

    def test_loop_inside_backward_ok(self, lint_file):
        # concat-style: the loop lives inside backward, no capture hazard.
        result = lint_file(
            NN_PATH,
            """
            def concat(tensors):
                def backward(grad):
                    for tensor in tensors:
                        tensor._accumulate(grad)
                return _node(1, tensors, backward, "concat")
            """,
            rule_ids=["RL102"],
        )
        assert result.findings == []

    def test_rebound_name_inside_closure_ok(self, lint_file):
        result = lint_file(
            NN_PATH,
            """
            def f(items):
                for i in items:
                    def backward(grad):
                        i = transform(grad)
                        return i
                    register(backward)
            """,
            rule_ids=["RL102"],
        )
        assert result.findings == []
