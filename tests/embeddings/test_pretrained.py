"""Pre-trained store and fine-tuning tests (transfer learning, §6.2.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import EmbeddingStore, fine_tune
from repro.text import SkipGram, cosine


@pytest.fixture(scope="module")
def base_model():
    rng = np.random.default_rng(0)
    docs = []
    for _ in range(200):
        docs.append(["france", "capital", "paris"])
        docs.append(["germany", "capital", "berlin"])
        docs.append(["coffee", "served", "hot"])
    return SkipGram(dim=16, epochs=4, rng=0).fit(docs)


class TestEmbeddingStore:
    def test_save_load_roundtrip(self, base_model, tmp_path):
        store = EmbeddingStore(tmp_path)
        store.save("base", base_model)
        loaded = store.load("base")
        assert np.allclose(loaded.vector("france"), base_model.vector("france"))

    def test_names_and_contains(self, base_model, tmp_path):
        store = EmbeddingStore(tmp_path)
        store.save("one", base_model)
        store.save("two", base_model)
        assert store.names() == ["one", "two"]
        assert "one" in store
        assert "three" not in store

    def test_missing_model_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            EmbeddingStore(tmp_path).load("ghost")

    def test_path_traversal_rejected(self, tmp_path):
        store = EmbeddingStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("../evil", None)

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        EmbeddingStore(nested)
        assert nested.exists()


class TestFineTune:
    def test_new_tokens_added(self, base_model):
        tuned = fine_tune(base_model, [["espresso", "coffee", "hot"]] * 30, epochs=2, rng=0)
        assert "espresso" in tuned
        assert "france" in tuned

    def test_pretrained_geometry_preserved(self, base_model):
        tuned = fine_tune(base_model, [["espresso", "coffee"]] * 20, epochs=2, rng=0)
        sim = cosine(tuned.vector("france"), base_model.vector("france"))
        assert sim > 0.9

    def test_new_token_learns_context(self, base_model):
        tuned = fine_tune(
            base_model, [["espresso", "served", "hot"]] * 60, epochs=5, rng=0
        )
        assert tuned.first_order_similarity("espresso", "hot") > \
            tuned.first_order_similarity("espresso", "paris")

    def test_min_count_filters_new_tokens_only(self, base_model):
        tuned = fine_tune(
            base_model, [["rareword", "coffee"]], epochs=1, min_count=5, rng=0
        )
        assert "rareword" not in tuned
        assert "coffee" in tuned

    def test_original_untouched(self, base_model):
        before = base_model.vectors_.copy()
        fine_tune(base_model, [["espresso", "coffee"]] * 10, epochs=1, rng=0)
        assert np.allclose(base_model.vectors_, before)
