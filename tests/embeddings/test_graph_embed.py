"""Heterogeneous-graph embedding tests (Figure 4, experiment E8's core)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.data import World, table_to_graph
from repro.embeddings import GraphEmbedder, TableGraphEmbedder


@pytest.fixture(scope="module")
def employee_setup():
    table, fds = World(0).employees_table(60)
    return table, fds


class TestGraphEmbedder:
    def test_embeds_every_node(self):
        graph = nx.karate_club_graph()
        graph = nx.relabel_nodes(graph, {n: f"n{n}" for n in graph.nodes})
        nx.set_edge_attributes(graph, 1.0, "weight")
        embedder = GraphEmbedder(dim=12, epochs=2, walks_per_node=4, rng=0).fit(graph)
        for node in graph.nodes:
            assert embedder.vector(str(node)).shape == (12,)

    def test_unknown_node_zero(self):
        graph = nx.path_graph(4)
        graph = nx.relabel_nodes(graph, str)
        embedder = GraphEmbedder(dim=8, epochs=2, rng=0).fit(graph)
        assert np.allclose(embedder.vector("missing"), 0.0)

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            GraphEmbedder().fit(nx.Graph())

    def test_invalid_walk_params(self):
        with pytest.raises(ValueError):
            GraphEmbedder(walk_length=0)
        with pytest.raises(ValueError):
            GraphEmbedder(walks_per_node=0)

    def test_community_structure_in_embeddings(self):
        """Two cliques joined by one bridge: within-clique similarity must
        exceed cross-clique similarity."""
        graph = nx.Graph()
        for i in range(5):
            for j in range(i + 1, 5):
                graph.add_edge(f"a{i}", f"a{j}", weight=1.0)
                graph.add_edge(f"b{i}", f"b{j}", weight=1.0)
        graph.add_edge("a0", "b0", weight=0.2)
        embedder = GraphEmbedder(dim=16, epochs=5, walks_per_node=10, rng=0).fit(graph)
        within = embedder.similarity("a1", "a2")
        across = embedder.similarity("a1", "b2")
        assert within > across

    def test_isolated_node_gets_vector(self):
        graph = nx.Graph()
        graph.add_edge("x", "y", weight=1.0)
        graph.add_node("lonely")
        embedder = GraphEmbedder(dim=8, epochs=2, rng=0).fit(graph)
        assert embedder.vector("lonely").shape == (8,)


class TestTableGraphEmbedder:
    def test_fd_linked_cells_more_similar_than_unrelated(self, employee_setup):
        table, fds = employee_setup
        embedder = TableGraphEmbedder(dim=24, rng=0, walks_per_node=6).fit(table, fds)
        dept_ids = table.distinct_values("department_id")
        linked, unlinked = [], []
        for dept_id in dept_ids:
            row = table.column("department_id").index(dept_id)
            name = table.cell(row, "department_name")
            linked.append(embedder.cell_similarity("department_id", dept_id, "department_name", name))
            for other in table.distinct_values("department_name"):
                if other != name:
                    unlinked.append(
                        embedder.cell_similarity("department_id", dept_id, "department_name", other)
                    )
        assert np.mean(linked) > np.mean(unlinked)

    def test_fd_edges_ablatable(self, employee_setup):
        table, fds = employee_setup
        with_fd = TableGraphEmbedder(dim=8, use_fd_edges=True, rng=0, walks_per_node=2)
        without_fd = TableGraphEmbedder(dim=8, use_fd_edges=False, rng=0, walks_per_node=2)
        with_fd.fit(table, fds)
        without_fd.fit(table, fds)
        g_with = table_to_graph(table, fds)
        g_without = table_to_graph(table, [])
        fd_edges_with = sum(
            1 for _, _, d in g_with.edges(data=True) if "fd" in d["kinds"]
        )
        assert fd_edges_with > 0
        assert all(
            "fd" not in d["kinds"] for _, _, d in g_without.edges(data=True)
        )

    def test_unknown_cell_zero_vector(self, employee_setup):
        table, fds = employee_setup
        embedder = TableGraphEmbedder(dim=8, rng=0, walks_per_node=2).fit(table, fds)
        assert np.allclose(embedder.cell_vector("department_id", "999"), 0.0)
