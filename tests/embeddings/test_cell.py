"""Cell-embedding tests (tuple-as-document adaptation, §3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table, World
from repro.embeddings import CellEmbedder, cooccurrence_hit_rate, tuple_documents


@pytest.fixture(scope="module")
def locations():
    table, fds = World(0).locations_table(150)
    return table


class TestTupleDocuments:
    def test_one_document_per_row(self, locations):
        docs = tuple_documents([locations])
        assert len(docs) == locations.num_rows

    def test_missing_values_skipped(self):
        table = Table("t", ["a", "b"], rows=[["x", None], [None, None]])
        docs = tuple_documents([table])
        assert docs == [["x"]]

    def test_qualified_tokens(self):
        table = Table("t", ["a"], rows=[["X"]])
        docs = tuple_documents([table], qualify=True)
        assert docs == [["a=x"]]

    def test_multiple_tables_concatenated(self, locations):
        docs = tuple_documents([locations, locations])
        assert len(docs) == 2 * locations.num_rows


class TestCellEmbedder:
    def test_fit_and_vector_shape(self, locations):
        embedder = CellEmbedder(dim=16, epochs=3, rng=0).fit([locations])
        assert embedder.vector("france").shape == (16,)

    def test_unseen_value_zero_vector(self, locations):
        embedder = CellEmbedder(dim=16, epochs=3, rng=0).fit([locations])
        assert np.allclose(embedder.vector("atlantis"), 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CellEmbedder().vector("x")

    def test_empty_tables_raise(self):
        with pytest.raises(ValueError):
            CellEmbedder().fit([Table("t", ["a"])])

    def test_qualified_requires_column(self, locations):
        embedder = CellEmbedder(dim=8, epochs=2, qualify=True, rng=0).fit([locations])
        with pytest.raises(ValueError):
            embedder.vector("france")
        assert embedder.vector("france", column="country").shape == (8,)

    def test_cooccurring_cells_associate(self, locations):
        """france/paris share tuples; france/tokyo never do."""
        embedder = CellEmbedder(dim=24, epochs=8, rng=0).fit([locations])
        paired = embedder.model.first_order_similarity("france", "paris")
        unpaired = embedder.model.first_order_similarity("france", "tokyo")
        assert paired > unpaired


class TestWindowLimitation:
    """Paper §3.1 limitation 2: attributes further apart than the window
    never co-occur as training pairs."""

    def test_hit_rate_one_when_window_covers(self, locations):
        rate = cooccurrence_hit_rate(locations, "country", "capital", window=4)
        assert rate == 1.0

    def test_hit_rate_drops_with_distance(self):
        columns = [f"c{i}" for i in range(12)]
        table = Table("wide", columns, rows=[[str(i) for i in range(12)]])
        near = cooccurrence_hit_rate(table, "c0", "c2", window=4)
        far = cooccurrence_hit_rate(table, "c0", "c11", window=4)
        assert far == 0.0
        assert near > far

    def test_hit_rate_matches_analytic(self):
        """P(span >= d) with span ~ U{1..w} equals (w - d + 1) / w."""
        columns = [f"c{i}" for i in range(8)]
        table = Table("wide", columns, rows=[[str(i) for i in range(8)]])
        rate = cooccurrence_hit_rate(table, "c0", "c3", window=6, trials=20000, rng=0)
        assert rate == pytest.approx((6 - 3 + 1) / 6, abs=0.02)
