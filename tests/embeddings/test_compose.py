"""Compositional embedding tests: tuple2vec, column2vec, table2vec, LSTM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.embeddings import (
    LSTMComposer,
    TupleEmbedder,
    column_embedding,
    database_embedding,
    mean_compose,
    sif_weights,
    table_embedding,
)
from repro.text import SkipGram


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(0)
    words = ["red", "blue", "green", "small", "large", "widget", "gadget", "device"]
    docs = [
        [str(w) for w in rng.choice(words, size=4, replace=False)] for _ in range(200)
    ]
    # Make "widget" very frequent so SIF down-weights it measurably.
    docs += [["widget", "widget", "widget"]] * 100
    return SkipGram(dim=12, epochs=3, rng=0).fit(docs)


class TestTupleEmbedder:
    def test_embed_shape(self, model):
        embedder = TupleEmbedder(model, ["name", "color"])
        vec = embedder.embed({"name": "widget", "color": "red"})
        assert vec.shape == (12,)

    def test_empty_record_zero(self, model):
        embedder = TupleEmbedder(model, ["name"])
        assert np.allclose(embedder.embed({"name": None}), 0.0)

    def test_mean_is_token_average(self, model):
        embedder = TupleEmbedder(model, ["a"])
        vec = embedder.embed({"a": "red blue"})
        expected = (model.vector("red") + model.vector("blue")) / 2
        assert np.allclose(vec, expected)

    def test_invalid_method(self, model):
        with pytest.raises(ValueError):
            TupleEmbedder(model, ["a"], method="max")

    def test_sif_downweights_frequent_tokens(self, model):
        weights = sif_weights(["widget", "green"], model)
        assert weights[0] < weights[1]

    def test_sif_differs_from_mean(self, model):
        mean_emb = TupleEmbedder(model, ["a"], method="mean")
        sif_emb = TupleEmbedder(model, ["a"], method="sif")
        record = {"a": "widget green"}
        assert not np.allclose(mean_emb.embed(record), sif_emb.embed(record))

    def test_embed_columns_aligned(self, model):
        embedder = TupleEmbedder(model, ["x", "y"])
        matrix = embedder.embed_columns({"x": "red", "y": None})
        assert matrix.shape == (2, 12)
        assert np.allclose(matrix[0], model.vector("red"))
        assert np.allclose(matrix[1], 0.0)

    def test_token_matrix_padding_and_truncation(self, model):
        embedder = TupleEmbedder(model, ["a"])
        matrix = embedder.token_matrix({"a": "red blue"}, max_tokens=4)
        assert matrix.shape == (4, 12)
        assert np.allclose(matrix[2:], 0.0)
        truncated = embedder.token_matrix({"a": "red blue green small large"}, max_tokens=2)
        assert truncated.shape == (2, 12)

    def test_embed_many(self, model):
        embedder = TupleEmbedder(model, ["a"])
        out = embedder.embed_many([{"a": "red"}, {"a": "blue"}])
        assert out.shape == (2, 12)
        assert embedder.embed_many([]).shape == (0, 12)

    def test_custom_vector_fn(self, model):
        constant = np.ones(12)
        embedder = TupleEmbedder(model, ["a"], vector_fn=lambda t: constant)
        assert np.allclose(embedder.embed({"a": "anything at all"}), 1.0)


class TestColumnTableEmbeddings:
    def _vector_fn(self, model):
        return lambda t: model.vector(t) if t in model else np.zeros(model.dim)

    def test_column_embedding(self, model):
        table = Table("t", ["color"], rows=[["red"], ["blue"], ["red"]])
        vec = column_embedding(table, "color", self._vector_fn(model), 12)
        assert vec.shape == (12,)
        assert not np.allclose(vec, 0.0)

    def test_empty_column_zero(self, model):
        table = Table("t", ["color"], rows=[[None]])
        assert np.allclose(column_embedding(table, "color", self._vector_fn(model), 12), 0.0)

    def test_column_sampling(self, model):
        table = Table("t", ["c"], rows=[["red"]] * 100)
        vec = column_embedding(table, "c", self._vector_fn(model), 12, sample=10)
        assert np.allclose(vec, model.vector("red"))

    def test_table_and_database_embeddings(self, model):
        table = Table("t", ["a", "b"], rows=[["red", "widget"], ["blue", "gadget"]])
        t_vec = table_embedding(table, self._vector_fn(model), 12)
        db_vec = database_embedding([table, table], self._vector_fn(model), 12)
        assert t_vec.shape == (12,)
        assert np.allclose(db_vec, t_vec)  # mean of identical tables

    def test_similar_columns_closer_than_different(self, model):
        from repro.text import cosine

        colors_a = Table("a", ["c"], rows=[["red"], ["blue"]])
        colors_b = Table("b", ["c"], rows=[["green"], ["red"]])
        things = Table("c", ["c"], rows=[["widget"], ["gadget"]])
        fn = self._vector_fn(model)
        va = column_embedding(colors_a, "c", fn, 12)
        vb = column_embedding(colors_b, "c", fn, 12)
        vc = column_embedding(things, "c", fn, 12)
        assert cosine(va, vb) > cosine(va, vc) or np.allclose(va, vb)


class TestLSTMComposer:
    def test_output_shape(self, model):
        composer = LSTMComposer(12, hidden_dim=8, rng=0)
        out = composer(np.zeros((3, 5, 12)))
        assert out.shape == (3, 16)  # bidirectional doubles

    def test_unidirectional(self, model):
        composer = LSTMComposer(12, hidden_dim=8, bidirectional=False, rng=0)
        assert composer(np.zeros((2, 4, 12))).shape == (2, 8)

    def test_gradients_flow(self, model):
        composer = LSTMComposer(6, hidden_dim=4, rng=0)
        out = composer(np.random.default_rng(0).normal(size=(2, 3, 6)))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in composer.parameters())
