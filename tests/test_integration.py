"""Cross-module integration tests: the paper's flows, end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import augment_er_pairs
from repro.cleaning import DAEImputer, FDRepairer, MeanModeImputer
from repro.data import (
    ErrorGenerator,
    World,
    citations_benchmark,
    restaurants_benchmark,
)
from repro.er import (
    DeepER,
    FeatureBasedER,
    LSHBlocker,
    TokenBlocker,
    classification_prf,
    pair_completeness,
    precision_recall_f1,
    reduction_ratio,
)
from repro.er.deeper import MatcherHead
from repro.orchestration import (
    ConsolidateStep,
    CurationPipeline,
    ImputeStep,
    PipelineContext,
    RepairStep,
    ResolveEntitiesStep,
)
from repro.weak import ABSTAIN, EMLabelModel, LabelingFunction, apply_lfs


class TestDeepERPipeline:
    """Figure 5 end to end: embed → block → classify."""

    def test_block_then_match(self, small_benchmark, word_model):
        bench = small_benchmark
        # Deployment over blocking candidates is far more skewed than any
        # training sample (§6.1): train with a heavier negative ratio and
        # decide at a higher threshold to keep precision.
        labeled = bench.labeled_pairs(negative_ratio=10, rng=3)
        trips = [(bench.record_a(a), bench.record_b(b), y) for a, b, y in labeled]
        matcher = DeepER(word_model, bench.compare_columns, rng=0).fit(trips, epochs=25)

        records_a = [bench.table_a.row_dict(i) for i in range(len(bench.table_a))]
        records_b = [bench.table_b.row_dict(i) for i in range(len(bench.table_b))]
        ids_a = [str(v) for v in bench.table_a.column(bench.id_column)]
        ids_b = [str(v) for v in bench.table_b.column(bench.id_column)]
        blocker = LSHBlocker(n_bits=16, n_bands=8, rng=0)
        candidates = blocker.candidate_pairs(
            matcher.tuple_vectors(records_a), ids_a,
            matcher.tuple_vectors(records_b), ids_b,
        )
        total = len(ids_a) * len(ids_b)
        assert reduction_ratio(len(candidates), total) > 0.1
        assert pair_completeness(candidates, bench.matches) > 0.8

        index_a = dict(zip(ids_a, records_a))
        index_b = dict(zip(ids_b, records_b))
        pairs = [(index_a[a], index_b[b]) for a, b in sorted(candidates)]
        probabilities = matcher.predict_proba(pairs)
        predicted = {
            pair for pair, p in zip(sorted(candidates), probabilities) if p >= 0.7
        }
        prf = precision_recall_f1(predicted, bench.matches)
        assert prf.f1 > 0.6


class TestWeakSupervisionToDeepER:
    """§6.2.4: LFs → label model → train a matcher without gold labels."""

    def test_weakly_supervised_matcher(self, small_benchmark):
        bench = small_benchmark
        labeled = bench.labeled_pairs(negative_ratio=4, rng=4)
        trips = [(bench.record_a(a), bench.record_b(b), y) for a, b, y in labeled]
        split = int(0.6 * len(trips))
        train, test = trips[:split], trips[split:]

        from repro.er import jaccard_tokens, trigram_jaccard

        def title_sim(pair):
            a, b = pair
            if not a.get("title") or not b.get("title"):
                return ABSTAIN
            return 1 if trigram_jaccard(str(a["title"]), str(b["title"])) > 0.55 else 0

        def author_sim(pair):
            a, b = pair
            if not a.get("authors") or not b.get("authors"):
                return ABSTAIN
            return 1 if jaccard_tokens(str(a["authors"]), str(b["authors"])) > 0.5 else 0

        def year_match(pair):
            a, b = pair
            if a.get("year") is None or b.get("year") is None:
                return ABSTAIN
            return 1 if abs(float(a["year"]) - float(b["year"])) < 1 else ABSTAIN

        lfs = [
            LabelingFunction("title", title_sim),
            LabelingFunction("authors", author_sim),
            LabelingFunction("year", year_match),
        ]
        pairs_only = [(a, b) for a, b, _ in train]
        votes = apply_lfs(lfs, pairs_only)
        weak_probs = EMLabelModel().fit_predict_proba(votes)
        weak_labels = (weak_probs > 0.5).astype(int)

        gold = np.array([y for _, _, y in train])
        assert (weak_labels == gold).mean() > 0.8  # "mostly correct"

        model = FeatureBasedER(bench.compare_columns, ["year"])
        weak_train = [
            (a, b, int(label)) for (a, b), label in zip(pairs_only, weak_labels)
        ]
        model.fit(weak_train)
        test_labels = np.array([y for _, _, y in test])
        predictions = model.predict([(a, b) for a, b, _ in test])
        assert classification_prf(test_labels, predictions).f1 > 0.7


class TestAugmentationImprovesLowData:
    def test_augmented_training_not_worse(self, small_benchmark, word_model):
        bench = small_benchmark
        labeled = bench.labeled_pairs(n_positives=15, negative_ratio=3, rng=5)
        trips = [(bench.record_a(a), bench.record_b(b), y) for a, b, y in labeled]
        eval_pairs = bench.labeled_pairs(negative_ratio=4, rng=6)
        eval_trips = [
            (bench.record_a(a), bench.record_b(b), y) for a, b, y in eval_pairs
        ]
        test_labels = np.array([y for _, _, y in eval_trips])
        test_pairs = [(a, b) for a, b, _ in eval_trips]

        plain = DeepER(word_model, bench.compare_columns, rng=0).fit(trips, epochs=25)
        plain_f1 = classification_prf(test_labels, plain.predict(test_pairs)).f1

        augmented_data = augment_er_pairs(trips, multiplier=3, rng=0)
        augmented = DeepER(word_model, bench.compare_columns, rng=0).fit(
            augmented_data, epochs=25
        )
        augmented_f1 = classification_prf(test_labels, augmented.predict(test_pairs)).f1
        assert augmented_f1 >= plain_f1 - 0.05


class TestCleaningPipeline:
    """Dirty table → repair + impute → measurably cleaner."""

    def test_error_injection_then_cleaning(self):
        table, fds = World(3).locations_table(150)
        generator = ErrorGenerator(rng=0)
        dirty, report = generator.corrupt(
            table, null_rate=0.08, fd_violation_rate=0.06, fds=fds,
            protected_columns={"person"},
        )
        # Impute first (mode fill can itself create FD violations), then let
        # the FD repairer restore consistency — the right stage order.
        filled = MeanModeImputer().fit(dirty).transform(dirty)
        repaired, _ = FDRepairer(fds).repair(filled)
        from repro.data import violation_rate

        assert violation_rate(repaired, fds) < violation_rate(dirty, fds)
        assert repaired.missing_rate() == 0.0


class TestCurateThenQuery:
    """Curate a dirty table, then answer plain-language questions over it —
    the §5.3 endgame: cleaned data immediately usable by an analyst."""

    def test_nl_questions_over_cleaned_table(self):
        from repro.nlq import QueryEngine

        table, fds = World(6).locations_table(120)
        dirty, _ = ErrorGenerator(rng=1).corrupt(
            table, null_rate=0.1, fd_violation_rate=0.05, fds=fds,
            protected_columns={"person"},
        )
        filled = MeanModeImputer().fit(dirty).transform(dirty)
        cleaned, _ = FDRepairer(fds).repair(filled)

        engine = QueryEngine(cleaned)
        count = engine.ask("how many rows where country is france").value
        # On the cleaned table the count matches a manual scan.
        manual = sum(
            1 for v in cleaned.column("country") if str(v) == "france"
        )
        assert count == manual
        grouped = engine.ask("how many rows by country").value
        assert sum(grouped.values()) == cleaned.num_rows


class TestFullCurationPipeline:
    """Figure 1 end to end on a two-source restaurant scenario."""

    def test_promised_land(self):
        bench = restaurants_benchmark(n_entities=120, rng=7)
        labeled = bench.labeled_pairs(negative_ratio=4, rng=8)
        trips = [(bench.record_a(a), bench.record_b(b), y) for a, b, y in labeled]
        matcher = FeatureBasedER(bench.compare_columns).fit(trips)

        blocker = TokenBlocker(bench.compare_columns)

        def candidates(table_a, table_b):
            records_a = [table_a.row_dict(i) for i in range(len(table_a))]
            records_b = [table_b.row_dict(i) for i in range(len(table_b))]
            ids_a = [str(v) for v in table_a.column("restaurant_id")]
            ids_b = [str(v) for v in table_b.column("restaurant_id")]
            return blocker.candidate_pairs(records_a, ids_a, records_b, ids_b)

        context = PipelineContext()
        context.put_table("a", bench.table_a)
        context.put_table("b", bench.table_b)
        pipeline = CurationPipeline([
            ResolveEntitiesStep(
                matcher, "a", "b", "restaurant_id",
                candidate_fn=candidates, threshold=0.5,
            ),
            ConsolidateStep("a", "b", "restaurant_id", "merged"),
            ImputeStep(MeanModeImputer(), "merged", "final"),
        ])
        context, reports = pipeline.run(context)

        predicted = context.artifacts["matches"]
        prf = precision_recall_f1(predicted, bench.matches)
        assert prf.f1 > 0.7
        final = context.table("final")
        assert final.missing_rate() == 0.0
        # Merged table is smaller than the two sources stacked.
        assert final.num_rows < bench.table_a.num_rows + bench.table_b.num_rows
        assert len(reports) == 3
