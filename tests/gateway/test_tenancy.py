"""Deficit round robin: fairness, starvation-freedom, deterministic order."""

from __future__ import annotations

import pytest

from repro.gateway import DeficitRoundRobin, DispatchGroup, GatewayRequest


def req(request_id, tenant, *, route="match", cost=1.0, priority="interactive"):
    return GatewayRequest(
        request_id=request_id, tenant=tenant, route=route,
        priority=priority, cost_units=cost,
    )


def drain(drr: DeficitRoundRobin, max_batch: int = 8):
    groups = []
    while drr.pending:
        groups.append(drr.next_group(max_batch))
    return groups


class TestValidation:
    def test_quantum_must_be_positive(self):
        with pytest.raises(ValueError, match=r"quantum must be > 0, got 0"):
            DeficitRoundRobin(quantum=0)

    def test_weights_must_be_positive(self):
        with pytest.raises(ValueError, match=r"tenant weight must be > 0"):
            DeficitRoundRobin(weights={"a": 0.0})

    def test_empty_group_is_rejected(self):
        with pytest.raises(ValueError, match="at least one request"):
            DispatchGroup(requests=(), route="match", tenant="a", priority="interactive")

    def test_max_batch_must_be_positive(self):
        drr = DeficitRoundRobin()
        with pytest.raises(ValueError, match=r"max_batch must be >= 1, got 0"):
            drr.next_group(0)


class TestRotation:
    def test_round_robin_alternates_sorted_tenant_ids(self):
        drr = DeficitRoundRobin(quantum=1.0)
        for i in range(3):
            drr.enqueue(req(10 + i, "b"))
            drr.enqueue(req(20 + i, "a"))
            drr.enqueue(req(30 + i, "c"))
        order = [g.tenant for g in drain(drr, max_batch=1)]
        assert order == ["a", "b", "c", "a", "b", "c", "a", "b", "c"]

    def test_empty_scheduler_returns_none(self):
        assert DeficitRoundRobin().next_group(4) is None

    def test_groups_never_mix_tenants_or_routes(self):
        drr = DeficitRoundRobin(quantum=8.0)
        drr.enqueue(req(0, "a", route="match"))
        drr.enqueue(req(1, "a", route="clean"))
        drr.enqueue(req(2, "a", route="clean"))
        groups = drain(drr)
        assert [(g.tenant, g.route, len(g.requests)) for g in groups] == [
            ("a", "match", 1), ("a", "clean", 2),
        ]

    def test_quantum_bounds_group_size(self):
        drr = DeficitRoundRobin(quantum=2.0)
        for i in range(6):
            drr.enqueue(req(i, "a"))
        sizes = [len(g.requests) for g in drain(drr, max_batch=8)]
        assert sizes == [2, 2, 2]

    def test_weight_scales_per_turn_share(self):
        drr = DeficitRoundRobin(quantum=2.0, weights={"a": 2.0})
        for i in range(8):
            drr.enqueue(req(i, "a"))
            drr.enqueue(req(100 + i, "b"))
        sizes = {}
        while drr.pending:
            group = drr.next_group(8)
            sizes.setdefault(group.tenant, []).append(len(group.requests))
        assert sizes["a"] == [4, 4]  # quantum × 2
        assert sizes["b"] == [2, 2, 2, 2]


class TestDeficits:
    def test_expensive_head_is_not_starved(self):
        # Tenant a's head request costs 5 quanta; it must eventually run.
        drr = DeficitRoundRobin(quantum=1.0)
        drr.enqueue(req(0, "a", cost=5.0))
        drr.enqueue(req(1, "b"))
        groups = drain(drr, max_batch=4)
        assert {g.tenant for g in groups} == {"a", "b"}
        assert any(g.requests[0].cost_units == 5.0 for g in groups)

    def test_emptied_queue_forfeits_deficit(self):
        drr = DeficitRoundRobin(quantum=10.0)
        drr.enqueue(req(0, "a"))
        drr.next_group(8)
        assert drr._deficits["a"] == 0.0

    def test_replay_is_deterministic(self):
        def schedule():
            drr = DeficitRoundRobin(quantum=3.0, weights={"b": 1.5})
            for i in range(9):
                drr.enqueue(req(i, "abc"[i % 3], cost=1.0 + (i % 2)))
            return [
                (g.tenant, tuple(r.request_id for r in g.requests))
                for g in drain(drr, max_batch=4)
            ]

        assert schedule() == schedule()
