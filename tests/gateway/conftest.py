"""Gateway-suite fixtures: serve-style trained components + request builders."""

from __future__ import annotations

import pytest

from repro.er import DeepER
from repro.gateway import GatewayRequest, MatchRouter
from repro.serve import BlockingIndex, MatchService


@pytest.fixture(scope="module")
def trained_matcher(word_model, small_benchmark):
    labeled = small_benchmark.labeled_pairs(negative_ratio=3, rng=1)[:120]
    train = [
        (small_benchmark.record_a(a), small_benchmark.record_b(b), y)
        for a, b, y in labeled
    ]
    return DeepER(
        word_model, small_benchmark.compare_columns, composition="sif", rng=0
    ).fit(train, epochs=5)


@pytest.fixture(scope="module")
def reference_records(small_benchmark):
    records = [
        small_benchmark.table_a.row_dict(i)
        for i in range(len(small_benchmark.table_a))
    ]
    ids = [str(v) for v in small_benchmark.table_a.column(small_benchmark.id_column)]
    return records, ids


@pytest.fixture(scope="module")
def query_records(small_benchmark):
    return [
        small_benchmark.table_b.row_dict(i)
        for i in range(len(small_benchmark.table_b))
    ]


@pytest.fixture(scope="module")
def built_index(trained_matcher, reference_records):
    records, ids = reference_records
    return BlockingIndex(
        trained_matcher.embedder, n_bits=16, n_bands=4, rng=0
    ).build(records, ids, jobs=1)


@pytest.fixture()
def service(trained_matcher, built_index):
    """A fresh (cold-cache) service per test."""
    return MatchService(trained_matcher, built_index, jobs=1)


@pytest.fixture()
def match_router(service):
    return MatchRouter(service)


def match_request(request_id, record, *, tenant="t0", arrival=0.0,
                  priority="interactive", cost_units=1.0):
    """One match-route request around a query record."""
    return GatewayRequest(
        request_id=request_id, tenant=tenant, route="match",
        priority=priority, arrival=arrival, payload={"record": record},
        cost_units=cost_units,
    )


@pytest.fixture()
def match_requests(query_records):
    """Eight evenly spaced match requests over the first query records."""
    return [
        match_request(i, query_records[i % len(query_records)], arrival=0.002 * i)
        for i in range(8)
    ]
