"""Gateway fault sites recover bit-identically under their wired budgets."""

from __future__ import annotations

import pytest

from repro.faults import Fault, FaultPlan, RetryExhausted
from repro.faults.sites import CORRUPT_SITES, RETRY_SITES, all_sites
from repro.gateway import Gateway, GatewayConfig, MatchRouter
from repro.serve import MatchService

GATEWAY_SITES = ("gateway.admit", "gateway.route", "gateway.dispatch")


def play(trained_matcher, built_index, requests):
    """One fresh-service gateway run, summarized for byte-comparison."""
    service = MatchService(trained_matcher, built_index, jobs=1)
    gateway = Gateway(
        [MatchRouter(service)],
        config=GatewayConfig(admission={"match": (400.0, 2)}),
    )
    report = gateway.run(requests)
    return (
        report.answers_digest("match"),
        report.duration,
        [r.request_id for r in report.shed],
        len(report.groups),
    )


class TestCatalog:
    def test_gateway_sites_catalogued(self):
        for site in GATEWAY_SITES:
            assert site in RETRY_SITES
            assert site in all_sites()

    def test_corruptable_split_matches_purity(self):
        """Admission previews and route lookups are pure (commit happens
        after validation), so corrupt faults are safe there; dispatch
        warms the service's cache tiers as it runs, so a corrupted
        return would leave cost rows drifted — corrupt chaos is banned
        at that site (see repro.faults.sites)."""
        assert "gateway.admit" in CORRUPT_SITES
        assert "gateway.route" in CORRUPT_SITES
        assert "gateway.dispatch" not in CORRUPT_SITES


class TestUnderBudgetRecovery:
    @pytest.mark.parametrize("site", GATEWAY_SITES)
    def test_single_error_recovers_bit_identical(
        self, site, trained_matcher, built_index, match_requests
    ):
        baseline = play(trained_matcher, built_index, match_requests)
        with FaultPlan([Fault(site, "error", hits=(0,))]) as plan:
            faulted = play(trained_matcher, built_index, match_requests)
        assert plan.ledger.count("error", site) == 1
        assert faulted == baseline

    @pytest.mark.parametrize("site", ["gateway.admit", "gateway.route"])
    def test_corrupted_return_detected_and_retried(
        self, site, trained_matcher, built_index, match_requests
    ):
        baseline = play(trained_matcher, built_index, match_requests)
        with FaultPlan([Fault(site, "corrupt", hits=(0,))]) as plan:
            faulted = play(trained_matcher, built_index, match_requests)
        assert plan.ledger.count("corrupt", site) == 1
        assert faulted == baseline


class TestOverBudget:
    @pytest.mark.parametrize("site", GATEWAY_SITES)
    def test_exhausted_retries_fail_loudly_with_site(
        self, site, trained_matcher, built_index, match_requests
    ):
        # HOT_POLICY gives two attempts; two scheduled hits exceed them.
        with FaultPlan([Fault(site, "error", hits=(0, 1))]):
            with pytest.raises(RetryExhausted) as excinfo:
                play(trained_matcher, built_index, match_requests)
        assert excinfo.value.site == site


class TestChaos:
    @pytest.mark.parametrize("seed", [7, 11])
    def test_seeded_chaos_converges_to_fault_free_rows(
        self, seed, trained_matcher, built_index, match_requests
    ):
        baseline = play(trained_matcher, built_index, match_requests)
        with FaultPlan.chaos(seed, sites=set(GATEWAY_SITES)) as plan:
            chaotic = play(trained_matcher, built_index, match_requests)
        assert chaotic == baseline
        # The schedule is seed-deterministic even if this seed drew no
        # gateway fault; replaying it must describe identically.
        assert plan.describe() == FaultPlan.chaos(
            seed, sites=set(GATEWAY_SITES)
        ).describe()
