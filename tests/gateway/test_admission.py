"""Token-bucket admission: pure previews, deterministic shedding."""

from __future__ import annotations

import pytest

from repro.gateway import AdmissionController, AdmitDecision, TokenBucket


class TestTokenBucketValidation:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError, match=r"rate must be > 0, got 0"):
            TokenBucket(0, 4)
        with pytest.raises(ValueError, match=r"rate must be > 0, got -1.5"):
            TokenBucket(-1.5, 4)

    def test_burst_must_be_at_least_one(self):
        with pytest.raises(ValueError, match=r"burst must be >= 1, got 0"):
            TokenBucket(10.0, 0)


class TestTokenBucket:
    def test_starts_full_and_spends_burst(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        for _ in range(3):
            decision = bucket.preview(0.0)
            assert decision.admitted
            bucket.commit(decision)
        assert not bucket.preview(0.0).admitted

    def test_preview_is_pure_until_committed(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        first = bucket.preview(0.0)
        second = bucket.preview(0.0)
        assert first == second  # nothing consumed between previews
        bucket.commit(first)
        assert not bucket.preview(0.0).admitted

    def test_refill_is_continuous_and_capped(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        for _ in range(2):
            bucket.commit(bucket.preview(0.0))
        # 0.5 simulated seconds refill one token; a long gap caps at burst.
        assert bucket.preview(0.5).admitted
        bucket.commit(bucket.preview(0.5))
        later = bucket.preview(100.0)
        assert later.tokens_after == pytest.approx(1.0)  # burst 2, one spent

    def test_time_never_runs_backwards_in_refill(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        bucket.commit(bucket.preview(1.0))
        # An (out-of-order) earlier preview must not produce negative refill.
        decision = bucket.preview(0.5)
        assert decision.tokens_after >= 0.0


class TestAdmissionController:
    def test_unconfigured_route_is_always_admitted(self):
        controller = AdmissionController({})
        for i in range(50):
            assert controller.decide("match", 0.001 * i).admitted

    def test_configured_route_sheds_deterministically(self):
        def shed_pattern():
            controller = AdmissionController({"clean": (10.0, 2)})
            return [
                controller.decide("clean", 0.01 * i).admitted for i in range(20)
            ]

        first = shed_pattern()
        assert False in first and True in first
        assert shed_pattern() == first  # byte-identical replay

    def test_decision_shape(self):
        controller = AdmissionController({"clean": (10.0, 2)})
        decision = controller.decide("clean", 0.0)
        assert isinstance(decision, AdmitDecision)
        assert decision.at == 0.0
        assert decision.tokens_after == pytest.approx(1.0)
