"""Two-class priority scheduler and the FIFO control arm."""

from __future__ import annotations

import pytest

from repro.gateway import (
    CLASSES,
    FifoScheduler,
    GatewayRequest,
    TwoClassScheduler,
)
from repro.gateway.scheduler import make_scheduler


def req(request_id, *, tenant="t0", route="match", priority="interactive"):
    return GatewayRequest(
        request_id=request_id, tenant=tenant, route=route, priority=priority
    )


class TestTwoClassScheduler:
    def test_interactive_strictly_precedes_batch(self):
        scheduler = TwoClassScheduler()
        scheduler.enqueue(req(0, priority="batch"))
        scheduler.enqueue(req(1, priority="interactive"))
        first = scheduler.next_group(8, batch_ok=True)
        assert first.priority == "interactive"
        second = scheduler.next_group(8, batch_ok=True)
        assert second.priority == "batch"

    def test_batch_waits_for_valve_consent(self):
        scheduler = TwoClassScheduler()
        scheduler.enqueue(req(0, priority="batch"))
        assert scheduler.next_group(8, batch_ok=False) is None
        assert not scheduler.has_dispatchable(batch_ok=False)
        assert scheduler.has_dispatchable(batch_ok=True)
        assert scheduler.next_group(8, batch_ok=True).priority == "batch"

    def test_online_depth_counts_interactive_only(self):
        scheduler = TwoClassScheduler()
        for i in range(3):
            scheduler.enqueue(req(i, priority="interactive"))
        for i in range(3, 8):
            scheduler.enqueue(req(i, priority="batch"))
        assert scheduler.online_depth() == 3
        assert scheduler.depths() == {"interactive": 3, "batch": 5}
        assert scheduler.has_pending

    def test_classes_constant(self):
        assert CLASSES == ("interactive", "batch")


class TestFifoScheduler:
    def test_serves_arrival_order_regardless_of_class(self):
        scheduler = FifoScheduler()
        scheduler.enqueue(req(0, priority="batch", route="clean"))
        scheduler.enqueue(req(1, priority="interactive"))
        group = scheduler.next_group(8, batch_ok=True)
        assert group.priority == "batch" and group.route == "clean"

    def test_head_run_groups_same_route_across_tenants(self):
        scheduler = FifoScheduler()
        scheduler.enqueue(req(0, tenant="a"))
        scheduler.enqueue(req(1, tenant="b"))
        scheduler.enqueue(req(2, tenant="a", route="clean"))
        group = scheduler.next_group(8, batch_ok=True)
        assert [r.request_id for r in group.requests] == [0, 1]
        assert group.route == "match"
        assert scheduler.next_group(8, batch_ok=True).route == "clean"

    def test_ignores_valve_consent(self):
        scheduler = FifoScheduler()
        scheduler.enqueue(req(0, priority="batch"))
        assert scheduler.has_dispatchable(batch_ok=False)
        assert scheduler.next_group(8, batch_ok=False) is not None

    def test_depth_bookkeeping(self):
        scheduler = FifoScheduler()
        scheduler.enqueue(req(0, priority="interactive"))
        scheduler.enqueue(req(1, priority="batch"))
        assert scheduler.online_depth() == 1
        scheduler.next_group(8, batch_ok=True)
        assert scheduler.depths() == {"interactive": 0, "batch": 0}
        assert scheduler.next_group(8, batch_ok=True) is None

    def test_max_batch_must_be_positive(self):
        with pytest.raises(ValueError, match=r"max_batch must be >= 1, got 0"):
            FifoScheduler().next_group(0, batch_ok=True)


class TestMakeScheduler:
    def test_builds_both_policies(self):
        assert isinstance(
            make_scheduler("priority", quantum=4.0, weights=None), TwoClassScheduler
        )
        assert isinstance(
            make_scheduler("fifo", quantum=4.0, weights=None), FifoScheduler
        )

    def test_unknown_policy_message(self):
        with pytest.raises(
            ValueError,
            match=r"unknown scheduling policy 'lifo' \(use 'priority' or 'fifo'\)",
        ):
            make_scheduler("lifo", quantum=4.0, weights=None)
