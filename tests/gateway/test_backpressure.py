"""Backpressure valve: hysteresis, cooldown dwell, float-exact wake-ups."""

from __future__ import annotations

import pytest

from repro.gateway import BackpressureValve


class TestValidation:
    def test_high_water_must_be_at_least_one(self):
        with pytest.raises(ValueError, match=r"high_water must be >= 1, got 0"):
            BackpressureValve(0, 0)

    def test_low_water_must_sit_below_high_water(self):
        with pytest.raises(
            ValueError,
            match=r"low_water must be in \[0, high_water\), got 4 with high_water=4",
        ):
            BackpressureValve(4, 4)
        with pytest.raises(ValueError, match=r"low_water must be in"):
            BackpressureValve(4, -1)

    def test_cooldown_must_be_nonnegative(self):
        with pytest.raises(ValueError, match=r"cooldown must be >= 0, got -0.5"):
            BackpressureValve(4, 1, -0.5)


class TestHysteresis:
    def test_pauses_at_high_water(self):
        valve = BackpressureValve(4, 1)
        valve.observe(0.0, 3)
        assert not valve.paused
        valve.observe(0.1, 4)
        assert valve.paused
        assert valve.pauses == 1
        assert valve.events == [{"at": 0.1, "event": "pause", "depth": 4}]

    def test_repeated_high_observations_pause_once(self):
        valve = BackpressureValve(4, 1)
        for t in (0.0, 0.1, 0.2):
            valve.observe(t, 5)
        assert valve.pauses == 1

    def test_zero_cooldown_resumes_immediately_at_low_water(self):
        valve = BackpressureValve(4, 1, cooldown=0.0)
        valve.observe(0.0, 4)
        valve.observe(0.1, 1)
        assert not valve.paused
        assert valve.resumes == 1

    def test_between_waters_neither_pauses_nor_starts_dwell(self):
        valve = BackpressureValve(4, 1, cooldown=0.1)
        valve.observe(0.0, 4)
        valve.observe(0.1, 3)  # below high, above low
        assert valve.paused
        assert valve.resume_time() is None

    def test_dwell_must_hold_continuously(self):
        valve = BackpressureValve(4, 1, cooldown=0.1)
        valve.observe(0.0, 4)
        valve.observe(0.01, 0)   # dwell starts
        valve.observe(0.05, 2)   # interrupted — depth back above low water
        valve.observe(0.06, 0)   # dwell restarts from here
        valve.observe(0.12, 0)   # only 0.06s into the new dwell
        assert valve.paused
        valve.observe(0.16, 0)
        assert not valve.paused
        assert valve.resumes == 1

    def test_retrain_allowed_tracks_pause_state(self):
        valve = BackpressureValve(4, 1)
        assert valve.retrain_allowed()
        valve.observe(0.0, 4)
        assert not valve.retrain_allowed()
        valve.observe(0.1, 0)
        assert valve.retrain_allowed()


class TestResumeTime:
    def test_none_without_a_candidate(self):
        valve = BackpressureValve(4, 1, cooldown=0.1)
        assert valve.resume_time() is None  # open valve
        valve.observe(0.0, 4)
        assert valve.resume_time() is None  # paused, no dwell yet

    def test_announces_candidate_plus_cooldown(self):
        valve = BackpressureValve(4, 1, cooldown=0.1)
        valve.observe(0.0, 4)
        valve.observe(0.25, 1)
        assert valve.resume_time() == pytest.approx(0.35)

    def test_wake_at_announced_time_always_completes_dwell(self):
        # Regression: with ``now - since >= cooldown`` the dwell can be
        # unsatisfiable at exactly the announced wake time, because
        # (since + cooldown) - since < cooldown under float rounding —
        # the event loop then spins forever re-waking at the same
        # instant.  Both observe() and batch_allowed() must compare
        # against the same sum resume_time() returns.
        since, cooldown = 0.24818062996412493, 0.05
        assert (since + cooldown) - since < cooldown  # the trap is real

        valve = BackpressureValve(3, 0, cooldown=cooldown)
        valve.observe(since - 0.01, 3)
        valve.observe(since, 0)
        wake = valve.resume_time()
        valve.observe(wake, 0)
        assert not valve.paused

        valve = BackpressureValve(3, 0, cooldown=cooldown)
        valve.observe(since - 0.01, 3)
        valve.observe(since, 0)
        assert valve.batch_allowed(valve.resume_time(), 0)


class TestBatchAllowed:
    def test_open_valve_allows_batch(self):
        valve = BackpressureValve(4, 1)
        assert valve.batch_allowed(0.0, 0)

    def test_paused_valve_blocks_batch_until_dwell_completes(self):
        valve = BackpressureValve(4, 1, cooldown=0.1)
        valve.observe(0.0, 4)
        valve.observe(0.01, 0)
        assert not valve.batch_allowed(0.05, 0)   # dwell incomplete
        assert valve.batch_allowed(0.2, 0)        # completes the due dwell
        assert valve.resumes == 1

    def test_completion_requires_depth_still_below_low_water(self):
        valve = BackpressureValve(4, 1, cooldown=0.1)
        valve.observe(0.0, 4)
        valve.observe(0.01, 0)
        assert not valve.batch_allowed(0.5, 3)  # time served, depth too high
        assert valve.paused


class TestSnapshot:
    def test_shape_and_counters(self):
        valve = BackpressureValve(4, 1, cooldown=0.1)
        assert valve.snapshot() == {
            "state": "open", "high_water": 4, "low_water": 1,
            "cooldown": 0.1, "pauses": 0, "resumes": 0,
        }
        valve.observe(0.0, 4)
        valve.observe(0.01, 0)
        valve.observe(0.2, 0)
        assert valve.snapshot() == {
            "state": "open", "high_water": 4, "low_water": 1,
            "cooldown": 0.1, "pauses": 1, "resumes": 1,
        }
