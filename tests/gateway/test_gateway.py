"""Gateway end-to-end: differential answers, determinism, snapshots, errors."""

from __future__ import annotations

import math

import pytest

from repro.gateway import (
    Gateway,
    GatewayConfig,
    GatewayRequest,
    MatchRouter,
    RouteCost,
)
from repro.loop import ModelRegistry
from repro.serve import MatchService
from tests.gateway.conftest import match_request


def fresh_gateway(trained_matcher, built_index, **config_kwargs):
    """A gateway over a cold-cache service (cache state affects timing)."""
    service = MatchService(trained_matcher, built_index, jobs=1)
    config = GatewayConfig(**config_kwargs) if config_kwargs else None
    return Gateway([MatchRouter(service)], config=config)


class TestDifferential:
    def test_gateway_answers_equal_offline_service_answers(
        self, match_requests, trained_matcher, built_index
    ):
        """Routing decides WHEN work runs, never WHAT it answers."""
        gateway = fresh_gateway(trained_matcher, built_index)
        report = gateway.run(match_requests)
        assert len(report.completed) == len(match_requests)

        offline = MatchService(trained_matcher, built_index, jobs=1)
        for request, result in zip(match_requests, report.results):
            expected = offline.match_batch([request.payload["record"]]).answers[0]
            assert result.answer.to_dict() == expected.to_dict()

    def test_grouped_dispatch_coalesces_router_calls(
        self, match_requests, trained_matcher, built_index
    ):
        gateway = fresh_gateway(trained_matcher, built_index)
        report = gateway.run(match_requests)
        assert 1 <= len(report.groups) <= len(match_requests)
        assert sum(g["size"] for g in report.groups) == len(match_requests)
        for group in report.groups:
            assert group["route"] == "match"
            assert group["finish"] > group["fire"]


class TestReplayDeterminism:
    def test_two_runs_are_bit_identical(
        self, match_requests, trained_matcher, built_index
    ):
        def play():
            gateway = fresh_gateway(
                trained_matcher, built_index,
                admission={"match": (400.0, 2)}, high_water=4, low_water=1,
            )
            report = gateway.run(match_requests)
            return (
                report.answers_digest("match"),
                report.duration,
                [r.request_id for r in report.shed],
                report.valve,
            )

        assert play() == play()

    def test_fingerprint_unmoved_by_traffic(
        self, match_requests, trained_matcher, built_index
    ):
        service = MatchService(trained_matcher, built_index, jobs=1)
        before = service.parameter_fingerprint()
        Gateway([MatchRouter(service)]).run(match_requests)
        assert service.parameter_fingerprint() == before


class TestAdmission:
    def test_tight_bucket_sheds_deterministically(
        self, query_records, trained_matcher, built_index
    ):
        requests = [
            match_request(i, query_records[i % len(query_records)],
                          arrival=0.0005 * i)
            for i in range(12)
        ]
        gateway = fresh_gateway(
            trained_matcher, built_index, admission={"match": (100.0, 2)}
        )
        report = gateway.run(requests)
        assert report.shed and report.completed
        assert len(report.results) == len(requests)
        for result in report.shed:
            assert result.status == "shed"
            assert result.answer is None and result.finish is None
            assert result.latency is None and result.deadline_met is None
        assert report.shed_rate == pytest.approx(len(report.shed) / len(requests))


class TestSnapshots:
    def test_health_snapshot_shape(
        self, match_requests, trained_matcher, built_index
    ):
        registry = ModelRegistry()
        version = registry.register(trained_matcher)
        registry.promote(version.version_id)
        service = MatchService(trained_matcher, built_index, jobs=1)
        gateway = Gateway(
            [MatchRouter(service)],
            config=GatewayConfig(high_water=4, low_water=1),
            registry=registry,
        )
        gateway.run(match_requests)
        snapshot = gateway.health_snapshot()
        assert snapshot["status"] == "ok"
        assert snapshot["policy"] == "priority"
        assert snapshot["routes"] == ["health", "match", "metrics"]
        assert snapshot["depth"] == {"interactive": 0, "batch": 0}
        assert snapshot["fingerprint"] == service.parameter_fingerprint()
        assert snapshot["valve"]["state"] == "open"
        assert snapshot["registry"] == {
            "versions": [version.version_id], "active": version.version_id,
        }

    def test_health_route_answers_the_snapshot(
        self, trained_matcher, built_index
    ):
        gateway = fresh_gateway(trained_matcher, built_index)
        request = GatewayRequest(request_id=0, tenant="ops", route="health")
        report = gateway.run([request])
        assert report.completed[0].answer["status"] == "ok"

    def test_metrics_snapshot_shape(
        self, match_requests, trained_matcher, built_index
    ):
        gateway = fresh_gateway(
            trained_matcher, built_index, admission={"match": (400.0, 2)}
        )
        report = gateway.run(match_requests)
        snapshot = gateway.metrics_snapshot()
        assert snapshot["completed"] == len(report.completed)
        assert snapshot["shed"] == len(report.shed)
        match_stats = snapshot["routes"]["match"]
        assert set(match_stats) == {"completed", "p50_ms", "p95_ms", "p99_ms", "shed"}
        assert match_stats["p50_ms"] <= match_stats["p95_ms"] <= match_stats["p99_ms"]
        assert set(snapshot["tenants"]) == {"t0"}


class TestReportHelpers:
    def test_deadlines_are_metadata_never_drops(
        self, query_records, trained_matcher, built_index
    ):
        # An already-hopeless deadline still gets answered — expiry-
        # dropping would make WHAT is answered depend on scheduling.
        requests = [
            GatewayRequest(
                request_id=i, tenant="t0", route="match",
                arrival=0.001 * i, deadline=0.001 * i + 1e-9,
                payload={"record": query_records[i]},
            )
            for i in range(4)
        ]
        report = fresh_gateway(trained_matcher, built_index).run(requests)
        assert len(report.completed) == 4
        assert all(r.deadline_met is False for r in report.completed)
        assert report.deadline_hit_rate() == 0.0

    def test_completed_share_sums_to_one(
        self, query_records, trained_matcher, built_index
    ):
        requests = [
            match_request(i, query_records[i % 4], tenant="ab"[i % 2],
                          arrival=0.001 * i)
            for i in range(10)
        ]
        report = fresh_gateway(trained_matcher, built_index).run(requests)
        share = report.completed_share()
        assert set(share) == {"a", "b"}
        assert sum(share.values()) == pytest.approx(1.0)
        assert sum(report.completed_share(first=4).values()) == pytest.approx(1.0)


class TestErrors:
    def test_unknown_route_names_route_and_installed(
        self, trained_matcher, built_index
    ):
        gateway = fresh_gateway(trained_matcher, built_index)
        bad = GatewayRequest(request_id=7, tenant="t0", route="nope")
        with pytest.raises(
            ValueError,
            match=r"request 7 targets unknown route 'nope'; installed: "
                  r"\['health', 'match', 'metrics'\]",
        ):
            gateway.run([bad])

    def test_duplicate_request_id(self, trained_matcher, built_index):
        gateway = fresh_gateway(trained_matcher, built_index)
        requests = [
            GatewayRequest(request_id=3, tenant="t0", route="health"),
            GatewayRequest(request_id=3, tenant="t1", route="health"),
        ]
        with pytest.raises(ValueError, match=r"duplicate request_id 3"):
            gateway.run(requests)

    def test_non_router_is_rejected(self):
        with pytest.raises(ValueError, match=r"not a router"):
            Gateway([object()])

    def test_duplicate_router_is_rejected(self, service):
        with pytest.raises(ValueError, match=r"duplicate router for route 'match'"):
            Gateway([MatchRouter(service), MatchRouter(service)])


class TestValidationMessages:
    def test_request_messages(self):
        with pytest.raises(ValueError, match=r"request_id must be >= 0, got -1"):
            GatewayRequest(request_id=-1, tenant="t", route="match")
        with pytest.raises(ValueError, match=r"tenant must be a non-empty string"):
            GatewayRequest(request_id=0, tenant="", route="match")
        with pytest.raises(ValueError, match=r"route must be a non-empty string"):
            GatewayRequest(request_id=0, tenant="t", route="")
        with pytest.raises(
            ValueError,
            match=r"priority must be one of \('interactive', 'batch'\), got 'urgent'",
        ):
            GatewayRequest(request_id=0, tenant="t", route="match", priority="urgent")
        with pytest.raises(ValueError, match=r"arrival must be >= 0, got -0.1"):
            GatewayRequest(request_id=0, tenant="t", route="match", arrival=-0.1)
        with pytest.raises(
            ValueError,
            match=r"deadline must be >= arrival, got deadline=0.5 < arrival=1.0",
        ):
            GatewayRequest(
                request_id=0, tenant="t", route="match", arrival=1.0, deadline=0.5
            )
        with pytest.raises(ValueError, match=r"cost_units must be > 0, got 0"):
            GatewayRequest(request_id=0, tenant="t", route="match", cost_units=0)

    def test_config_messages(self):
        with pytest.raises(
            ValueError, match=r"policy must be 'priority' or 'fifo', got 'lifo'"
        ):
            GatewayConfig(policy="lifo")
        with pytest.raises(ValueError, match=r"max_batch_size must be >= 1, got 0"):
            GatewayConfig(max_batch_size=0)
        with pytest.raises(ValueError, match=r"quantum must be > 0, got 0"):
            GatewayConfig(quantum=0)

    def test_route_cost_message(self):
        with pytest.raises(ValueError, match=r"route cost terms must be >= 0"):
            RouteCost(base=-0.001)

    def test_default_deadline_is_open(self):
        request = GatewayRequest(request_id=0, tenant="t", route="match")
        assert request.deadline == math.inf
