"""benchmarks.check_bench_json: every file checked, per-file summary, exit codes."""

from __future__ import annotations

import json

import pytest

pytest.importorskip("benchmarks.check_bench_json", reason="requires repo-root cwd")

from benchmarks.check_bench_json import check_file, check_files, check_files_by_path, main
from repro.obs.bench import build_record, write_record


def _valid_path(tmp_path, experiment_id="e1"):
    record = build_record([{"metric": 1.0}], experiment_id, metrics_snapshot={})
    return write_record(record, tmp_path)


def _broken_path(tmp_path, experiment_id="e9"):
    record = build_record([{"metric": 1.0}], experiment_id, metrics_snapshot={})
    del record["git_sha"]
    del record["profile"]
    path = tmp_path / f"BENCH_{experiment_id.upper()}.json"
    path.write_text(json.dumps(record))
    return path


class TestCheckFile:
    def test_valid_file_no_problems(self, tmp_path):
        assert check_file(str(_valid_path(tmp_path))) == []

    def test_missing_file_reported(self, tmp_path):
        problems = check_file(str(tmp_path / "BENCH_NOPE.json"))
        assert problems == ["BENCH_NOPE.json: file not found"]

    def test_invalid_json_reported(self, tmp_path):
        path = tmp_path / "BENCH_BAD.json"
        path.write_text("{not json")
        (problem,) = check_file(str(path))
        assert "invalid JSON" in problem

    def test_schema_problems_all_collected(self, tmp_path):
        problems = check_file(str(_broken_path(tmp_path)))
        assert len(problems) == 2  # both missing keys, not just the first
        assert any("git_sha" in p for p in problems)
        assert any("profile" in p for p in problems)


class TestCheckFilesByPath:
    def test_broken_file_does_not_mask_others(self, tmp_path):
        good = _valid_path(tmp_path, "e1")
        bad = _broken_path(tmp_path, "e9")
        worse = tmp_path / "BENCH_E8.json"
        worse.write_text("[]")
        by_path = check_files_by_path([str(good), str(bad), str(worse)])
        assert by_path[str(good)] == []
        assert len(by_path[str(bad)]) == 2
        assert len(by_path[str(worse)]) == 1

    def test_flat_wrapper_concatenates(self, tmp_path):
        good = _valid_path(tmp_path, "e1")
        bad = _broken_path(tmp_path, "e9")
        assert len(check_files([str(good), str(bad)])) == 2


class TestMain:
    def test_all_valid_exit_zero(self, tmp_path, capsys):
        paths = [str(_valid_path(tmp_path, "e1")), str(_valid_path(tmp_path, "e2"))]
        assert main(paths) == 0
        assert "2 BENCH json file(s) valid" in capsys.readouterr().out

    def test_failures_summarised_per_file(self, tmp_path, capsys):
        good = _valid_path(tmp_path, "e1")
        bad = _broken_path(tmp_path, "e9")
        worse = tmp_path / "BENCH_E8.json"
        worse.write_text("{not json")
        assert main([str(good), str(bad), str(worse)]) == 1
        out = capsys.readouterr().out
        assert "2/3 file(s) invalid:" in out
        assert "BENCH_E9.json: 2 problem(s)" in out
        assert "BENCH_E8.json: 1 problem(s)" in out
        assert "BENCH_E1.json" not in out.split("invalid:")[1]

    def test_no_files_exit_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([]) == 1
        assert "no BENCH_*.json files found" in capsys.readouterr().out
