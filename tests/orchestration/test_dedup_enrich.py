"""DedupStep and EnrichStep tests."""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.er import trigram_jaccard
from repro.orchestration import (
    CurationPipeline,
    DedupStep,
    EnrichStep,
    PipelineContext,
)


def _name_score(a: dict, b: dict) -> float:
    return trigram_jaccard(str(a.get("name", "")), str(b.get("name", "")))


class TestDedupStep:
    @pytest.fixture
    def dup_table(self):
        return Table(
            "people", ["id", "name", "city"],
            rows=[
                ["1", "john smith", "paris"],
                ["2", "jon smith", None],
                ["3", "maria garcia", "rome"],
                ["4", "peter king", "oslo"],
            ],
        )

    def test_merges_duplicates(self, dup_table):
        context = PipelineContext()
        context.put_table("in", dup_table)
        step = DedupStep("in", "out", "id", _name_score, threshold=0.5)
        details = step.run(context)
        out = context.table("out")
        assert details["rows_before"] == 4
        assert details["rows_after"] == 3
        assert details["clusters_merged"] == 1
        names = out.column("name")
        assert "john smith" in names          # majority/longest survives
        assert "maria garcia" in names

    def test_golden_record_fills_from_cluster(self, dup_table):
        context = PipelineContext()
        context.put_table("in", dup_table)
        DedupStep("in", "out", "id", _name_score, threshold=0.5).run(context)
        out = context.table("out")
        row = out.column("name").index("john smith")
        # City comes from the member that had one.
        assert out.cell(row, "city") == "paris"

    def test_correlation_method(self, dup_table):
        context = PipelineContext()
        context.put_table("in", dup_table)
        details = DedupStep(
            "in", "out", "id", _name_score, threshold=0.5, method="correlation"
        ).run(context)
        assert details["rows_after"] == 3


class TestEnrichStep:
    @pytest.fixture
    def context(self):
        orders = Table(
            "orders", ["oid", "customer", "amount"],
            rows=[["o1", "c1", 10], ["o2", "c2", 20]],
        )
        customers = Table(
            "customers", ["cid", "country"],
            rows=[["c1", "fr"], ["c2", "de"], ["c3", "it"]],
        )
        ctx = PipelineContext()
        ctx.put_table("orders", orders)
        ctx.artifacts["lake"] = {"orders": orders, "customers": customers}
        return ctx

    def test_discovers_and_joins(self, context):
        details = EnrichStep("orders", "enriched", min_score=0.6).run(context)
        assert details["joined"]
        assert details["via"] == "customer=customers.cid"
        enriched = context.table("enriched")
        assert "country" in enriched.columns
        assert enriched.cell(0, "country") == "fr"

    def test_no_join_found_passthrough(self, context):
        context.artifacts["lake"] = {"orders": context.table("orders")}
        details = EnrichStep("orders", "enriched").run(context)
        assert not details["joined"]
        assert context.table("enriched").columns == ["oid", "customer", "amount"]

    def test_in_pipeline(self, context):
        pipeline = CurationPipeline([EnrichStep("orders", "enriched", min_score=0.6)])
        context, reports = pipeline.run(context)
        assert reports[0].name == "enrich"
        assert reports[0].details["joined"]
