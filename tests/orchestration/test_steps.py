"""Concrete pipeline step tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning import MeanModeImputer
from repro.data import FunctionalDependency, Table
from repro.discovery import TfIdfSearchEngine
from repro.orchestration import (
    ConsolidateStep,
    CurationPipeline,
    DiscoverStep,
    ImputeStep,
    PipelineContext,
    PipelineError,
    RepairStep,
    ResolveEntitiesStep,
    TransformStep,
)


class ScoreMatcher:
    """Deterministic matcher: same 'name' first token => match."""

    def predict_proba(self, pairs):
        return np.array([
            1.0 if str(a.get("name", "")).split()[:1] == str(b.get("name", "")).split()[:1]
            else 0.0
            for a, b in pairs
        ])


@pytest.fixture
def two_tables():
    table_a = Table(
        "a", ["id", "name", "city"],
        rows=[["a1", "john smith", "paris"], ["a2", "maria garcia", None]],
    )
    table_b = Table(
        "b", ["id", "name", "city"],
        rows=[["b1", "john smyth", "paris"], ["b2", "peter king", "oslo"]],
    )
    return table_a, table_b


class TestDiscoverStep:
    def test_puts_hits_into_context(self):
        lake = {
            "sales": Table("sales", ["amount"], rows=[["5"]]),
            "people": Table("people", ["name"], rows=[["john"]]),
        }
        engine = TfIdfSearchEngine()
        engine.add_tables(list(lake.values()))
        context = PipelineContext()
        context.artifacts["lake"] = lake
        step = DiscoverStep(engine, "sales amount", top_k=1, output_keys=["found"])
        details = step.run(context)
        assert details["hits"] == ["sales"]
        assert context.table("found").name == "sales"


class TestSchemaMatchStep:
    def test_aligns_divergent_schema_by_values(self):
        from repro.discovery import SyntacticMatcher
        from repro.orchestration import SchemaMatchStep

        table_a = Table("a", ["name", "city"], rows=[
            ["john smith", "paris"], ["maria garcia", "rome"],
        ])
        table_b = Table("b", ["person_label", "town"], rows=[
            ["john smith", "paris"], ["peter king", "oslo"],
        ])
        context = PipelineContext()
        context.put_table("a", table_a)
        context.put_table("b", table_b)
        step = SchemaMatchStep(
            SyntacticMatcher(name_weight=0.0), "a", "b", "b_aligned", threshold=0.3
        )
        details = step.run(context)
        aligned = context.table("b_aligned")
        assert details["mapping"] == {"person_label": "name", "town": "city"}
        assert aligned.columns == ["name", "city"]

    def test_greedy_one_to_one_mapping(self):
        from repro.discovery import SyntacticMatcher
        from repro.orchestration import SchemaMatchStep

        # Both b-columns overlap a.name's values; only the better one maps.
        table_a = Table("a", ["name"], rows=[["x"], ["y"], ["z"]])
        table_b = Table("b", ["col1", "col2"], rows=[
            ["x", "x"], ["y", "q"], ["z", "r"],
        ])
        context = PipelineContext()
        context.put_table("a", table_a)
        context.put_table("b", table_b)
        step = SchemaMatchStep(
            SyntacticMatcher(name_weight=0.0), "a", "b", "out", threshold=0.2
        )
        details = step.run(context)
        assert details["mapped_columns"] == 1
        assert details["mapping"] == {"col1": "name"}


class TestResolveAndConsolidate:
    def test_resolve_finds_matches(self, two_tables):
        table_a, table_b = two_tables
        context = PipelineContext()
        context.put_table("a", table_a)
        context.put_table("b", table_b)
        step = ResolveEntitiesStep(ScoreMatcher(), "a", "b", "id")
        details = step.run(context)
        assert ("a1", "b1") in context.artifacts["matches"]
        assert details["matches"] == 1

    def test_consolidate_merges_and_keeps_singletons(self, two_tables):
        table_a, table_b = two_tables
        context = PipelineContext()
        context.put_table("a", table_a)
        context.put_table("b", table_b)
        context.artifacts["matches"] = {("a1", "b1")}
        step = ConsolidateStep("a", "b", "id", "merged")
        details = step.run(context)
        merged = context.table("merged")
        # a1+b1 merged, a2 singleton, b2 unmatched singleton.
        assert merged.num_rows == 3
        assert details["golden_records"] == 1

    def test_candidate_fn_limits_pairs(self, two_tables):
        table_a, table_b = two_tables
        context = PipelineContext()
        context.put_table("a", table_a)
        context.put_table("b", table_b)
        step = ResolveEntitiesStep(
            ScoreMatcher(), "a", "b", "id",
            candidate_fn=lambda ta, tb: {("a1", "b1")},
        )
        details = step.run(context)
        assert details["candidates"] == 1


class TestCleaningSteps:
    def test_repair_step(self):
        table = Table("t", ["country", "capital"],
                      rows=[["fr", "paris"], ["fr", "paris"], ["fr", "lyon"]])
        context = PipelineContext()
        context.put_table("in", table)
        step = RepairStep([FunctionalDependency(("country",), "capital")], "in", "out")
        details = step.run(context)
        assert details["violation_rate_after"] == 0.0
        assert context.table("out").cell(2, "capital") == "paris"

    def test_impute_step(self, two_tables):
        table_a, _ = two_tables
        context = PipelineContext()
        context.put_table("in", table_a)
        step = ImputeStep(MeanModeImputer(), "in", "out")
        details = step.run(context)
        assert details["missing_rate_after"] == 0.0

    def test_transform_step_normalises_column(self):
        table = Table("t", ["name"], rows=[["john smith"], ["ada lovelace"]])
        context = PipelineContext()
        context.put_table("in", table)
        step = TransformStep(
            "in", "out", "name",
            examples=[("grace hopper", "G. Hopper"), ("alan turing", "A. Turing")],
        )
        details = step.run(context)
        assert context.table("out").cell(0, "name") == "J. Smith"
        assert details["applied"] == 2

    def test_transform_step_unsolvable_raises(self):
        table = Table("t", ["name"], rows=[["x"]])
        context = PipelineContext()
        context.put_table("in", table)
        step = TransformStep("in", "out", "name", examples=[("a", "b"), ("a", "c")])
        with pytest.raises(PipelineError):
            step.run(context)


class TestEndToEndPipeline:
    def test_full_chain(self, two_tables):
        table_a, table_b = two_tables
        context = PipelineContext()
        context.put_table("a", table_a)
        context.put_table("b", table_b)
        pipeline = CurationPipeline([
            ResolveEntitiesStep(ScoreMatcher(), "a", "b", "id"),
            ConsolidateStep("a", "b", "id", "merged"),
            ImputeStep(MeanModeImputer(), "merged", "final"),
        ])
        context, reports = pipeline.run(context)
        assert len(reports) == 3
        assert context.table("final").missing_rate() == 0.0
