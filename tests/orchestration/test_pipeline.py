"""Pipeline framework tests."""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.orchestration import (
    CurationPipeline,
    PipelineContext,
    PipelineError,
    PipelineStep,
)


class AddRowStep(PipelineStep):
    name = "add_row"

    def __init__(self, key: str):
        self.key = key

    def run(self, context: PipelineContext) -> dict:
        context.table(self.key).append(["x"])
        return {"rows": context.table(self.key).num_rows}


class FailingStep(PipelineStep):
    name = "boom"

    def run(self, context: PipelineContext) -> dict:
        raise PipelineError("intentional")


class TestContext:
    def test_table_access(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        assert context.table("t").columns == ["a"]

    def test_missing_table_raises_with_available(self):
        context = PipelineContext()
        context.put_table("present", Table("p", ["a"]))
        with pytest.raises(PipelineError, match="present"):
            context.table("missing")

    def test_missing_artifact_raises(self):
        with pytest.raises(PipelineError):
            PipelineContext().artifact("nothing")


class TestPipeline:
    def test_steps_run_in_order(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline([AddRowStep("t"), AddRowStep("t")])
        context, reports = pipeline.run(context)
        assert context.table("t").num_rows == 2
        assert [r.details["rows"] for r in reports] == [1, 2]

    def test_reports_have_timing(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        _, reports = CurationPipeline([AddRowStep("t")]).run(context)
        assert reports[0].seconds >= 0
        assert reports[0].name == "add_row"
        assert "add_row" in str(reports[0])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            CurationPipeline([])

    def test_step_errors_propagate(self):
        context = PipelineContext()
        with pytest.raises(PipelineError, match="intentional"):
            CurationPipeline([FailingStep()]).run(context)

    def test_describe(self):
        pipeline = CurationPipeline([AddRowStep("t"), FailingStep()])
        description = pipeline.describe()
        assert "1. add_row" in description
        assert "2. boom" in description
