"""Pipeline framework tests."""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.faults import RetryExhausted, RetryPolicy
from repro.obs import drain_roots
from repro.orchestration import (
    CHECKPOINT_KEY,
    CurationPipeline,
    PipelineContext,
    PipelineError,
    PipelineStep,
)


class AddRowStep(PipelineStep):
    name = "add_row"

    def __init__(self, key: str):
        self.key = key

    def run(self, context: PipelineContext) -> dict:
        context.table(self.key).append(["x"])
        return {"rows": context.table(self.key).num_rows}


class FailingStep(PipelineStep):
    name = "boom"

    def run(self, context: PipelineContext) -> dict:
        raise PipelineError("intentional")


class NeedsMissingInputStep(PipelineStep):
    name = "wants_input"

    def run(self, context: PipelineContext) -> dict:
        context.table("not_there")
        return {}


class NeedsMissingArtifactStep(PipelineStep):
    name = "wants_artifact"

    def run(self, context: PipelineContext) -> dict:
        context.artifact("no_such_artifact")
        return {}


class TransientStep(PipelineStep):
    """Fails ``failures`` times, then writes a marker table."""

    name = "transient"

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def run(self, context: PipelineContext) -> dict:
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"flaky attempt {self.calls}")
        context.put_table("out", Table("out", ["a"], [["x"]]))
        return {"calls": self.calls}


class TestContext:
    def test_table_access(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        assert context.table("t").columns == ["a"]

    def test_missing_table_raises_with_available(self):
        context = PipelineContext()
        context.put_table("present", Table("p", ["a"]))
        with pytest.raises(PipelineError, match="present"):
            context.table("missing")

    def test_missing_artifact_raises(self):
        with pytest.raises(PipelineError):
            PipelineContext().artifact("nothing")


class TestPipeline:
    def test_steps_run_in_order(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline([AddRowStep("t"), AddRowStep("t")])
        context, reports = pipeline.run(context)
        assert context.table("t").num_rows == 2
        assert [r.details["rows"] for r in reports] == [1, 2]

    def test_reports_have_timing(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        _, reports = CurationPipeline([AddRowStep("t")]).run(context)
        assert reports[0].seconds >= 0
        assert reports[0].name == "add_row"
        assert "add_row" in str(reports[0])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            CurationPipeline([])

    def test_step_errors_propagate(self):
        context = PipelineContext()
        with pytest.raises(PipelineError, match="intentional"):
            CurationPipeline([FailingStep()]).run(context)

    def test_describe(self):
        pipeline = CurationPipeline([AddRowStep("t"), FailingStep()])
        description = pipeline.describe()
        assert "1. add_row" in description
        assert "2. boom" in description

    def test_missing_table_error_names_requesting_step(self):
        pipeline = CurationPipeline([NeedsMissingInputStep()])
        with pytest.raises(PipelineError, match=r"step 'wants_input'.*not_there"):
            pipeline.run(PipelineContext())

    def test_missing_artifact_error_names_requesting_step(self):
        pipeline = CurationPipeline([NeedsMissingArtifactStep()])
        with pytest.raises(PipelineError, match=r"step 'wants_artifact'.*no_such_artifact"):
            pipeline.run(PipelineContext())

    def test_lookup_outside_pipeline_has_no_step_prefix(self):
        with pytest.raises(PipelineError) as excinfo:
            PipelineContext().table("loose")
        assert "step" not in str(excinfo.value)

    def test_current_step_reset_after_failure(self):
        context = PipelineContext()
        with pytest.raises(PipelineError):
            CurationPipeline([NeedsMissingInputStep()]).run(context)
        assert context.current_step is None

    def test_failed_run_attaches_partial_reports(self):
        # Regression: completed StepReports used to be dropped on the
        # floor when a later step raised.
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline([AddRowStep("t"), AddRowStep("t"), FailingStep()])
        with pytest.raises(PipelineError) as excinfo:
            pipeline.run(context)
        exc = excinfo.value
        assert exc.failed_step == "boom"
        assert [r.name for r in exc.reports] == ["add_row", "add_row"]
        assert [r.details["rows"] for r in exc.reports] == [1, 2]
        assert exc.exhausted_site is None

    def test_retry_policy_recovers_transient_step(self):
        drain_roots()
        pipeline = CurationPipeline(
            [TransientStep(failures=2)], retry=RetryPolicy(attempts=3)
        )
        context, reports = pipeline.run(PipelineContext())
        assert context.table("out").num_rows == 1
        assert reports[0].details == {"calls": 3}
        note = reports[0].span.meta["retry"]["pipeline.step.transient"]
        assert note["attempts"] == 3
        assert note["outcome"] == "ok"

    def test_per_step_retry_dict(self):
        flaky = TransientStep(failures=1)
        pipeline = CurationPipeline(
            [flaky], retry={"transient": RetryPolicy(attempts=2)}
        )
        pipeline.run(PipelineContext())
        assert flaky.calls == 2
        # Steps absent from the dict run unretried.
        other = TransientStep(failures=1)
        with pytest.raises(RuntimeError, match="flaky attempt 1"):
            CurationPipeline([other], retry={"elsewhere": RetryPolicy()}).run(
                PipelineContext()
            )
        assert other.calls == 1

    def test_pipeline_error_is_never_retried(self):
        # A missing input is not transient: retrying would just re-fail,
        # so PipelineError propagates on the first attempt, annotated.
        pipeline = CurationPipeline([FailingStep()], retry=RetryPolicy(attempts=5))
        with pytest.raises(PipelineError, match="intentional") as excinfo:
            pipeline.run(PipelineContext())
        assert excinfo.value.failed_step == "boom"

    def test_exhausted_retries_become_pipeline_error(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline(
            [AddRowStep("t"), TransientStep(failures=9)],
            retry=RetryPolicy(attempts=2),
        )
        with pytest.raises(PipelineError, match="failed permanently") as excinfo:
            pipeline.run(context)
        exc = excinfo.value
        assert exc.failed_step == "transient"
        assert exc.exhausted_site == "pipeline.step.transient"
        assert [r.name for r in exc.reports] == ["add_row"]
        assert isinstance(exc.__cause__, RetryExhausted)

    def test_checkpoint_resume_skips_completed_steps(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        first = AddRowStep("t")
        pipeline = CurationPipeline(
            [first, TransientStep(failures=1)], checkpoint=True
        )
        with pytest.raises(RuntimeError, match="flaky"):
            pipeline.run(context)
        assert context.artifacts[CHECKPOINT_KEY]["completed"] == 1
        context, reports = pipeline.run(context, resume=True)
        # add_row ran once in total: the resumed run skipped it.
        assert context.table("t").num_rows == 1
        assert [r.name for r in reports] == ["add_row", "transient"]
        assert CHECKPOINT_KEY not in context.artifacts

    def test_resume_without_checkpoint_runs_everything(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline([AddRowStep("t")], checkpoint=True)
        context, reports = pipeline.run(context, resume=True)
        assert [r.name for r in reports] == ["add_row"]

    def test_reports_carry_span_tree(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline([AddRowStep("t"), AddRowStep("t")])
        _, reports = pipeline.run(context)
        assert all(r.span is not None and r.span.closed for r in reports)
        assert [c.name for c in pipeline.last_span_.children] == ["add_row", "add_row"]
        assert pipeline.last_span_.meta == {"steps": 2}
