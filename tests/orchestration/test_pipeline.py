"""Pipeline framework tests."""

from __future__ import annotations

import pytest

from repro.data import Table
from repro.orchestration import (
    CurationPipeline,
    PipelineContext,
    PipelineError,
    PipelineStep,
)


class AddRowStep(PipelineStep):
    name = "add_row"

    def __init__(self, key: str):
        self.key = key

    def run(self, context: PipelineContext) -> dict:
        context.table(self.key).append(["x"])
        return {"rows": context.table(self.key).num_rows}


class FailingStep(PipelineStep):
    name = "boom"

    def run(self, context: PipelineContext) -> dict:
        raise PipelineError("intentional")


class NeedsMissingInputStep(PipelineStep):
    name = "wants_input"

    def run(self, context: PipelineContext) -> dict:
        context.table("not_there")
        return {}


class NeedsMissingArtifactStep(PipelineStep):
    name = "wants_artifact"

    def run(self, context: PipelineContext) -> dict:
        context.artifact("no_such_artifact")
        return {}


class TestContext:
    def test_table_access(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        assert context.table("t").columns == ["a"]

    def test_missing_table_raises_with_available(self):
        context = PipelineContext()
        context.put_table("present", Table("p", ["a"]))
        with pytest.raises(PipelineError, match="present"):
            context.table("missing")

    def test_missing_artifact_raises(self):
        with pytest.raises(PipelineError):
            PipelineContext().artifact("nothing")


class TestPipeline:
    def test_steps_run_in_order(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline([AddRowStep("t"), AddRowStep("t")])
        context, reports = pipeline.run(context)
        assert context.table("t").num_rows == 2
        assert [r.details["rows"] for r in reports] == [1, 2]

    def test_reports_have_timing(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        _, reports = CurationPipeline([AddRowStep("t")]).run(context)
        assert reports[0].seconds >= 0
        assert reports[0].name == "add_row"
        assert "add_row" in str(reports[0])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            CurationPipeline([])

    def test_step_errors_propagate(self):
        context = PipelineContext()
        with pytest.raises(PipelineError, match="intentional"):
            CurationPipeline([FailingStep()]).run(context)

    def test_describe(self):
        pipeline = CurationPipeline([AddRowStep("t"), FailingStep()])
        description = pipeline.describe()
        assert "1. add_row" in description
        assert "2. boom" in description

    def test_missing_table_error_names_requesting_step(self):
        pipeline = CurationPipeline([NeedsMissingInputStep()])
        with pytest.raises(PipelineError, match=r"step 'wants_input'.*not_there"):
            pipeline.run(PipelineContext())

    def test_missing_artifact_error_names_requesting_step(self):
        pipeline = CurationPipeline([NeedsMissingArtifactStep()])
        with pytest.raises(PipelineError, match=r"step 'wants_artifact'.*no_such_artifact"):
            pipeline.run(PipelineContext())

    def test_lookup_outside_pipeline_has_no_step_prefix(self):
        with pytest.raises(PipelineError) as excinfo:
            PipelineContext().table("loose")
        assert "step" not in str(excinfo.value)

    def test_current_step_reset_after_failure(self):
        context = PipelineContext()
        with pytest.raises(PipelineError):
            CurationPipeline([NeedsMissingInputStep()]).run(context)
        assert context.current_step is None

    def test_reports_carry_span_tree(self):
        context = PipelineContext()
        context.put_table("t", Table("t", ["a"]))
        pipeline = CurationPipeline([AddRowStep("t"), AddRowStep("t")])
        _, reports = pipeline.run(context)
        assert all(r.span is not None and r.span.closed for r in reports)
        assert [c.name for c in pipeline.last_span_.children] == ["add_row", "add_row"]
        assert pipeline.last_span_.meta == {"steps": 2}
