"""NL query parser tests."""

from __future__ import annotations

import pytest

from repro.nlq import Filter, ParseError, parse


class TestSelect:
    def test_simple_show(self):
        query = parse("show names")
        assert query.action == "select"
        assert query.target_term == "names"
        assert query.filters == ()

    def test_show_with_filter(self):
        query = parse("show name where city is paris")
        assert query.action == "select"
        assert query.filters == (Filter("city", "eq", "paris"),)

    @pytest.mark.parametrize("verb", ["show", "list", "get", "give me", "display"])
    def test_select_verbs(self, verb):
        assert parse(f"{verb} names").action == "select"

    def test_of_phrase_trimmed(self):
        query = parse("list the names of restaurants")
        assert query.target_term == "names"

    def test_multi_word_value(self):
        query = parse("show name where dept is human resources")
        assert query.filters[0].value == "human resources"

    def test_two_filters_joined_by_and(self):
        query = parse("show name where city is paris and with rating over 4")
        assert len(query.filters) == 2
        assert query.filters[1] == Filter("rating", "gt", "4")


class TestCount:
    def test_how_many(self):
        query = parse("how many rows where city is paris")
        assert query.action == "count"

    def test_count_verb(self):
        assert parse("count rows where dept is hr").action == "count"

    def test_count_group_by(self):
        query = parse("how many rows by dept")
        assert query.action == "count"
        assert query.group_term == "dept"


class TestAggregates:
    @pytest.mark.parametrize(
        "word,action",
        [("average", "avg"), ("mean", "avg"), ("total", "sum"), ("sum", "sum"),
         ("max", "max"), ("highest", "max"), ("min", "min"), ("lowest", "min")],
    )
    def test_aggregate_words(self, word, action):
        query = parse(f"{word} price")
        assert query.action == action
        assert query.target_term == "price"

    def test_what_is_the_prefix(self):
        query = parse("what is the average price where brand is acme")
        assert query.action == "avg"
        assert query.target_term == "price"

    def test_group_by(self):
        query = parse("average price by brand")
        assert query.group_term == "brand"
        assert query.target_term == "price"

    def test_comparison_operators(self):
        assert parse("show name where price over 100").filters[0].op == "gt"
        assert parse("show name where price below 100").filters[0].op == "lt"
        assert parse("show name where title contains deep").filters[0].op == "contains"


class TestErrors:
    def test_empty_raises(self):
        with pytest.raises(ParseError):
            parse("   ")

    def test_gibberish_raises_with_hint(self):
        with pytest.raises(ParseError, match="show <column>"):
            parse("frobnicate the quux")

    def test_question_mark_normalised(self):
        assert parse("how many rows where city is oslo?").action == "count"
