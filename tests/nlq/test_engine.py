"""NL query engine + personalized vocabulary tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.nlq import PersonalVocabulary, QueryEngine, ResolutionError


@pytest.fixture
def staff_table():
    return Table(
        "staff",
        ["name", "work_city", "compensation", "dept"],
        rows=[
            ["john", "paris", 100, "hr"],
            ["jane", "oslo", 150, "hr"],
            ["bob", "paris", 120, "sales"],
            ["amy", "rome", 90, "sales"],
            ["eve", None, 200, "hr"],
        ],
    )


@pytest.fixture
def engine(staff_table):
    return QueryEngine(staff_table)


class TestVocabulary:
    def test_exact_resolution(self, staff_table):
        vocab = PersonalVocabulary(staff_table)
        assert vocab.resolve("dept").column == "dept"
        assert vocab.resolve("DEPT").source == "exact"

    def test_partial_resolution(self, staff_table):
        vocab = PersonalVocabulary(staff_table)
        resolution = vocab.resolve("city")
        assert resolution.column == "work_city"
        assert resolution.source == "partial"

    def test_ambiguous_partial_gives_suggestions(self):
        table = Table("t", ["start_date", "end_date"], rows=[["a", "b"]])
        vocab = PersonalVocabulary(table)
        resolution = vocab.resolve("date")
        assert resolution.column is None
        assert set(resolution.suggestions) == {"start_date", "end_date"}

    def test_learn_and_forget(self, staff_table):
        vocab = PersonalVocabulary(staff_table)
        vocab.learn("salary", "compensation")
        assert vocab.resolve("salary").column == "compensation"
        assert vocab.resolve("salary").source == "personal"
        vocab.forget("salary")
        assert vocab.resolve("salary").column is None

    def test_learn_unknown_column_rejected(self, staff_table):
        with pytest.raises(KeyError):
            PersonalVocabulary(staff_table).learn("x", "ghost")

    def test_semantic_resolution(self, staff_table):
        vectors = {
            "salary": np.array([1.0, 0.0]),
            "compensation": np.array([0.95, 0.05]),
            "work": np.array([0.0, 1.0]), "city": np.array([0.0, 1.0]),
            "name": np.array([0.5, 0.5]), "dept": np.array([0.4, 0.6]),
        }
        vocab = PersonalVocabulary(
            staff_table, vector_fn=lambda w: vectors.get(w, np.zeros(2))
        )
        resolution = vocab.resolve("salary")
        assert resolution.column == "compensation"
        assert resolution.source == "semantic"


class TestEngine:
    def test_select(self, engine):
        answer = engine.ask("show name where work_city is paris")
        assert answer.value.column("name") == ["john", "bob"]

    def test_count(self, engine):
        assert engine.ask("how many rows where dept is hr").value == 3

    def test_average(self, engine):
        assert engine.ask("average compensation where dept is sales").value == 105.0

    def test_sum_max_min(self, engine):
        assert engine.ask("total compensation where dept is sales").value == 210.0
        assert engine.ask("max compensation").value == 200.0
        assert engine.ask("min compensation").value == 90.0

    def test_group_by(self, engine):
        answer = engine.ask("average compensation by dept")
        assert answer.value == {"hr": 150.0, "sales": 105.0}

    def test_count_group_by(self, engine):
        assert engine.ask("how many rows by dept").value == {"hr": 3, "sales": 2}

    def test_numeric_comparison(self, engine):
        answer = engine.ask("show name where compensation over 110")
        assert answer.value.column("name") == ["jane", "bob", "eve"]

    def test_contains(self, engine):
        answer = engine.ask("show name where work_city contains ar")
        assert answer.value.column("name") == ["john", "bob"]

    def test_missing_cells_never_match(self, engine):
        answer = engine.ask("show name where work_city is paris")
        assert "eve" not in answer.value.column("name")

    def test_unknown_term_raises_with_suggestions(self, engine):
        with pytest.raises(ResolutionError, match="salary"):
            engine.ask("average salary")

    def test_teach_then_succeed(self, engine):
        engine.teach("salary", "compensation")
        answer = engine.ask("average salary where city is paris")
        assert answer.value == 110.0
        assert "personal" in answer.explanation()

    def test_aggregate_of_empty_selection(self, engine):
        assert engine.ask("average compensation where dept is legal").value is None

    def test_explanation_mentions_partial(self, engine):
        answer = engine.ask("show name where city is oslo")
        assert "work_city" in answer.explanation()
