"""HolisticRepairer (HoloClean-lite) tests."""

from __future__ import annotations

import pytest

from repro.cleaning import FDRepairer, HolisticRepairer
from repro.data import FunctionalDependency, Table


@pytest.fixture
def cities_table():
    """FD city→country; the 'lyon' group is majority-corrupted to 'de',
    but the prefix column ties +33 to 'fr' across the relation."""
    rows = []
    rows += [["lyon", "de", "+33"], ["lyon", "de", "+33"], ["lyon", "fr", "+33"]]
    rows += [["nice", "fr", "+33"]] * 5
    rows += [["paris", "fr", "+33"]] * 5
    rows += [["berlin", "de", "+49"]] * 5
    rows += [["munich", "de", "+49"]] * 4
    return Table("cities", ["city", "country", "prefix"], rows=rows)


@pytest.fixture
def fd():
    return FunctionalDependency(("city",), "country")


class TestHolisticRepairer:
    def test_requires_fds(self):
        with pytest.raises(ValueError):
            HolisticRepairer([])

    def test_input_untouched(self, cities_table, fd):
        snapshot = cities_table.copy()
        HolisticRepairer([fd]).repair(cities_table)
        assert cities_table.equals(snapshot)

    def test_clean_table_no_repairs(self, fd):
        table = Table("t", ["city", "country", "prefix"],
                      rows=[["paris", "fr", "+33"], ["berlin", "de", "+49"]])
        repaired, report = HolisticRepairer([fd]).repair(table)
        assert len(report) == 0
        assert repaired.equals(table)

    def test_recovers_minority_corruption(self, fd):
        table = Table(
            "t", ["city", "country", "prefix"],
            rows=[["paris", "fr", "+33"], ["paris", "fr", "+33"], ["paris", "de", "+33"],
                  ["berlin", "de", "+49"], ["berlin", "de", "+49"]],
        )
        repaired, _ = HolisticRepairer([fd]).repair(table)
        assert repaired.cell(2, "country") == "fr"
        assert fd.holds(repaired)

    def test_context_overturns_corrupted_majority(self, cities_table, fd):
        """The HoloClean advantage: majority repair entrenches a majority
        corruption; holistic evidence from correlated attributes recovers
        the truth."""
        majority_repaired, _ = FDRepairer([fd]).repair(cities_table)
        assert majority_repaired.cell(2, "country") == "de"  # entrenched
        holistic_repaired, report = HolisticRepairer([fd]).repair(cities_table)
        for row in (0, 1, 2):
            assert holistic_repaired.cell(row, "country") == "fr"
        assert len(report) == 2
        assert all(r.reason == "holistic" for r in report.repairs)

    def test_repairs_only_rhs_cells(self, cities_table, fd):
        repaired, report = HolisticRepairer([fd]).repair(cities_table)
        assert all(r.column == "country" for r in report.repairs)
        assert repaired.column("city") == cities_table.column("city")
        assert repaired.column("prefix") == cities_table.column("prefix")

    def test_weights_tunable(self, cities_table, fd):
        """With context evidence muted, it degrades to majority behaviour."""
        repairer = HolisticRepairer(
            [fd], fd_weight=5.0, context_weight=0.0, prior_weight=0.0
        )
        repaired, _ = repairer.repair(cities_table)
        assert repaired.cell(2, "country") == "de"  # majority within group
