"""Minimal FD repair tests."""

from __future__ import annotations

import pytest

from repro.cleaning import FDRepairer, repair_quality
from repro.data import ErrorGenerator, FunctionalDependency, Table, World, violation_rate


class TestFDRepairer:
    def test_requires_fds(self):
        with pytest.raises(ValueError):
            FDRepairer([])

    def test_majority_value_wins(self):
        table = Table(
            "t", ["dept", "name"],
            rows=[["1", "hr"], ["1", "hr"], ["1", "finance"]],
        )
        fd = FunctionalDependency(("dept",), "name")
        repaired, report = FDRepairer([fd]).repair(table)
        assert repaired.cell(2, "name") == "hr"
        assert len(report) == 1
        assert fd.holds(repaired)

    def test_input_untouched(self):
        table = Table("t", ["a", "b"], rows=[["1", "x"], ["1", "y"]])
        fd = FunctionalDependency(("a",), "b")
        FDRepairer([fd]).repair(table)
        assert table.cell(1, "b") == "y"

    def test_deterministic_tie_break(self):
        table = Table("t", ["a", "b"], rows=[["1", "x"], ["1", "y"]])
        fd = FunctionalDependency(("a",), "b")
        repaired1, _ = FDRepairer([fd]).repair(table)
        repaired2, _ = FDRepairer([fd]).repair(table)
        assert repaired1.equals(repaired2)
        assert repaired1.cell(0, "b") == "y"  # ties break to larger string

    def test_cascading_repairs_across_fds(self):
        """Repairing fd1's rhs regroups rows for fd2."""
        table = Table(
            "t", ["eid", "dept", "dname"],
            rows=[
                ["1", "10", "hr"], ["1", "99", "hr"],
                ["2", "10", "hr"], ["3", "10", "finance"],
            ],
        )
        fds = [
            FunctionalDependency(("eid",), "dept"),
            FunctionalDependency(("dept",), "dname"),
        ]
        repaired, report = FDRepairer(fds, max_passes=3).repair(table)
        assert all(fd.holds(repaired) for fd in fds)

    def test_recovers_injected_violations(self):
        table, fds = World(0).locations_table(120)
        dirty, err_report = ErrorGenerator(rng=0).corrupt(
            table, fd_violation_rate=0.08, fds=fds
        )
        corrupted = {(e.row, e.column) for e in err_report.by_kind("fd_violation")}
        repaired, rep_report = FDRepairer(fds).repair(dirty)
        quality = repair_quality(rep_report, table, corrupted)
        assert quality["recall"] > 0.9
        assert quality["precision"] > 0.9
        assert violation_rate(repaired, fds) == 0.0

    def test_missing_values_skipped(self):
        table = Table("t", ["a", "b"], rows=[["1", None], ["1", "x"], [None, "y"]])
        fd = FunctionalDependency(("a",), "b")
        repaired, report = FDRepairer([fd]).repair(table)
        assert len(report) == 0


class TestRepairQuality:
    def test_empty_report(self):
        from repro.cleaning import RepairReport

        quality = repair_quality(RepairReport(), Table("t", ["a"]), set())
        assert quality["recall"] == 1.0
        assert quality["precision"] == 0.0
