"""Conflict fusion (treat-as-missing + impute) tests."""

from __future__ import annotations

import pytest

from repro.cleaning import KNNImputer, MeanModeImputer, blank_conflicts, fuse_with_imputer
from repro.data import FunctionalDependency, Table


@pytest.fixture
def conflicted_table():
    return Table(
        "t",
        ["country", "capital"],
        rows=[
            ["fr", "paris"], ["fr", "paris"], ["fr", "lyon"],  # conflict
            ["de", "berlin"], ["de", "berlin"],
        ],
    )


@pytest.fixture
def fd():
    return FunctionalDependency(("country",), "capital")


class TestBlankConflicts:
    def test_conflicting_group_blanked(self, conflicted_table, fd):
        blanked, cells = blank_conflicts(conflicted_table, [fd])
        assert cells == {(0, "capital"), (1, "capital"), (2, "capital")}
        for row, column in cells:
            assert blanked.cell(row, column) is None

    def test_clean_groups_untouched(self, conflicted_table, fd):
        blanked, _ = blank_conflicts(conflicted_table, [fd])
        assert blanked.cell(3, "capital") == "berlin"

    def test_no_conflicts_no_cells(self, fd):
        table = Table("t", ["country", "capital"], rows=[["fr", "paris"]])
        _, cells = blank_conflicts(table, [fd])
        assert cells == set()


class TestFuseWithImputer:
    def test_fusion_restores_majority_value(self, conflicted_table, fd):
        """After blanking, a context-aware imputer resolves 'fr' to the
        majority-supported capital."""
        fused, cells = fuse_with_imputer(conflicted_table, [fd], KNNImputer(k=2))
        assert len(cells) == 3
        # All fr rows now agree (imputed from the same donor distribution).
        values = {fused.cell(i, "capital") for i in (0, 1, 2)}
        assert len(values) == 1

    def test_no_conflict_returns_copy(self, fd):
        table = Table("t", ["country", "capital"], rows=[["fr", "paris"]])
        fused, cells = fuse_with_imputer(table, [fd], MeanModeImputer())
        assert cells == set()
        assert fused.cell(0, "capital") == "paris"
        assert fused.name.endswith("_fused")
