"""Mixed-type table encoder tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning import TableEncoder
from repro.data import ColumnType, Table


@pytest.fixture
def mixed_table():
    return Table(
        "mixed",
        ["color", "size"],
        rows=[["red", 1.0], ["blue", 3.0], ["red", 5.0], [None, None]],
    )


class TestTableEncoder:
    def test_width(self, mixed_table):
        encoder = TableEncoder(["size"]).fit(mixed_table)
        assert encoder.width_ == 2 + 1  # two colors one-hot + one numeric

    def test_numeric_standardised(self, mixed_table):
        encoder = TableEncoder(["size"]).fit(mixed_table)
        matrix, mask = encoder.encode(mixed_table)
        numeric = matrix[:3, encoder.column_slice("size")][:, 0]
        assert np.isclose(numeric.mean(), 0.0)
        assert np.isclose(numeric.std(), 1.0)

    def test_onehot_encoding(self, mixed_table):
        encoder = TableEncoder(["size"]).fit(mixed_table)
        matrix, mask = encoder.encode(mixed_table)
        color_block = matrix[:, encoder.column_slice("color")]
        assert np.allclose(color_block[:3].sum(axis=1), 1.0)
        assert np.allclose(color_block[3], 0.0)

    def test_mask_marks_missing(self, mixed_table):
        encoder = TableEncoder(["size"]).fit(mixed_table)
        _, mask = encoder.encode(mixed_table)
        assert not mask[3].any()
        assert mask[0].all()

    def test_decode_roundtrip(self, mixed_table):
        encoder = TableEncoder(["size"]).fit(mixed_table)
        matrix, _ = encoder.encode(mixed_table)
        assert encoder.decode_cell(matrix[0], "color") == "red"
        assert encoder.decode_cell(matrix[1], "color") == "blue"
        assert encoder.decode_cell(matrix[2], "size") == pytest.approx(5.0)

    def test_unseen_category_unobserved(self, mixed_table):
        encoder = TableEncoder(["size"]).fit(mixed_table)
        other = Table("o", ["color", "size"], rows=[["green", 2.0]])
        matrix, mask = encoder.encode(other)
        assert not mask[0, encoder.column_slice("color")].any()
        assert mask[0, encoder.column_slice("size")].any()

    def test_unfitted_raises(self, mixed_table):
        with pytest.raises(RuntimeError):
            TableEncoder().encode(mixed_table)

    def test_unknown_column_raises(self, mixed_table):
        encoder = TableEncoder().fit(mixed_table)
        with pytest.raises(KeyError):
            encoder.column_slice("ghost")

    def test_column_kind(self, mixed_table):
        encoder = TableEncoder(["size"]).fit(mixed_table)
        assert encoder.column_kind("size") == ColumnType.NUMERIC
        assert encoder.column_kind("color") == ColumnType.CATEGORICAL
