"""Imputation tests: baselines and the MIDA-style DAE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning import (
    DAEImputer,
    HotDeckImputer,
    KNNImputer,
    MeanModeImputer,
    MedianImputer,
    evaluate_imputation,
)
from repro.data import ErrorGenerator, Table, World


@pytest.fixture(scope="module")
def structured_table():
    """Country/capital table + a country-correlated numeric column."""
    rng = np.random.default_rng(0)
    base, _ = World(0).locations_table(160)
    populations = {c: float(rng.uniform(10, 100)) for c in sorted(set(base.column("country")))}
    table = Table("demo", base.columns + ["population"])
    for i in range(base.num_rows):
        row = list(base.row(i))
        table.append(row + [round(populations[row[1]] * rng.uniform(0.97, 1.03), 2)])
    return table


@pytest.fixture(scope="module")
def dirty_setup(structured_table):
    dirty, report = ErrorGenerator(rng=1).corrupt(
        structured_table, null_rate=0.15, protected_columns={"person"}
    )
    cells = {(e.row, e.column) for e in report.by_kind("null")}
    return dirty, cells


class TestBaselines:
    def test_mean_mode_fills_everything(self, dirty_setup):
        dirty, _ = dirty_setup
        filled = MeanModeImputer(["population"]).fit_transform(dirty)
        assert filled.missing_rate() == 0.0

    def test_mean_value_correct(self):
        table = Table("t", ["x"], rows=[[1.0], [3.0], [None]])
        filled = MeanModeImputer(["x"]).fit_transform(table)
        assert filled.cell(2, "x") == pytest.approx(2.0)

    def test_median_value_correct(self):
        table = Table("t", ["x"], rows=[[1.0], [2.0], [100.0], [None]])
        filled = MedianImputer(["x"]).fit_transform(table)
        assert filled.cell(3, "x") == pytest.approx(2.0)

    def test_mode_for_categorical(self):
        table = Table("t", ["c"], rows=[["a"], ["a"], ["b"], [None]])
        filled = MeanModeImputer().fit_transform(table)
        assert filled.cell(3, "c") == "a"

    def test_all_missing_column_left_alone(self):
        table = Table("t", ["c"], rows=[[None], [None]])
        filled = MeanModeImputer().fit_transform(table)
        assert filled.cell(0, "c") is None

    def test_hotdeck_uses_observed_values(self):
        table = Table("t", ["c"], rows=[["a"], ["b"], [None]])
        filled = HotDeckImputer(rng=0).fit_transform(table)
        assert filled.cell(2, "c") in {"a", "b"}

    def test_unfitted_raises(self, dirty_setup):
        dirty, _ = dirty_setup
        with pytest.raises(RuntimeError):
            MeanModeImputer().transform(dirty)


class TestKNN:
    def test_exploits_row_context(self):
        """kNN must use the country column to fill the capital, beating mode."""
        table, _ = World(1).locations_table(100)
        dirty, report = ErrorGenerator(rng=2).corrupt(
            table, null_rate=0.2, protected_columns={"person", "country", "city"}
        )
        cells = {(e.row, e.column) for e in report.by_kind("null")}
        knn = KNNImputer(k=5).fit_transform(dirty)
        mode = MeanModeImputer().fit_transform(dirty)
        knn_score = evaluate_imputation(knn, table, cells)
        mode_score = evaluate_imputation(mode, table, cells)
        assert knn_score["categorical_accuracy"] > mode_score["categorical_accuracy"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNImputer(k=0)

    def test_fills_missing(self, dirty_setup):
        dirty, _ = dirty_setup
        filled = KNNImputer(k=3, numeric_columns=["population"]).fit_transform(dirty)
        assert filled.missing_rate() < dirty.missing_rate()


class TestDAE:
    def test_beats_mean_mode(self, structured_table, dirty_setup):
        dirty, cells = dirty_setup
        dae = DAEImputer(numeric_columns=["population"], epochs=50, rng=0)
        dae_filled = dae.fit_transform(dirty)
        mode_filled = MeanModeImputer(["population"]).fit_transform(dirty)
        dae_score = evaluate_imputation(dae_filled, structured_table, cells, ["population"])
        mode_score = evaluate_imputation(mode_filled, structured_table, cells, ["population"])
        assert dae_score["categorical_accuracy"] > mode_score["categorical_accuracy"]
        assert dae_score["numeric_nrmse"] < mode_score["numeric_nrmse"]

    def test_multiple_imputation_draws_averaged(self, dirty_setup):
        dirty, _ = dirty_setup
        dae = DAEImputer(numeric_columns=["population"], epochs=10, n_draws=3, rng=0)
        filled = dae.fit_transform(dirty)
        assert filled.missing_rate() == 0.0

    def test_observed_cells_untouched(self, structured_table, dirty_setup):
        dirty, cells = dirty_setup
        dae = DAEImputer(numeric_columns=["population"], epochs=5, rng=0)
        filled = dae.fit_transform(dirty)
        for i in range(dirty.num_rows):
            for column in dirty.columns:
                if (i, column) not in cells and dirty.cell(i, column) is not None:
                    assert filled.cell(i, column) == dirty.cell(i, column)

    def test_unfitted_raises(self, dirty_setup):
        dirty, _ = dirty_setup
        with pytest.raises(RuntimeError):
            DAEImputer().transform(dirty)


class TestEvaluateImputation:
    def test_perfect_imputation(self):
        truth = Table("t", ["c", "x"], rows=[["a", 1.0], ["b", 2.0]])
        assert evaluate_imputation(truth.copy(), truth, {(0, "c"), (1, "x")}, ["x"]) == {
            "categorical_accuracy": 1.0,
            "numeric_nrmse": 0.0,
            "n_cells": 2.0,
        }

    def test_all_wrong_categorical(self):
        truth = Table("t", ["c"], rows=[["a"]])
        wrong = Table("t", ["c"], rows=[["b"]])
        score = evaluate_imputation(wrong, truth, {(0, "c")})
        assert score["categorical_accuracy"] == 0.0
