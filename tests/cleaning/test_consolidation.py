"""Golden-record / consolidation tests."""

from __future__ import annotations

import pytest

from repro.cleaning import (
    PreferenceLearner,
    consolidate_longest,
    consolidate_majority,
    value_features,
)


@pytest.fixture
def cluster():
    return [
        {"name": "John Smith", "city": "paris", "phone": None},
        {"name": "J Smith", "city": "paris", "phone": "555-1234"},
        {"name": "John Smith", "city": None, "phone": "555-1234"},
    ]


class TestRuleBased:
    def test_majority(self, cluster):
        golden = consolidate_majority(cluster, ["name", "city", "phone"])
        assert golden["name"] == "John Smith"
        assert golden["city"] == "paris"
        assert golden["phone"] == "555-1234"

    def test_majority_tie_prefers_longest(self):
        cluster = [{"n": "J Smith"}, {"n": "John Smith"}]
        assert consolidate_majority(cluster, ["n"])["n"] == "John Smith"

    def test_all_missing_gives_none(self):
        assert consolidate_majority([{"n": None}], ["n"])["n"] is None

    def test_longest(self, cluster):
        golden = consolidate_longest(cluster, ["name"])
        assert golden["name"] == "John Smith"


class TestValueFeatures:
    def test_feature_vector_length(self):
        features = value_features("John Smith", ["John Smith", "J Smith"])
        assert len(features) == 6

    def test_initials_flag(self):
        features = value_features("J Smith", ["J Smith"])
        assert features[5] == 1.0
        assert value_features("John Smith", ["John Smith"])[5] == 0.0


class TestPreferenceLearner:
    def _decisions(self):
        return [
            ("John Smith", ["J Smith", "J. Smith"]),
            ("Maria Garcia", ["M Garcia"]),
            ("Robert Brown", ["R. Brown"]),
            ("Linda Davis", ["L Davis", "L. Davis"]),
            ("Carlos Lopez", ["C Lopez"]),
        ]

    def test_learns_prefer_full_names(self):
        learner = PreferenceLearner().fit(self._decisions())
        assert learner.choose(["D. Wilson", "David Wilson"]) == "David Wilson"
        assert learner.choose(["Emma King", "E King"]) == "Emma King"

    def test_single_candidate(self):
        learner = PreferenceLearner().fit(self._decisions())
        assert learner.choose(["only"]) == "only"

    def test_empty_candidates_raise(self):
        learner = PreferenceLearner().fit(self._decisions())
        with pytest.raises(ValueError):
            learner.choose([])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PreferenceLearner().choose(["a", "b"])

    def test_fit_requires_decisions(self):
        with pytest.raises(ValueError):
            PreferenceLearner().fit([])

    def test_consolidate_cluster(self, cluster):
        learner = PreferenceLearner().fit(self._decisions())
        golden = learner.consolidate(cluster, ["name", "city"])
        assert golden["name"] == "John Smith"
        assert golden["city"] == "paris"
