"""Outlier-detection tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cleaning import (
    AutoencoderOutlierDetector,
    IQRDetector,
    ZScoreDetector,
    evaluate_outlier_detection,
)
from repro.data import ErrorGenerator, Table


@pytest.fixture(scope="module")
def correlated_setup():
    """Correlated numeric table with injected outliers."""
    rng = np.random.default_rng(0)
    table = Table("nums", ["a", "b", "c"])
    for _ in range(250):
        x = rng.normal()
        table.append([
            round(x, 3),
            round(2 * x + rng.normal(0, 0.1), 3),
            round(-x + rng.normal(0, 0.1), 3),
        ])
    dirty, report = ErrorGenerator(rng=1).corrupt(table, outlier_rate=0.03)
    true_rows = {e.row for e in report.by_kind("outlier")}
    return dirty, true_rows


class TestAutoencoderDetector:
    def test_detects_injected_outliers(self, correlated_setup):
        dirty, true_rows = correlated_setup
        detector = AutoencoderOutlierDetector(contamination=0.1, epochs=50, rng=0).fit(dirty)
        metrics = evaluate_outlier_detection(detector.predict(dirty), true_rows)
        assert metrics["recall"] > 0.6
        assert metrics["precision"] > 0.4

    def test_scores_higher_for_outliers(self, correlated_setup):
        dirty, true_rows = correlated_setup
        detector = AutoencoderOutlierDetector(contamination=0.1, epochs=50, rng=0).fit(dirty)
        scores = detector.scores(dirty)
        outlier_scores = [scores[i] for i in true_rows]
        inlier_scores = [scores[i] for i in range(len(scores)) if i not in true_rows]
        assert np.mean(outlier_scores) > np.mean(inlier_scores)

    def test_detects_correlation_breaks_zscore_misses(self):
        """A row whose values are individually normal but jointly impossible:
        the AE (which learns structure) must out-score marginal z-scores."""
        rng = np.random.default_rng(0)
        table = Table("corr", ["x", "y"])
        for _ in range(300):
            x = rng.normal()
            table.append([round(x, 3), round(x + rng.normal(0, 0.05), 3)])
        # Structural outlier: both values within marginal range, wrong pairing.
        table.append([1.5, -1.5])
        ae = AutoencoderOutlierDetector(contamination=0.02, epochs=60, rng=0).fit(table)
        z = ZScoreDetector(z=3.0).fit(table)
        ae_rank = (ae.scores(table) >= ae.scores(table)[-1]).sum()
        assert ae_rank <= 10  # among the most anomalous rows
        assert not z.predict(table)[-1]  # marginal detector misses it

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            AutoencoderOutlierDetector(contamination=0.9)

    def test_unfitted_raises(self, correlated_setup):
        dirty, _ = correlated_setup
        with pytest.raises(RuntimeError):
            AutoencoderOutlierDetector().predict(dirty)


class TestStatisticalDetectors:
    def test_zscore_flags_extremes(self, correlated_setup):
        dirty, true_rows = correlated_setup
        detector = ZScoreDetector(z=3.0).fit(dirty)
        metrics = evaluate_outlier_detection(detector.predict(dirty), true_rows)
        assert metrics["recall"] > 0.8

    def test_iqr_flags_extremes(self, correlated_setup):
        dirty, true_rows = correlated_setup
        detector = IQRDetector(k=3.0).fit(dirty)
        metrics = evaluate_outlier_detection(detector.predict(dirty), true_rows)
        assert metrics["recall"] > 0.8

    def test_clean_gaussian_mostly_unflagged(self):
        rng = np.random.default_rng(0)
        table = Table("clean", ["x"], rows=[[float(v)] for v in rng.normal(size=500)])
        detector = ZScoreDetector(z=4.0).fit(table)
        assert detector.predict(table).mean() < 0.01

    def test_missing_values_not_flagged(self):
        table = Table(
            "t", ["x"],
            rows=[[1.0], [None], [2.0], [3.0], [2.0], [1.0], [2.0], [100.0]],
        )
        detector = IQRDetector(k=1.5).fit(table)
        flags = detector.predict(table)
        assert not flags[1]
        assert flags[7]


class TestEvaluation:
    def test_empty_truth_full_recall(self):
        assert evaluate_outlier_detection(np.zeros(5, dtype=bool), set())["recall"] == 1.0

    def test_no_predictions_zero_precision(self):
        metrics = evaluate_outlier_detection(np.zeros(5, dtype=bool), {1})
        assert metrics["precision"] == 0.0
        assert metrics["recall"] == 0.0
