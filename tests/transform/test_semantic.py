"""Semantic transformation tests (lookup + embedding routes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import World
from repro.text import SkipGram
from repro.transform import EmbeddingTransformer, LookupTransformer


@pytest.fixture(scope="module")
def catalog():
    world = World(0)
    locations, _ = world.locations_table(120)
    employees, _ = world.employees_table(40)
    return [employees, locations]


class TestLookupTransformer:
    def test_discovers_country_capital(self, catalog):
        transformer = LookupTransformer(catalog).fit(
            [("france", "paris"), ("germany", "berlin")]
        )
        assert transformer.mapping_.input_column == "country"
        assert transformer.mapping_.output_column == "capital"
        assert transformer.transform("italy") == "rome"

    def test_case_insensitive(self, catalog):
        transformer = LookupTransformer(catalog).fit([("France", "Paris")])
        assert transformer.transform("FRANCE") == "paris"

    def test_uncovered_value_none(self, catalog):
        transformer = LookupTransformer(catalog).fit([("france", "paris")])
        assert transformer.transform("atlantis") is None

    def test_inconsistent_examples_raise(self, catalog):
        with pytest.raises(ValueError):
            LookupTransformer(catalog).fit([("france", "berlin"), ("germany", "paris")])

    def test_requires_catalog_and_examples(self, catalog):
        with pytest.raises(ValueError):
            LookupTransformer([])
        with pytest.raises(ValueError):
            LookupTransformer(catalog).fit([])

    def test_department_mapping(self, catalog):
        transformer = LookupTransformer(catalog).fit([("1", "human resources")])
        assert transformer.mapping_.table_name == "employees"
        assert transformer.transform("2") == "marketing"


class TestEmbeddingTransformer:
    @pytest.fixture(scope="class")
    def model(self):
        rng = np.random.default_rng(0)
        pairs = [("france", "paris"), ("germany", "berlin"), ("italy", "rome"),
                 ("spain", "madrid"), ("japan", "tokyo")]
        docs = []
        for _ in range(600):
            c, cap = pairs[rng.integers(len(pairs))]
            docs.append(f"{cap} is the capital of {c}".split())
            docs.append(f"people in {c} visit {cap} often".split())
        return SkipGram(dim=32, epochs=10, rng=0).fit(docs)

    def test_offset_applies(self, model):
        capitals = ["paris", "berlin", "rome", "madrid", "tokyo"]
        transformer = EmbeddingTransformer(model, candidates=capitals).fit(
            [("france", "paris"), ("germany", "berlin"), ("italy", "rome")]
        )
        predictions = transformer.transform("spain", topn=1)
        assert predictions == ["madrid"]

    def test_example_targets_excluded(self, model):
        capitals = ["paris", "berlin", "rome", "madrid", "tokyo"]
        transformer = EmbeddingTransformer(model, candidates=capitals).fit(
            [("france", "paris"), ("germany", "berlin"), ("italy", "rome")]
        )
        predictions = transformer.transform("spain", topn=5)
        assert "paris" not in predictions

    def test_oov_input_returns_empty(self, model):
        transformer = EmbeddingTransformer(model).fit([("france", "paris")])
        assert transformer.transform("atlantis") == []

    def test_all_oov_examples_raise(self, model):
        with pytest.raises(ValueError):
            EmbeddingTransformer(model).fit([("xxx", "yyy")])

    def test_unfitted_raises(self, model):
        with pytest.raises(RuntimeError):
            EmbeddingTransformer(model).transform("france")
