"""DSL expression and program tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform import (
    ConstStr,
    Lower,
    Program,
    SplitSub,
    SubStr,
    Title,
    TokenInitial,
    TokenSub,
    Upper,
)


class TestExpressions:
    def test_const(self):
        assert ConstStr("x").evaluate("anything") == "x"

    def test_substr_positive(self):
        assert SubStr(1, 4).evaluate("abcdef") == "bcd"

    def test_substr_negative(self):
        assert SubStr(-3, -1).evaluate("abcdef") == "de"

    def test_substr_out_of_range(self):
        with pytest.raises(ValueError):
            SubStr(2, 10).evaluate("abc")

    def test_token(self):
        assert TokenSub(1).evaluate("john middle smith") == "middle"
        assert TokenSub(-1).evaluate("john smith") == "smith"

    def test_token_out_of_range(self):
        with pytest.raises(ValueError):
            TokenSub(5).evaluate("one two")

    def test_token_initial(self):
        assert TokenInitial(0).evaluate("john smith") == "j"

    def test_split_sub(self):
        assert SplitSub("@", 0).evaluate("user@host.com") == "user"
        assert SplitSub(",", 1).evaluate("a, b, c") == "b"

    def test_split_missing_separator(self):
        with pytest.raises(ValueError):
            SplitSub("@", 0).evaluate("no-at-sign")

    def test_case_modifiers(self):
        assert Upper(TokenSub(0)).evaluate("john smith") == "JOHN"
        assert Lower(ConstStr("ABC")).evaluate("") == "abc"
        assert Title(TokenSub(0)).evaluate("john") == "John"

    def test_str_representations(self):
        assert str(Upper(TokenSub(0))) == "Upper(Token(0))"
        assert "Split" in str(SplitSub(",", 1))


class TestRanking:
    def test_separator_constant_cheap(self):
        assert ConstStr(", ").rank < ConstStr("ab").rank

    def test_token_cheaper_than_substr(self):
        assert TokenSub(0).rank < SubStr(0, 3).rank

    def test_case_modifier_adds_cost(self):
        assert Upper(TokenSub(0)).rank > TokenSub(0).rank


class TestProgram:
    def test_concatenation(self):
        program = Program((TokenInitial(0), ConstStr(". "), TokenSub(1)))
        assert program.evaluate("john smith") == "j. smith"

    def test_consistency_check(self):
        program = Program((TokenSub(-1), ConstStr(", "), TokenSub(0)))
        examples = [("john smith", "smith, john"), ("ada lovelace", "lovelace, ada")]
        assert program.consistent_with(examples)
        assert not program.consistent_with([("x y", "wrong")])

    def test_consistency_handles_errors(self):
        program = Program((TokenSub(3),))
        assert not program.consistent_with([("one two", "anything")])

    def test_rank_prefers_fewer_parts(self):
        short = Program((TokenSub(0),))
        long = Program((TokenSub(0), ConstStr(""), TokenSub(0)))
        assert short.rank < long.rank


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="abc d", min_size=1, max_size=12))
def test_substr_full_range_is_identity_property(text):
    assert SubStr(0, len(text)).evaluate(text) == text
