"""Neural program-induction (seq2seq) tests."""

from __future__ import annotations

import pytest

from repro.transform import CharVocab, Seq2SeqTransformer, default_tasks


class TestCharVocab:
    def test_roundtrip(self):
        vocab = CharVocab(["abc", "bcd"])
        ids = vocab.encode("abc", max_len=5)
        assert vocab.decode(ids) == "abc"

    def test_eos_terminates_decode(self):
        vocab = CharVocab(["ab"])
        ids = vocab.encode("ab", max_len=5, add_eos=True)
        assert vocab.decode(ids) == "ab"

    def test_padding(self):
        vocab = CharVocab(["ab"])
        ids = vocab.encode("a", max_len=4)
        assert len(ids) == 4
        assert ids[1:] == [0, 0, 0]

    def test_truncation(self):
        vocab = CharVocab(["abcdef"])
        assert len(vocab.encode("abcdef", max_len=3)) == 3


class TestSeq2Seq:
    def test_requires_pairs(self):
        with pytest.raises(ValueError):
            Seq2SeqTransformer().fit([])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Seq2SeqTransformer().transform("x")

    def test_memorises_small_identity_task(self):
        """With enough examples of a trivial task the seq2seq must fit the
        training set (neural induction is data hungry; this is its floor)."""
        pairs = [(s, s[:2]) for s in ["abcd", "bcda", "cdab", "dabc", "acbd", "bdca"]]
        model = Seq2SeqTransformer(embedding_dim=16, hidden_dim=32, max_len=8, rng=0)
        model.fit(pairs, epochs=120, lr=8e-3)
        train_accuracy = model.accuracy(pairs)
        assert train_accuracy >= 0.5

    def test_accuracy_empty(self):
        assert Seq2SeqTransformer().accuracy([]) == 0.0

    def test_learns_prefix_task_with_many_examples(self):
        """Data-hungry but learnable: 60 examples of 'take area code'."""
        task = [t for t in default_tasks() if t.name == "date_year"][0]
        train = task.examples(60, rng=0)
        test = task.examples(10, rng=123)
        model = Seq2SeqTransformer(embedding_dim=16, hidden_dim=48, max_len=12, rng=0)
        model.fit(train, epochs=60, lr=8e-3)
        assert model.accuracy(test) >= 0.5
