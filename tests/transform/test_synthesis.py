"""Program-synthesis tests: the full E12 task suite must be solvable."""

from __future__ import annotations

import pytest

from repro.transform import Synthesizer, default_tasks, synthesize_column_transform


class TestSynthesizer:
    def test_requires_examples(self):
        with pytest.raises(ValueError):
            Synthesizer().synthesize([])

    def test_learns_abbreviation(self):
        examples = [("John Smith", "J. Smith"), ("Jane Doe", "J. Doe")]
        program = Synthesizer().synthesize(examples)
        assert program is not None
        assert program.evaluate("Alan Turing") == "A. Turing"

    def test_learns_reorder(self):
        examples = [("john smith", "smith, john"), ("ada lovelace", "lovelace, ada")]
        program = Synthesizer().synthesize(examples)
        assert program.evaluate("grace hopper") == "hopper, grace"

    def test_learns_case_change(self):
        examples = [("hello world", "HELLO"), ("foo bar", "FOO")]
        program = Synthesizer().synthesize(examples)
        assert program.evaluate("data curation") == "DATA"

    def test_unsatisfiable_returns_none(self):
        # Contradictory examples: same input, different outputs.
        examples = [("abc", "x"), ("abc", "y")]
        assert Synthesizer().synthesize(examples) is None

    def test_constant_output(self):
        examples = [("a", "-"), ("b", "-")]
        program = Synthesizer().synthesize(examples)
        assert program.evaluate("zzz") == "-"

    def test_constants_can_be_disabled(self):
        examples = [("ab", "xy"), ("cd", "xy")]
        assert Synthesizer(allow_constants=False).synthesize(examples) is None

    def test_synthesize_all_returns_ranked(self):
        examples = [("john smith", "john")]
        programs = Synthesizer().synthesize_all(examples, limit=5)
        assert programs
        ranks = [p.rank for p in programs]
        assert ranks == sorted(ranks)
        assert all(p.consistent_with(examples) for p in programs)


class TestTaskSuite:
    @pytest.mark.parametrize("task", default_tasks(), ids=lambda t: t.name)
    def test_three_examples_generalise(self, task):
        examples = task.examples(3, rng=0)
        holdout = task.examples(15, rng=99)
        program, accuracy = synthesize_column_transform(examples, holdout=holdout)
        assert program is not None, f"no program for {task.name}"
        assert accuracy == 1.0, f"{task.name}: {accuracy} via {program}"

    def test_one_example_often_overfits(self):
        """With one example some tasks mis-generalise — more examples help
        (the E12 curve's shape)."""
        results = []
        for task in default_tasks():
            examples = task.examples(1, rng=5)
            holdout = task.examples(15, rng=77)
            _, accuracy = synthesize_column_transform(examples, holdout=holdout)
            results.append(accuracy)
        three_results = []
        for task in default_tasks():
            examples = task.examples(3, rng=5)
            holdout = task.examples(15, rng=77)
            _, accuracy = synthesize_column_transform(examples, holdout=holdout)
            three_results.append(accuracy)
        assert sum(three_results) >= sum(results)

    def test_examples_unique_inputs(self):
        task = default_tasks()[0]
        examples = task.examples(10, rng=0)
        inputs = [a for a, _ in examples]
        assert len(set(inputs)) == len(inputs)
