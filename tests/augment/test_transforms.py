"""Augmentation pipeline tests: label preservation above all."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import AugmentationPipeline, augment_er_pairs, default_er_transforms
from repro.augment.transforms import (
    case_transform,
    null_out_transform,
    token_swap_transform,
    typo_transform,
)


@pytest.fixture
def labeled_pairs():
    return [
        ({"name": "John Smith", "city": "paris", "phone": "555-1234"},
         {"name": "J Smith", "city": "paris", "phone": "555-1234"}, 1),
        ({"name": "Maria Garcia", "city": "rome", "phone": "111-2222"},
         {"name": "Peter King", "city": "oslo", "phone": "999-8888"}, 0),
    ]


class TestRecordTransforms:
    def test_typo_keeps_structure(self):
        rng = np.random.default_rng(0)
        record = {"name": "Jonathan Smithson", "n": 5}
        out = typo_transform(record, rng)
        assert set(out) == set(record)
        assert out["n"] == 5  # non-strings untouched

    def test_case_preserves_letters(self):
        rng = np.random.default_rng(0)
        out = case_transform({"name": "John Smith"}, rng)
        assert out["name"].lower().replace(" ", "") == "johnsmith"

    def test_token_swap_preserves_tokens(self):
        rng = np.random.default_rng(1)
        out = token_swap_transform({"name": "a b c"}, rng)
        assert sorted(out["name"].split()) == ["a", "b", "c"]

    def test_null_out_keeps_minimum_signal(self):
        rng = np.random.default_rng(0)
        record = {"a": "x", "b": "y", "c": "z"}
        out = null_out_transform(record, rng)
        remaining = sum(1 for v in out.values() if v is not None)
        assert remaining == 2

    def test_null_out_skips_sparse_records(self):
        rng = np.random.default_rng(0)
        record = {"a": "x", "b": None, "c": "z"}
        out = null_out_transform(record, rng)
        assert sum(1 for v in out.values() if v is not None) == 2


class TestAugmentationPipeline:
    def test_multiplier_controls_size(self, labeled_pairs):
        pipeline = AugmentationPipeline(multiplier=3, rng=0)
        out = pipeline.augment(labeled_pairs)
        assert len(out) == len(labeled_pairs) * 4

    def test_labels_preserved(self, labeled_pairs):
        out = AugmentationPipeline(multiplier=5, rng=0).augment(labeled_pairs)
        label_counts = {0: 0, 1: 0}
        for _, _, label in out:
            label_counts[label] += 1
        assert label_counts[1] == 6
        assert label_counts[0] == 6

    def test_originals_included(self, labeled_pairs):
        out = AugmentationPipeline(multiplier=1, rng=0).augment(labeled_pairs)
        originals = [(a, b, y) for a, b, y in out if (a, b, y) in [tuple(p) for p in labeled_pairs]]
        assert len(originals) >= len(labeled_pairs)

    def test_zero_multiplier_shuffles_only(self, labeled_pairs):
        out = AugmentationPipeline(multiplier=0, swap_pairs=False, rng=0).augment(labeled_pairs)
        assert len(out) == len(labeled_pairs)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError):
            AugmentationPipeline(multiplier=-1)

    def test_inputs_not_mutated(self, labeled_pairs):
        import copy

        snapshot = copy.deepcopy(labeled_pairs)
        AugmentationPipeline(multiplier=4, rng=0).augment(labeled_pairs)
        assert labeled_pairs == snapshot

    def test_convenience_function(self, labeled_pairs):
        out = augment_er_pairs(labeled_pairs, multiplier=2, rng=0)
        assert len(out) == 6

    def test_default_transform_set(self):
        assert len(default_er_transforms()) == 4
