"""Tests for the shared utility layer (rng, timing, validation, init)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.nn import init
from repro.utils import (
    Timer,
    check_fitted,
    check_positive,
    check_probability,
    check_same_length,
    ensure_rng,
    spawn_rng,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(3)
        b = ensure_rng(42).random(3)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent_children(self):
        parent = ensure_rng(0)
        children = spawn_rng(parent, 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_validates_n(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), 0)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        check_positive("x", 0.0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        check_probability("p", 0.5)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_same_length(self):
        check_same_length("a", [1], "b", [2])
        with pytest.raises(ValueError):
            check_same_length("a", [1], "b", [2, 3])

    def test_check_fitted(self):
        class Estimator:
            model_ = None

        with pytest.raises(RuntimeError, match="fit"):
            check_fitted(Estimator(), "model_")
        fitted = Estimator()
        fitted.model_ = object()
        check_fitted(fitted, "model_")


class TestInitializers:
    def test_xavier_bounds(self):
        weights = init.xavier_uniform((50, 50), rng=0)
        limit = np.sqrt(6.0 / 100)
        assert np.all(np.abs(weights) <= limit)

    def test_he_normal_scale(self):
        weights = init.he_normal((2000, 100), rng=0)
        assert np.isclose(weights.std(), np.sqrt(2.0 / 100), rtol=0.1)

    def test_uniform_scale(self):
        weights = init.uniform((100,), scale=0.1, rng=0)
        assert np.all(np.abs(weights) <= 0.1)

    def test_zeros(self):
        assert np.all(init.zeros((3, 4)) == 0.0)

    def test_orthogonal_is_orthogonal(self):
        q = init.orthogonal((16, 16), rng=0)
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-8)

    def test_orthogonal_rectangular(self):
        q = init.orthogonal((8, 4), rng=0)
        assert np.allclose(q.T @ q, np.eye(4), atol=1e-8)

    def test_fans_validation(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((), rng=0)
