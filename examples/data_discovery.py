"""Data discovery over an enterprise lake (paper Section 5.1).

    python examples/data_discovery.py

Builds an enterprise knowledge graph, discovers semantic column links with
the coherent-groups matcher (including links with *no shared strings*),
and answers Google-style dataset-search queries that lexical engines
cannot.
"""

from __future__ import annotations

from repro.data import Table, World
from repro.discovery import (
    BM25SearchEngine,
    EmbeddingSearchEngine,
    EnterpriseKnowledgeGraph,
    SemanticMatcher,
    centered_vector_fn,
    column_node,
    one_to_one,
)
from repro.text import SkipGram, SubwordEmbeddings


def main() -> None:
    world = World(0)
    people = world.people(80)
    staff = Table.from_records("staff_records", [
        {"sid": p.person_id, "full_name": p.name, "work_city": p.city,
         "dept": p.department_name} for p in people[:40]
    ])
    directory = Table.from_records("person_directory", [
        {"pid": p.person_id, "person": p.name, "location_town": p.city,
         "division": p.department_name} for p in people[40:]
    ])
    restaurants = Table.from_records("restaurant_guide", world.restaurants(40))

    # Embeddings from the enterprise corpus + schema glossaries.
    corpus = world.corpus(2500)
    glossary = [
        ["full", "name", "person", "people", "employee", "staff"],
        ["work", "city", "location", "town", "place"],
        ["dept", "division", "department", "unit"],
        ["sid", "pid", "id", "identifier"],
    ] * 40
    model = SkipGram(dim=40, window=6, epochs=12, rng=0).fit(corpus + glossary)
    vector_fn = centered_vector_fn(model, SubwordEmbeddings(model).vector)

    # 1. Semantic column matching (coherent groups handle multi-word and
    #    OOV column names; 'work_city' links to 'location_town' with zero
    #    shared strings).
    matcher = SemanticMatcher(vector_fn, model.dim, name_weight=0.5)
    links = one_to_one(matcher.match_tables(staff, directory, threshold=0.35))
    print("discovered semantic links:")
    for link in links:
        print(f"  {link.table_a}.{link.column_a} <-> {link.table_b}.{link.column_b}"
              f"  (score {link.score:.2f}, name {link.name_score:.2f},"
              f" values {link.value_score:.2f})")

    # 2. Materialise the links in the enterprise knowledge graph and walk it.
    ekg = EnterpriseKnowledgeGraph()
    for table in (staff, directory, restaurants):
        ekg.add_table(table)
    for link in links:
        ekg.add_semantic_link(
            column_node(link.table_a, link.column_a),
            column_node(link.table_b, link.column_b),
            score=link.score,
        )
    print("\ntables related to staff_records via the EKG:",
          ekg.related_tables("staff_records"))

    # 3. Google-style dataset search with a paraphrased query: none of the
    #    query words appear in the winning table.
    lake = [staff, directory, restaurants]
    semantic_engine = EmbeddingSearchEngine(vector_fn, model.dim)
    semantic_engine.add_tables(lake)
    lexical_engine = BM25SearchEngine()
    lexical_engine.add_tables(lake)

    query = "served downtown popular"
    print(f"\nquery: {query!r}")
    print("  semantic:", semantic_engine.search(query, topn=3))
    print("  bm25    :", lexical_engine.search(query, topn=3))


if __name__ == "__main__":
    main()
