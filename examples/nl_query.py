"""Natural-language querying with a personalized vocabulary (paper §5.3).

    python examples/nl_query.py

"Alexa/Siri/Cortana for Data Curation": EchoQuery-style plain-language
questions over a relation, where the engine *learns the user's own words*
for schema elements — the paper's personalized-vocabulary idea.
"""

from __future__ import annotations

from repro.data import Table, World
from repro.nlq import QueryEngine, ResolutionError


def main() -> None:
    world = World(0)
    people = world.people(60)
    table = Table.from_records("staff", [
        {"name": p.name, "work_city": p.city, "dept": p.department_name,
         "compensation": 40 + 10 * int(p.department_id)}
        for p in people
    ])
    engine = QueryEngine(table)

    questions = [
        "how many rows where dept is marketing",
        "show name where work_city is paris",
        "average compensation by dept",
        "max compensation where dept is finance",
    ]
    for question in questions:
        answer = engine.ask(question)
        value = answer.value
        if isinstance(value, Table):
            value = value.column(value.columns[0])[:5]
        print(f"Q: {question}")
        print(f"A: {value}   [{answer.explanation()}]\n")

    # The personalized-vocabulary moment: the analyst says "salary", the
    # schema says "compensation".
    question = "average salary where city is paris"
    print(f"Q: {question}")
    try:
        engine.ask(question)
    except ResolutionError as error:
        print(f"A: {error}")
    print("   (user: 'by salary I mean the compensation column')")
    engine.teach("salary", "compensation")
    answer = engine.ask(question)
    print(f"A: {answer.value}   [{answer.explanation()}]")


if __name__ == "__main__":
    main()
