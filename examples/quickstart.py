"""Quickstart: match dirty records across two tables with DeepER.

Runs in under a minute on a laptop CPU::

    python examples/quickstart.py

Walks the core loop of the library: generate an entity-matching benchmark
(two dirty tables + gold matches), pre-train word embeddings on the tables'
own text (unsupervised), train DeepER on a small labelled sample, and
evaluate against the gold standard.
"""

from __future__ import annotations

import numpy as np

from repro.data import citations_benchmark
from repro.embeddings import tuple_documents
from repro.er import DeepER, classification_prf
from repro.text import SkipGram, SubwordEmbeddings


def main() -> None:
    # 1. A DBLP-ACM-style benchmark: two dirty bibliography tables with
    #    ground-truth matches (typos, abbreviations, nulls included).
    bench = citations_benchmark(n_entities=200, rng=0)
    print(f"table A: {bench.table_a.num_rows} rows, "
          f"table B: {bench.table_b.num_rows} rows, "
          f"gold matches: {len(bench.matches)}")
    a, b = sorted(bench.matches)[0]
    print("example match:")
    print("  A:", bench.record_a(a))
    print("  B:", bench.record_b(b))

    # 2. Unsupervised pre-training: skip-gram embeddings from the tables'
    #    own text (no labels needed) + subword vectors for typo'd tokens.
    documents = tuple_documents([bench.table_a, bench.table_b])
    word_documents = [
        [token for value in doc for token in str(value).split()]
        for doc in documents
    ]
    model = SkipGram(dim=40, window=8, epochs=15, rng=0).fit(word_documents)
    subword = SubwordEmbeddings(model)
    print(f"\npre-trained {len(model.vocabulary)} word vectors (dim={model.dim})")

    # 3. A small labelled sample (the part that costs expert time).
    labeled = bench.labeled_pairs(negative_ratio=5, rng=1)
    triples = [(bench.record_a(x), bench.record_b(y), label) for x, y, label in labeled]
    split = int(0.7 * len(triples))
    train, test = triples[:split], triples[split:]
    print(f"training on {len(train)} labelled pairs "
          f"({sum(y for _, _, y in train)} positives)")

    # 4. DeepER: compose tuple embeddings, classify pairs.
    matcher = DeepER(
        model, bench.compare_columns, composition="sif",
        vector_fn=subword.vector, rng=0,
    ).fit(train, epochs=50)

    test_pairs = [(x, y) for x, y, _ in test]
    test_labels = np.array([label for _, _, label in test])
    prf = classification_prf(test_labels, matcher.predict(test_pairs))
    print(f"\nheld-out matching quality: {prf}")

    # 5. Inspect one prediction.
    probabilities = matcher.predict_proba(test_pairs[:3])
    for (record_a, record_b), p in zip(test_pairs[:3], probabilities):
        print(f"\nP(match)={p:.3f}")
        print("  A:", {k: record_a[k] for k in bench.compare_columns})
        print("  B:", {k: record_b[k] for k in bench.compare_columns})


if __name__ == "__main__":
    main()
