"""Local vs distributed representations — the paper's Figure 3, live.

    python examples/local_vs_distributed.py

One-hot ("local") vectors carry zero similarity signal: king ⊥ queen.
Distributed representations learned by skip-gram recover the semantic
geometry — including, with enough data, the famous analogy arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.text import OneHotEncoder, SkipGram, Vocabulary, cosine


def main() -> None:
    words = ["man", "woman", "boy", "girl", "prince", "princess", "queen", "king"]

    # --- Local (one-hot) representations: Figure 3(a). ------------------ #
    vocabulary = Vocabulary.from_documents([words])
    onehot = OneHotEncoder(vocabulary)
    print("local (one-hot) representations:")
    print(f"  dimension = vocabulary size = {onehot.dim}")
    print(f"  cosine(king, queen)  = {cosine(onehot.encode('king'), onehot.encode('queen')):.2f}")
    print(f"  cosine(king, man)    = {cosine(onehot.encode('king'), onehot.encode('man')):.2f}")
    print("  every pair is orthogonal: no similarity structure at all")

    # --- Distributed representations: Figure 3(b). ---------------------- #
    # A corpus where royalty/gender/age occur in telling contexts.
    rng = np.random.default_rng(0)
    templates = [
        "the {r} ruled the kingdom from the castle",
        "the {r} wore the crown at the royal court",
        "the young {y} played outside in the garden",
        "the {y} went to school in the morning",
        "the {g} spoke at the town meeting",
        "the {g} worked in the village all day",
    ]
    royalty = ["king", "queen", "prince", "princess", "monarch"]
    youth = ["boy", "girl", "prince", "princess"]
    general = ["man", "woman", "boy", "girl"]
    documents = []
    for _ in range(1500):
        template = templates[int(rng.integers(len(templates)))]
        documents.append(
            template.format(
                r=royalty[int(rng.integers(len(royalty)))],
                y=youth[int(rng.integers(len(youth)))],
                g=general[int(rng.integers(len(general)))],
            ).split()
        )
    model = SkipGram(dim=24, window=4, epochs=10, rng=0).fit(documents)

    # Small corpora produce anisotropic spaces (everything shares a large
    # common direction); centering on the vocabulary mean reveals the
    # actual semantic contrast.
    mean = model.vectors_.mean(axis=0)

    def centered(word: str) -> np.ndarray:
        return model.vector(word) - mean

    print("\ndistributed representations (skip-gram, dim=24, centered):")
    for a, b in [("king", "queen"), ("king", "monarch"), ("king", "boy"),
                 ("girl", "princess"), ("girl", "man")]:
        print(f"  cosine({a}, {b}) = {cosine(centered(a), centered(b)):+.2f}")
    print("\nnearest neighbours of 'king':", model.most_similar("king", topn=3))
    print("royalty words cluster; youth words cluster — the geometry IS the semantics")


if __name__ == "__main__":
    main()
