"""Data cleaning end to end (paper Section 5.3).

    python examples/imputation_and_repair.py

Injects BART-style errors into a clean relation (nulls, FD violations,
numeric outliers), then cleans it back **in the right order**:

1. detect numeric outliers (z-score for marginal wild values; see E14 for
   where the autoencoder detector is needed instead) and blank them;
2. DAE multiple imputation fills all gaps from tuple- and relation-level
   patterns;
3. minimal FD repair restores constraint consistency.

Every stage is scored against the exact injected ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning import (
    DAEImputer,
    FDRepairer,
    MeanModeImputer,
    ZScoreDetector,
    evaluate_imputation,
    repair_quality,
)
from repro.data import ErrorGenerator, Table, World, coerce_numeric, violation_rate


def main() -> None:
    # A clean relation with structure: capital is determined by country,
    # population correlates with country.
    rng = np.random.default_rng(0)
    base, fds = World(0).locations_table(200)
    populations = {c: float(rng.uniform(10, 100)) for c in sorted(set(base.column("country")))}
    clean = Table("demo", base.columns + ["population"])
    for i in range(base.num_rows):
        row = list(base.row(i))
        clean.append(row + [round(populations[row[1]] * rng.uniform(0.97, 1.03), 2)])
    print(f"clean table: {clean}")

    # Controlled corruption with exact cell-level ground truth.
    generator = ErrorGenerator(rng=1)
    dirty, report = generator.corrupt(
        clean,
        null_rate=0.12,
        fd_violation_rate=0.05,
        outlier_rate=0.03,
        fds=fds,
        protected_columns={"person"},
    )
    print(f"injected {len(report)} errors: "
          + ", ".join(f"{kind}={len(report.by_kind(kind))}"
                      for kind in ("null", "fd_violation", "outlier")))
    print(f"missing rate {dirty.missing_rate():.1%}, "
          f"FD violation rate {violation_rate(dirty, fds):.1%}")

    # --- Stage 1: outlier detection, then blank the flagged cells. ------ #
    outlier_rows = {e.row for e in report.by_kind("outlier")}
    detector = ZScoreDetector(z=3.0, numeric_columns=["population"]).fit(dirty)
    flagged = detector.predict(dirty)
    found = {int(i) for i in np.flatnonzero(flagged)}
    print(f"\nstage 1 — z-score outliers: flagged {len(found)} rows "
          f"({len(found & outlier_rows)} of {len(outlier_rows)} true outliers)")
    staged = dirty.copy()
    for row in found:
        staged.set_cell(row, "population", None)

    # --- Stage 2: DAE multiple imputation fills every gap. -------------- #
    null_cells = {(e.row, e.column) for e in report.by_kind("null")}
    null_cells |= {(row, "population") for row in found}
    dae = DAEImputer(numeric_columns=["population"], epochs=60, n_draws=5, rng=0)
    dae_filled = dae.fit_transform(staged)
    mean_filled = MeanModeImputer(["population"]).fit_transform(staged)
    print("stage 2 — imputation (scored on blanked cells):")
    for name, table in [("DAE (MIDA)", dae_filled), ("mean/mode", mean_filled)]:
        metrics = evaluate_imputation(table, clean, null_cells, ["population"])
        print(f"  {name}: categorical accuracy {metrics['categorical_accuracy']:.2f},"
              f" numeric NRMSE {metrics['numeric_nrmse']:.2f}")

    # --- Stage 3: minimal FD repair. ------------------------------------ #
    violation_cells = {(e.row, e.column) for e in report.by_kind("fd_violation")}
    repaired, repair_report = FDRepairer(fds).repair(dae_filled)
    quality = repair_quality(repair_report, clean, violation_cells)
    print(f"\nstage 3 — FD repair: {len(repair_report)} cells changed, "
          f"precision {quality['precision']:.2f}, recall {quality['recall']:.2f}")

    print(f"\nfinal table: missing {repaired.missing_rate():.1%}, "
          f"FD violations {violation_rate(repaired, fds):.1%}")


if __name__ == "__main__":
    main()
