"""THE PROMISED LAND: a self-driving curation pipeline (§3.4, Figure 1).

    python examples/self_driving_pipeline.py

One analyst query against a lake of four tables; the pipeline discovers
the relevant sources, resolves entities across them, consolidates golden
records, imputes the gaps and repairs constraint violations — with a full
provenance report.
"""

from __future__ import annotations

from repro.cleaning import KNNImputer
from repro.data import FunctionalDependency, Table, World, restaurants_benchmark
from repro.discovery import BM25SearchEngine
from repro.er import FeatureBasedER, TokenBlocker, precision_recall_f1
from repro.orchestration import (
    ConsolidateStep,
    CurationPipeline,
    DiscoverStep,
    ImputeStep,
    PipelineContext,
    RepairStep,
    ResolveEntitiesStep,
)


def main() -> None:
    # The lake: two dirty restaurant sources + two distractor tables.
    bench = restaurants_benchmark(n_entities=150, noise=0.3, null_rate=0.06, rng=7)
    world = World(9)
    employees, _ = world.employees_table(50)
    catalog = Table.from_records("catalog", world.products(50))
    lake = {
        bench.table_a.name: bench.table_a,
        bench.table_b.name: bench.table_b,
        "employees": employees,
        "catalog": catalog,
    }
    engine = BM25SearchEngine()
    engine.add_tables(list(lake.values()))

    # A matcher trained once (could also come from weak supervision, E10).
    labeled = bench.labeled_pairs(negative_ratio=4, rng=8)
    matcher = FeatureBasedER(bench.compare_columns).fit(
        [(bench.record_a(a), bench.record_b(b), y) for a, b, y in labeled]
    )
    blocker = TokenBlocker(bench.compare_columns)

    def candidates(table_a: Table, table_b: Table):
        records_a = [table_a.row_dict(i) for i in range(len(table_a))]
        records_b = [table_b.row_dict(i) for i in range(len(table_b))]
        ids_a = [str(v) for v in table_a.column("restaurant_id")]
        ids_b = [str(v) for v in table_b.column("restaurant_id")]
        return blocker.candidate_pairs(records_a, ids_a, records_b, ids_b)

    pipeline = CurationPipeline([
        DiscoverStep(engine, "restaurant cuisine city phone", top_k=2,
                     output_keys=["source_a", "source_b"]),
        ResolveEntitiesStep(matcher, "source_a", "source_b", "restaurant_id",
                            candidate_fn=candidates, threshold=0.5),
        ConsolidateStep("source_a", "source_b", "restaurant_id", "merged"),
        ImputeStep(KNNImputer(k=3), "merged", "imputed"),
        RepairStep([FunctionalDependency(("name", "address"), "city")],
                   "imputed", "final"),
    ])
    print("plan:")
    print(pipeline.describe())

    context = PipelineContext()
    context.artifacts["lake"] = lake
    context, reports = pipeline.run(context)

    print("\nrun report:")
    for report in reports:
        print(" ", report)

    predicted = {
        (a, b) if a.startswith("r") else (b, a)
        for a, b in context.artifacts["matches"]
    }
    final = context.table("final")
    print("\noutcome:")
    print(f"  entity resolution vs gold: {precision_recall_f1(predicted, bench.matches)}")
    print(f"  rows: {bench.table_a.num_rows}+{bench.table_b.num_rows} "
          f"-> {final.num_rows} (duplicates merged)")
    print(f"  missing rate: {final.missing_rate():.1%}")


if __name__ == "__main__":
    main()
