"""Data transformation by program synthesis (paper Section 4).

    python examples/program_synthesis.py

Shows the three transformation routes side by side:

* FlashFill-style enumerative synthesis from 2-3 examples (symbolic);
* semantic transformations that no regex DSL can express
  (France → Paris), discovered from a table catalog;
* neural program induction (pointer-generator seq2seq) — the DL
  comparator, which needs far more examples.
"""

from __future__ import annotations

from repro.data import World
from repro.transform import (
    LookupTransformer,
    Seq2SeqTransformer,
    Synthesizer,
    default_tasks,
)


def main() -> None:
    # 1. Syntactic transformations from input-output examples.
    print("=== FlashFill-style synthesis ===")
    examples = [("John Smith", "J. Smith"), ("Jane Doe", "J. Doe")]
    program = Synthesizer().synthesize(examples)
    print(f"examples: {examples}")
    print(f"program:  {program}")
    for name in ("Alan Turing", "Grace Hopper"):
        print(f"  {name!r} -> {program.evaluate(name)!r}")

    examples = [("2015-03-20", "03/20/2015")]
    program = Synthesizer().synthesize(examples)
    print(f"\nexamples: {examples}")
    print(f"program:  {program}")
    print(f"  '2018-11-02' -> {program.evaluate('2018-11-02')!r}")

    # 2. Semantic transformations via transformation discovery.
    print("\n=== semantic transformation (France -> Paris) ===")
    world = World(0)
    locations, _ = world.locations_table(100)
    transformer = LookupTransformer([locations]).fit(
        [("france", "paris"), ("germany", "berlin")]
    )
    mapping = transformer.mapping_
    print(f"discovered mapping: {mapping.table_name}.{mapping.input_column}"
          f" -> {mapping.table_name}.{mapping.output_column}")
    for country in ("italy", "japan", "egypt"):
        print(f"  {country} -> {transformer.transform(country)}")

    # 3. Neural program induction: sample efficiency comparison.
    print("\n=== neural induction vs DSL (examples needed) ===")
    task = [t for t in default_tasks() if t.name == "phone_area_code"][0]
    holdout = task.examples(10, rng=99)

    dsl_program = Synthesizer().synthesize(task.examples(2, rng=0))
    dsl_accuracy = sum(
        1 for source, target in holdout if dsl_program.evaluate(source) == target
    ) / len(holdout)
    print(f"DSL with 2 examples:          accuracy {dsl_accuracy:.2f}  ({dsl_program})")

    for n in (4, 48):
        model = Seq2SeqTransformer(embedding_dim=16, hidden_dim=48, max_len=20, rng=0)
        model.fit(task.examples(n, rng=0), epochs=80, lr=8e-3)
        print(f"seq2seq with {n:2d} examples:     accuracy {model.accuracy(holdout):.2f}")


if __name__ == "__main__":
    main()
