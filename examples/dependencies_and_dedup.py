"""Constraints, profiling, dedup and enrichment — the §3.1 toolbox.

    python examples/dependencies_and_dedup.py

Tours the relational-curation utilities around the DL core:

1. profile a dirty table (types, missingness, candidate keys);
2. discover approximate FDs the dirt would hide from exact mining;
3. declare a conditional FD and a matching dependency and enforce them;
4. deduplicate a table into golden records;
5. enrich it by automatically discovering a joinable reference table.
"""

from __future__ import annotations

from repro.data import (
    ErrorGenerator,
    MatchingDependency,
    SimilarityClause,
    Table,
    World,
    cfd,
    discover_approximate_fds,
    discover_fds,
    profile_table,
)
from repro.discovery import enrich, find_inclusion_dependencies
from repro.er import dedupe_table, jaro_winkler, trigram_jaccard


def main() -> None:
    world = World(0)
    clean, fds = world.locations_table(120)
    dirty, _ = ErrorGenerator(rng=1).corrupt(
        clean, null_rate=0.05, fd_violation_rate=0.04, fds=fds,
        protected_columns={"person"},
    )

    # 1. Profile.
    print(profile_table(dirty).summary())

    # 2. Exact FD mining dies on dirty data; approximate mining survives.
    print("\nexact FDs found:", [str(f) for f in discover_fds(dirty, max_lhs=1)])
    approx = discover_approximate_fds(dirty, max_error=0.1, max_lhs=1)
    print("approximate FDs (g3 error):")
    for dependency, error in approx[:4]:
        print(f"  {dependency}  (error {error:.3f})")

    # 3a. Conditional FD: zip→city only where country='uk'.
    addresses = Table("addr", ["country", "zip", "city"], rows=[
        ["uk", "ec1", "london"], ["uk", "ec1", "london"], ["uk", "ec1", "leeds"],
        ["us", "10001", "new york"], ["us", "10001", "boston"],
    ])
    dependency = cfd({"country": "uk", "zip": "_"}, "city")
    print(f"\nCFD {dependency}: violations {dependency.violations(addresses)}"
          " (the US conflict is out of scope)")

    # 3b. Matching dependency: similar name+city => same phone.
    md = MatchingDependency(
        clauses=(
            SimilarityClause("name", jaro_winkler, 0.85),
            SimilarityClause("city", trigram_jaccard, 0.5),
        ),
        rhs_column="phone",
    )
    crm = Table("crm", ["name", "city", "phone"], rows=[
        ["john smith", "paris", "555-1234"],
    ])
    billing = Table("billing", ["name", "city", "phone"], rows=[
        ["jon smith", "paris", "111-0000"],
    ])
    print(f"MD violations before enforce: {md.violations(crm, billing)}")
    crm2, billing2, changed = md.enforce(crm, billing)
    print(f"after enforce ({changed} cells identified): "
          f"crm={crm2.cell(0, 'phone')} billing={billing2.cell(0, 'phone')}")

    # 4. In-table dedup.
    people = Table("people", ["id", "name"], rows=[
        ["1", "john smith"], ["2", "jon smith"], ["3", "maria garcia"],
        ["4", "maria garcia"], ["5", "peter king"],
    ])
    clusters = dedupe_table(
        people, "id",
        lambda a, b: trigram_jaccard(str(a["name"]), str(b["name"])),
        threshold=0.5,
    )
    print(f"\ndedup clusters: {clusters}")

    # 5. Join discovery + enrichment.
    orders = Table("orders", ["oid", "customer", "amount"], rows=[
        ["o1", "c1", 10], ["o2", "c2", 20], ["o3", "c1", 30],
    ])
    customers = Table("customers", ["cid", "cname", "country"], rows=[
        ["c1", "acme", "fr"], ["c2", "globex", "de"],
    ])
    inds = find_inclusion_dependencies(orders, [customers])
    print(f"\ninclusion dependencies: {[str(d) for d in inds]}")
    best = inds[0]
    enriched = enrich(orders, customers, best.column_a, best.column_b)
    print(f"enriched columns: {enriched.columns}")
    print(f"row 0: {enriched.row_dict(0)}")


if __name__ == "__main__":
    main()
