"""The full Figure-5 DeepER pipeline: embed → LSH-block → match → merge.

    python examples/entity_resolution_pipeline.py

Demonstrates the efficiency path of the paper's Section 5.2: instead of
scoring the quadratic cross product, tuples are embedded and blocked with
locality-sensitive hashing, then only candidate pairs are classified, and
finally matched records are consolidated into golden records.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cleaning import consolidate_majority
from repro.data import restaurants_benchmark
from repro.embeddings import tuple_documents
from repro.er import (
    DeepER,
    LSHBlocker,
    pair_completeness,
    precision_recall_f1,
    reduction_ratio,
)
from repro.text import SkipGram, SubwordEmbeddings


def main() -> None:
    bench = restaurants_benchmark(n_entities=250, rng=0)
    records_a = [bench.table_a.row_dict(i) for i in range(len(bench.table_a))]
    records_b = [bench.table_b.row_dict(i) for i in range(len(bench.table_b))]
    ids_a = [str(v) for v in bench.table_a.column(bench.id_column)]
    ids_b = [str(v) for v in bench.table_b.column(bench.id_column)]
    total_pairs = len(ids_a) * len(ids_b)
    print(f"{len(ids_a)} x {len(ids_b)} records -> {total_pairs} possible pairs")

    # Pre-train embeddings + train the matcher (heavier negatives because
    # deployment over candidates is more skewed than any training sample).
    documents = tuple_documents([bench.table_a, bench.table_b])
    word_documents = [
        [t for v in doc for t in str(v).split()] for doc in documents
    ]
    model = SkipGram(dim=40, window=8, epochs=15, rng=0).fit(word_documents)
    subword = SubwordEmbeddings(model)
    labeled = bench.labeled_pairs(negative_ratio=10, rng=1)
    train = [(bench.record_a(a), bench.record_b(b), y) for a, b, y in labeled]
    matcher = DeepER(
        model, bench.compare_columns, composition="sif",
        vector_fn=subword.vector, rng=0,
    ).fit(train, epochs=50)

    # Blocking: hash tuple embeddings, keep only band-bucket collisions.
    start = time.perf_counter()
    blocker = LSHBlocker(n_bits=120, n_bands=24, rng=0)
    candidates = blocker.candidate_pairs(
        matcher.tuple_vectors(records_a), ids_a,
        matcher.tuple_vectors(records_b), ids_b,
    )
    blocking_seconds = time.perf_counter() - start
    print(f"\nLSH blocking: {len(candidates)} candidates "
          f"(reduction {reduction_ratio(len(candidates), total_pairs):.1%}, "
          f"completeness {pair_completeness(candidates, bench.matches):.1%}, "
          f"{blocking_seconds:.2f}s)")

    # Matching over candidates only.
    index_a = dict(zip(ids_a, records_a))
    index_b = dict(zip(ids_b, records_b))
    ordered = sorted(candidates)
    probabilities = matcher.predict_proba(
        [(index_a[a], index_b[b]) for a, b in ordered]
    )
    predicted = {pair for pair, p in zip(ordered, probabilities) if p >= 0.7}
    print(f"predicted {len(predicted)} matches: "
          f"{precision_recall_f1(predicted, bench.matches)}")

    # Consolidation: merge each matched pair into a golden record.
    merged = 0
    for id_a, id_b in sorted(predicted)[:5]:
        cluster = [index_a[id_a], index_b[id_b]]
        golden = consolidate_majority(cluster, bench.compare_columns)
        if merged == 0:
            print("\nexample golden record:")
            print("  A     :", {k: index_a[id_a][k] for k in bench.compare_columns})
            print("  B     :", {k: index_b[id_b][k] for k in bench.compare_columns})
            print("  golden:", golden)
        merged += 1


if __name__ == "__main__":
    main()
