"""Simulated crowdsourcing (paper Section 6.2.6).

Substitutes the crowd platform we do not have: each worker has a latent
sensitivity/specificity and votes accordingly; workers may skip tasks.
The resulting vote matrices feed the same label models as LFs — "inferring
true labels from noisy labels, learning the skill of workers".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.weak.lf import ABSTAIN
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class Worker:
    """A simulated annotator with a binary confusion profile."""

    name: str
    sensitivity: float  # P(vote 1 | true 1)
    specificity: float  # P(vote 0 | true 0)
    response_rate: float = 1.0

    def vote(self, true_label: int, rng: np.random.Generator) -> int:
        if rng.random() > self.response_rate:
            return ABSTAIN
        if true_label == 1:
            return 1 if rng.random() < self.sensitivity else 0
        return 0 if rng.random() < self.specificity else 1


class SimulatedCrowd:
    """A pool of workers with mixed skill levels."""

    def __init__(
        self,
        n_workers: int = 7,
        skill_range: tuple[float, float] = (0.6, 0.95),
        response_rate: float = 0.9,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        check_probability("response_rate", response_rate)
        if not 0.5 <= skill_range[0] <= skill_range[1] <= 1.0:
            raise ValueError(f"skill_range must be within [0.5, 1], got {skill_range}")
        self._rng = ensure_rng(rng)
        self.workers = [
            Worker(
                name=f"worker_{i}",
                sensitivity=float(self._rng.uniform(*skill_range)),
                specificity=float(self._rng.uniform(*skill_range)),
                response_rate=response_rate,
            )
            for i in range(n_workers)
        ]

    def annotate(self, true_labels: np.ndarray) -> np.ndarray:
        """Vote matrix of shape ``(n_examples, n_workers)``."""
        true_labels = np.asarray(true_labels, dtype=np.int64)
        matrix = np.full((true_labels.size, len(self.workers)), ABSTAIN, dtype=np.int64)
        for j, worker in enumerate(self.workers):
            for i, label in enumerate(true_labels):
                matrix[i, j] = worker.vote(int(label), self._rng)
        return matrix

    def true_skills(self) -> list[tuple[float, float]]:
        """(sensitivity, specificity) per worker, for recovery checks."""
        return [(w.sensitivity, w.specificity) for w in self.workers]
