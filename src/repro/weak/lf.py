"""Labeling functions — Snorkel-style weak supervision (paper Section 6.2.4).

A labeling function (LF) votes +1 (positive), 0 (negative) or ``ABSTAIN``
on an example.  ``apply_lfs`` produces the (n_examples, n_lfs) label matrix
the label models consume, plus per-LF coverage/agreement diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

ABSTAIN = -1


@dataclass(frozen=True)
class LabelingFunction:
    """A named weak-labelling heuristic."""

    name: str
    fn: Callable[[object], int]

    def __call__(self, example: object) -> int:
        vote = self.fn(example)
        if vote not in (0, 1, ABSTAIN):
            raise ValueError(
                f"LF {self.name!r} returned {vote!r}; must be 0, 1 or ABSTAIN"
            )
        return vote


def labeling_function(name: str):
    """Decorator: ``@labeling_function("has_same_phone")``."""

    def wrap(fn: Callable[[object], int]) -> LabelingFunction:
        return LabelingFunction(name, fn)

    return wrap


def apply_lfs(lfs: list[LabelingFunction], examples: list[object]) -> np.ndarray:
    """Label matrix ``L[i, j]`` = vote of LF j on example i."""
    if not lfs:
        raise ValueError("need at least one labeling function")
    matrix = np.full((len(examples), len(lfs)), ABSTAIN, dtype=np.int64)
    for j, lf in enumerate(lfs):
        for i, example in enumerate(examples):
            matrix[i, j] = lf(example)
    return matrix


def lf_summary(
    matrix: np.ndarray, lfs: list[LabelingFunction], gold: np.ndarray | None = None
) -> list[dict[str, object]]:
    """Per-LF coverage, overlap/conflict rates and (optional) accuracy."""
    n, m = matrix.shape
    rows = []
    for j, lf in enumerate(lfs):
        votes = matrix[:, j]
        covered = votes != ABSTAIN
        coverage = float(covered.mean())
        others = np.delete(matrix, j, axis=1)
        overlaps = covered & (others != ABSTAIN).any(axis=1)
        conflict = covered & (
            (others != ABSTAIN) & (others != votes[:, None])
        ).any(axis=1)
        record: dict[str, object] = {
            "name": lf.name,
            "coverage": coverage,
            "overlap": float(overlaps.mean()),
            "conflict": float(conflict.mean()),
        }
        if gold is not None and covered.any():
            record["accuracy"] = float((votes[covered] == gold[covered]).mean())
        rows.append(record)
    return rows
