"""Automatic labeling-function generation for ER (paper §6.2.4).

"In fact, in many cases, these weakly labeled data can even be generated
in an automated manner."  Given unlabeled candidate pairs, this module
manufactures threshold labeling functions from per-column string
similarities — no expert in the loop:

* thresholds are calibrated from the *unlabeled* similarity distribution:
  in a blocked candidate pool true matches concentrate in the upper tail,
  so the positive cut is a high quantile and the negative cut a low one;
* each (column, measure) pair yields one LF that votes 1 above the
  positive cut, 0 below the negative cut, and abstains between.

The generated LFs feed the usual label models (majority vote / EM).
"""

from __future__ import annotations

import numpy as np

from repro.data.types import is_missing
from repro.er.features import jaccard_tokens, trigram_jaccard
from repro.utils.rng import ensure_rng
from repro.weak.lf import ABSTAIN, LabelingFunction

_MEASURES = {
    "trigram": trigram_jaccard,
    "jaccard": jaccard_tokens,
}


def _column_similarity(pair, column: str, measure) -> float | None:
    record_a, record_b = pair
    value_a, value_b = record_a.get(column), record_b.get(column)
    if is_missing(value_a) or is_missing(value_b):
        return None
    return measure(str(value_a).lower(), str(value_b).lower())


def auto_labeling_functions(
    pairs: list[tuple[dict, dict]],
    columns: list[str],
    positive_quantile: float = 0.9,
    negative_quantile: float = 0.5,
    min_separation: float = 0.15,
    sample: int = 2000,
    rng: "np.random.Generator | int | None" = 0,
) -> list[LabelingFunction]:
    """Generate threshold LFs calibrated on unlabeled candidate pairs.

    Columns whose similarity distribution is too flat (upper and lower
    quantiles closer than ``min_separation``) produce no LF — they carry no
    signal worth voting on.
    """
    if not 0.0 <= negative_quantile < positive_quantile <= 1.0:
        raise ValueError(
            f"need 0 <= negative_quantile < positive_quantile <= 1, got "
            f"{negative_quantile} / {positive_quantile}"
        )
    rng = ensure_rng(rng)
    if len(pairs) > sample:
        index = rng.choice(len(pairs), size=sample, replace=False)
        calibration = [pairs[i] for i in index]
    else:
        calibration = list(pairs)

    functions: list[LabelingFunction] = []
    for column in columns:
        for measure_name, measure in _MEASURES.items():
            values = [
                s for pair in calibration
                if (s := _column_similarity(pair, column, measure)) is not None
            ]
            if len(values) < 20:
                continue
            high = float(np.quantile(values, positive_quantile))
            low = float(np.quantile(values, negative_quantile))
            if high - low < min_separation:
                continue

            def lf(pair, column=column, measure=measure, high=high, low=low):
                similarity = _column_similarity(pair, column, measure)
                if similarity is None:
                    return ABSTAIN
                if similarity >= high:
                    return 1
                if similarity <= low:
                    return 0
                return ABSTAIN

            functions.append(
                LabelingFunction(f"auto_{column}_{measure_name}", lf)
            )
    return functions
