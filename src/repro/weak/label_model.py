"""Label models: turning noisy votes into probabilistic training labels.

* :class:`MajorityVote` — the obvious baseline;
* :class:`EMLabelModel` — Dawid–Skene-style EM that jointly estimates each
  source's confusion matrix and the latent true labels.  Works both for
  labeling-function matrices (Section 6.2.4) and simulated crowd workers
  (Section 6.2.6) — statistically they are the same inference problem.
"""

from __future__ import annotations

import numpy as np

from repro.weak.lf import ABSTAIN
from repro.utils.validation import check_fitted


class MajorityVote:
    """Probability = fraction of non-abstaining votes that say positive."""

    def fit(self, matrix: np.ndarray) -> "MajorityVote":
        return self

    def predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        votes = np.asarray(matrix)
        counted = votes != ABSTAIN
        positives = ((votes == 1) & counted).sum(axis=1)
        totals = counted.sum(axis=1)
        probs = np.full(votes.shape[0], 0.5)
        has_votes = totals > 0
        probs[has_votes] = positives[has_votes] / totals[has_votes]
        return probs

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        return (self.predict_proba(matrix) > 0.5).astype(int)


class EMLabelModel:
    """Dawid–Skene EM over binary votes with abstentions.

    Model: latent true label y ~ Bernoulli(pi); each source j has
    sensitivity ``alpha_j = P(vote 1 | y=1)`` and specificity
    ``beta_j = P(vote 0 | y=0)``; abstentions are ignored (missing at
    random).  EM alternates posterior inference over y with ML updates of
    (pi, alpha, beta).
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-6, smoothing: float = 1.0) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.class_prior_: float | None = None
        self.sensitivity_: np.ndarray | None = None
        self.specificity_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "EMLabelModel":
        votes = np.asarray(matrix)
        n, m = votes.shape
        posterior = MajorityVote().predict_proba(votes)
        pi = float(np.clip(posterior.mean(), 0.05, 0.95))
        alpha = np.full(m, 0.7)
        beta = np.full(m, 0.7)
        voted_pos = votes == 1
        voted_neg = votes == 0
        for _ in range(self.max_iter):
            # E-step: posterior P(y=1 | votes).
            log_pos = np.log(pi) + (
                voted_pos @ np.log(alpha + 1e-12)
                + voted_neg @ np.log(1 - alpha + 1e-12)
            )
            log_neg = np.log(1 - pi) + (
                voted_pos @ np.log(1 - beta + 1e-12)
                + voted_neg @ np.log(beta + 1e-12)
            )
            shift = np.maximum(log_pos, log_neg)
            new_posterior = np.exp(log_pos - shift) / (
                np.exp(log_pos - shift) + np.exp(log_neg - shift)
            )
            # M-step with Laplace smoothing.
            s = self.smoothing
            pos_mass = new_posterior
            neg_mass = 1.0 - new_posterior
            alpha = (voted_pos.T @ pos_mass + s) / (
                (voted_pos | voted_neg).T @ pos_mass + 2 * s
            )
            beta = (voted_neg.T @ neg_mass + s) / (
                (voted_pos | voted_neg).T @ neg_mass + 2 * s
            )
            pi = float(np.clip(pos_mass.mean(), 0.01, 0.99))
            if np.abs(new_posterior - posterior).max() < self.tol:
                posterior = new_posterior
                break
            posterior = new_posterior
        self.class_prior_ = pi
        self.sensitivity_ = alpha
        self.specificity_ = beta
        return self

    def predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        check_fitted(self, "sensitivity_")
        votes = np.asarray(matrix)
        voted_pos = votes == 1
        voted_neg = votes == 0
        log_pos = np.log(self.class_prior_) + (
            voted_pos @ np.log(self.sensitivity_ + 1e-12)
            + voted_neg @ np.log(1 - self.sensitivity_ + 1e-12)
        )
        log_neg = np.log(1 - self.class_prior_) + (
            voted_pos @ np.log(1 - self.specificity_ + 1e-12)
            + voted_neg @ np.log(self.specificity_ + 1e-12)
        )
        shift = np.maximum(log_pos, log_neg)
        return np.exp(log_pos - shift) / (
            np.exp(log_pos - shift) + np.exp(log_neg - shift)
        )

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        return (self.predict_proba(matrix) > 0.5).astype(int)

    def fit_predict_proba(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).predict_proba(matrix)
