"""Weak supervision (paper Sections 6.2.4, 6.2.6): labeling functions,
majority-vote and Dawid-Skene label models, and a simulated crowd."""

from repro.weak.auto import auto_labeling_functions
from repro.weak.crowd import SimulatedCrowd, Worker
from repro.weak.label_model import EMLabelModel, MajorityVote
from repro.weak.lf import (
    ABSTAIN,
    LabelingFunction,
    apply_lfs,
    labeling_function,
    lf_summary,
)

__all__ = [
    "ABSTAIN",
    "LabelingFunction",
    "labeling_function",
    "apply_lfs",
    "lf_summary",
    "auto_labeling_functions",
    "MajorityVote",
    "EMLabelModel",
    "SimulatedCrowd",
    "Worker",
]
