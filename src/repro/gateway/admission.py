"""Per-route token-bucket admission control.

One :class:`TokenBucket` per configured route: a request is admitted when
the bucket holds at least one token (continuous refill at ``rate`` tokens
per simulated second, capped at ``burst``), and shed otherwise.  Routes
without a configured bucket are never shed here — the scheduler's queue
is the only limit.

Shedding is *deterministic*: the decision is a pure function of the
bucket state and the arrival timestamp, so the same workload sheds the
same requests every run.  The decision itself is computed by the pure
:meth:`TokenBucket.preview` under the validated fault site
``gateway.admit`` (retried under ``HOT_POLICY``) and only *committed* to
the bucket after the retry layer has accepted the return value — an
injected error or corrupted return never moves the bucket, so a
recovered run is bit-identical to a fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.retry import HOT_POLICY, retry_call
from repro.obs.metrics import REGISTRY as _OBS

__all__ = ["AdmissionController", "AdmitDecision", "TokenBucket"]


@dataclass(frozen=True)
class AdmitDecision:
    """Outcome of one admission check: pure data, safe to recompute."""

    admitted: bool
    tokens_after: float
    at: float


def _valid_decision(result: object) -> bool:
    return (
        isinstance(result, AdmitDecision)
        and isinstance(result.admitted, bool)
        and isinstance(result.tokens_after, float)
        and result.tokens_after >= 0.0
    )


class TokenBucket:
    """Continuous-refill token bucket on simulated time."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._updated = 0.0

    def preview(self, now: float) -> AdmitDecision:
        """The admission decision at ``now`` — pure, nothing is consumed."""
        refilled = min(
            float(self.burst),
            self._tokens + max(0.0, now - self._updated) * self.rate,
        )
        if refilled >= 1.0:
            return AdmitDecision(admitted=True, tokens_after=refilled - 1.0, at=now)
        return AdmitDecision(admitted=False, tokens_after=refilled, at=now)

    def commit(self, decision: AdmitDecision) -> None:
        """Apply a previewed decision to the bucket state."""
        self._tokens = decision.tokens_after
        self._updated = decision.at


class AdmissionController:
    """Route name → optional :class:`TokenBucket`, with fault wiring.

    ``policies`` maps route names to ``(rate, burst)`` pairs; routes
    absent from the mapping are always admitted.
    """

    def __init__(self, policies: "dict[str, tuple[float, int]] | None" = None) -> None:
        self._buckets: "dict[str, TokenBucket]" = {}
        for route in sorted(policies or {}):
            rate, burst = (policies or {})[route]
            self._buckets[route] = TokenBucket(rate, burst)

    def decide(self, route: str, now: float) -> AdmitDecision:
        """Admit or shed one arrival on ``route`` at simulated time ``now``."""
        bucket = self._buckets.get(route)
        if bucket is None:
            decision = AdmitDecision(admitted=True, tokens_after=1.0, at=now)
        else:
            decision = retry_call(
                bucket.preview,
                now,
                site="gateway.admit",
                policy=HOT_POLICY,
                validate=_valid_decision,
            )
            bucket.commit(decision)
        if _OBS.enabled:
            if decision.admitted:
                _OBS.counter("gateway.admitted").inc()
            else:
                _OBS.counter("gateway.shed").inc()
        return decision
