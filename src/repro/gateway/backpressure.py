"""High/low-water backpressure between the online path and batch work.

The :class:`BackpressureValve` watches the *interactive* queue depth and
gates everything that is allowed to steal server time from it: batch
dispatch groups inside the gateway, and — through
:meth:`retrain_allowed` — `repro.loop` background retrains outside it.

Semantics (all on simulated time, all deterministic):

* **pause** the moment observed depth reaches ``high_water``;
* **resume** only after depth has stayed at or below ``low_water``
  *continuously* for ``cooldown`` simulated seconds.

The cooldown dwell is what makes the valve useful under bursty traffic:
an open-loop burst drains to depth 0 for a few hundred microseconds
between micro-batches, and a pure high/low hysteresis would reopen in
every such gap — admitting a long batch job exactly where it does the
most damage.  Requiring the queue to *hold* below low water turns
"momentarily empty" and "actually in a trough" into different states.

The valve never drops or reorders work; it only decides *when* batch
groups may run, so answers are unaffected by construction.
"""

from __future__ import annotations

from repro.obs.metrics import REGISTRY as _OBS

__all__ = ["BackpressureValve"]


class BackpressureValve:
    """Hysteresis valve with a cooldown dwell on the resume edge."""

    def __init__(self, high_water: int, low_water: int, cooldown: float = 0.0) -> None:
        if high_water < 1:
            raise ValueError(f"high_water must be >= 1, got {high_water}")
        if not 0 <= low_water < high_water:
            raise ValueError(
                f"low_water must be in [0, high_water), got {low_water} "
                f"with high_water={high_water}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.high_water = int(high_water)
        self.low_water = int(low_water)
        self.cooldown = float(cooldown)
        self.paused = False
        self.pauses = 0
        self.resumes = 0
        self.events: "list[dict]" = []
        self._candidate_since: float | None = None

    def observe(self, now: float, depth: int) -> None:
        """Feed one ``(time, interactive queue depth)`` observation."""
        if depth >= self.high_water:
            self._candidate_since = None
            if not self.paused:
                self.paused = True
                self.pauses += 1
                self.events.append({"at": now, "event": "pause", "depth": depth})
                if _OBS.enabled:
                    _OBS.counter("gateway.backpressure.pauses").inc()
            return
        if not self.paused:
            return
        if depth <= self.low_water:
            if self._candidate_since is None:
                self._candidate_since = now
            # Compare against the same sum resume_time() hands the event
            # loop as a wake-up: with ``now - since >= cooldown`` instead,
            # float rounding can make the dwell unsatisfiable at exactly
            # the announced wake time and spin the loop forever.
            if now >= self._candidate_since + self.cooldown:
                self._resume(now, depth)
        else:
            self._candidate_since = None

    def _resume(self, now: float, depth: int) -> None:
        self.paused = False
        self.resumes += 1
        self._candidate_since = None
        self.events.append({"at": now, "event": "resume", "depth": depth})
        if _OBS.enabled:
            _OBS.counter("gateway.backpressure.resumes").inc()

    def resume_time(self) -> float | None:
        """Earliest simulated time the dwell could complete, if any.

        The gateway uses this as a wake-up event when only batch work is
        pending: without it, a paused valve with an empty interactive
        queue would deadlock the event loop (nothing dispatchable, no
        arrival to advance the clock).
        """
        if self.paused and self._candidate_since is not None:
            return self._candidate_since + self.cooldown
        return None

    def batch_allowed(self, now: float, depth: int) -> bool:
        """May a batch group dispatch at ``now``?  Completes due dwells."""
        if (
            self.paused
            and self._candidate_since is not None
            and depth <= self.low_water
            and now >= self._candidate_since + self.cooldown
        ):
            self._resume(now, depth)
        return not self.paused

    def retrain_allowed(self) -> bool:
        """Gate for `repro.loop` background retrains (see ``retrain_gate``)."""
        return not self.paused

    def snapshot(self) -> dict:
        """Deterministic state summary for the health router."""
        return {
            "state": "paused" if self.paused else "open",
            "high_water": self.high_water,
            "low_water": self.low_water,
            "cooldown": self.cooldown,
            "pauses": self.pauses,
            "resumes": self.resumes,
        }
