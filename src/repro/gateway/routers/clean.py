"""The clean route: FD repair over a payload table.

Payload contract: ``payload["table"]`` is a :class:`repro.data.table.
Table`.  Each request is repaired independently with the router's fitted
:class:`~repro.cleaning.repair.FDRepairer` (majority-vote minimal
repair — deterministic, input untouched); the answer summarizes the
repairs per cell so it is small, canonical-JSON friendly and stable.

This is also the route the E19 "retrain day" scenario schedules as
batch-class work: a re-curation day is modelled as a stream of clean
slices over the curated table, which is what the backpressure valve
holds back while the interactive queue is above high water.
"""

from __future__ import annotations

from repro.gateway.routers.base import Router, RouterOutcome

__all__ = ["CleanRouter"]


class CleanRouter(Router):
    """Adapter over a fitted (constructed) :class:`FDRepairer`."""

    name = "clean"

    def __init__(self, repairer) -> None:
        self.repairer = repairer

    def handle_group(self, requests: tuple) -> RouterOutcome:
        answers = []
        cells_examined = 0
        for request in requests:
            table = request.payload["table"]
            _, report = self.repairer.repair(table)
            cells_examined += table.num_rows * len(table.columns)
            answers.append({
                "table": table.name,
                "rows": table.num_rows,
                "columns": len(table.columns),
                "repairs": len(report),
                "repaired_cells": sorted(
                    [row, column] for row, column in report.cells()
                ),
            })
        return RouterOutcome(answers=tuple(answers), work=float(cells_examined))
