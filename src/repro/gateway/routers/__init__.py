"""Gateway routers: one handler per route name.

A router turns one :class:`~repro.gateway.tenancy.DispatchGroup` into a
:class:`RouterOutcome` — one answer per request plus the work accounting
the gateway's cost model prices (``work`` units, embedding misses).
Routers are *read-only* adapters over already-built curation components
(a :class:`~repro.serve.service.MatchService`, a fitted
:class:`~repro.cleaning.repair.FDRepairer`, a
:class:`~repro.discovery.matcher.SyntacticMatcher`): they never train,
never mutate their component beyond the component's own caches, and are
pure functions of (component state, request payloads) — which is what
lets the gateway retry a dead router at fault site ``gateway.dispatch``
and recover bit-identically.
"""

from repro.gateway.routers.base import Router, RouterOutcome
from repro.gateway.routers.clean import CleanRouter
from repro.gateway.routers.discover import DiscoverRouter
from repro.gateway.routers.health import HealthRouter
from repro.gateway.routers.match import MatchRouter
from repro.gateway.routers.metrics import MetricsRouter

__all__ = [
    "CleanRouter",
    "DiscoverRouter",
    "HealthRouter",
    "MatchRouter",
    "MetricsRouter",
    "Router",
    "RouterOutcome",
]
