"""The interactive match route: one coalesced ``match_batch`` per group.

Payload contract: ``payload["record"]`` is the query record dict.  The
whole group becomes *one* :meth:`MatchService.match_batch` call, so the
gateway inherits the serving layer's micro-batch coalescing, caches and
differential guarantees unchanged — gateway scheduling decides *when*
the batch runs, never *what* it answers.
"""

from __future__ import annotations

from repro.gateway.routers.base import Router, RouterOutcome

__all__ = ["MatchRouter"]


class MatchRouter(Router):
    """Adapter over a (possibly sharded) :class:`MatchService`."""

    name = "match"

    def __init__(self, service) -> None:
        self.service = service

    def handle_group(self, requests: tuple) -> RouterOutcome:
        report = self.service.match_batch([r.payload["record"] for r in requests])
        return RouterOutcome(
            answers=tuple(report.answers),
            work=float(report.scored_pairs),
            embed_misses=int(report.embedding_misses),
            meta={"predict_calls": int(report.predict_calls)},
        )
