"""Router protocol shared by every route handler."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Router", "RouterOutcome"]


@dataclass(frozen=True)
class RouterOutcome:
    """What one dispatched group produced: answers + work accounting.

    ``answers`` has exactly one entry per request in the group (the
    gateway's dispatch validator enforces this); ``work`` is in
    route-specific units (scored pairs, cells examined, column pairs)
    that the gateway's cost model prices into simulated seconds;
    ``embed_misses`` separates embedding-composition cost for the match
    route, mirroring :class:`repro.serve.sim.ServerConfig`.
    """

    answers: tuple
    work: float = 0.0
    embed_misses: int = 0
    meta: dict = field(default_factory=dict, compare=False)


class Router:
    """Duck-typed base: a ``name`` and a group handler.

    ``handle_group`` must be a pure function of (component state, request
    payloads) — it runs under the retried fault site ``gateway.dispatch``,
    where an injected error models a dead router instance and the retry
    must reproduce the original outcome bit-for-bit.
    """

    name = "?"

    def handle_group(self, requests: tuple) -> RouterOutcome:
        raise NotImplementedError
