"""The metrics route: live per-route / per-tenant latency percentiles.

Every request answers with the gateway's
:meth:`~repro.gateway.api.Gateway.metrics_snapshot` *as of the request's
dispatch*: completed/shed counts and nearest-rank p50/p95/p99 per route
and per tenant, computed with the shared
:func:`repro.utils.percentile` over latencies completed so far.  The
snapshot reflects simulated time only, so a replayed run answers the
same metrics at the same points in the schedule.
"""

from __future__ import annotations

from repro.gateway.routers.base import Router, RouterOutcome

__all__ = ["MetricsRouter"]


class MetricsRouter(Router):
    """Installed automatically by the gateway (it needs the back-pointer)."""

    name = "metrics"

    def __init__(self, gateway) -> None:
        self.gateway = gateway

    def handle_group(self, requests: tuple) -> RouterOutcome:
        snapshot = self.gateway.metrics_snapshot()
        return RouterOutcome(
            answers=tuple(dict(snapshot) for _ in requests),
            work=float(len(requests)),
        )
