"""The health route: liveness + registry/valve/fingerprint snapshot.

Every request on this route answers with the gateway's
:meth:`~repro.gateway.api.Gateway.health_snapshot`: installed routes,
scheduling policy, queue depths, valve state, the live match service's
parameter fingerprint (when a match router is installed) and — when the
gateway was built with a model ``registry`` — the registry's version
list and active version.  Everything in the snapshot is a deterministic
function of gateway state, so health answers replay byte-identically.
"""

from __future__ import annotations

from repro.gateway.routers.base import Router, RouterOutcome

__all__ = ["HealthRouter"]


class HealthRouter(Router):
    """Installed automatically by the gateway (it needs the back-pointer)."""

    name = "health"

    def __init__(self, gateway) -> None:
        self.gateway = gateway

    def handle_group(self, requests: tuple) -> RouterOutcome:
        snapshot = self.gateway.health_snapshot()
        return RouterOutcome(
            answers=tuple(dict(snapshot) for _ in requests),
            work=float(len(requests)),
        )
