"""The discover route: semantic column matching against a reference table.

Payload contract: ``payload["table"]`` is a :class:`repro.data.table.
Table` to match against the router's reference table.  The matcher is
any object with ``match_tables(table_a, table_b, threshold, *, jobs=)``
(:class:`~repro.discovery.matcher.SyntacticMatcher` by default in the
bench — no embedding model required, fully deterministic).  ``jobs`` is
held by the router and passed explicitly at every call (the repro.par
contract makes the links jobs-independent).
"""

from __future__ import annotations

from repro.gateway.routers.base import Router, RouterOutcome

__all__ = ["DiscoverRouter"]


class DiscoverRouter(Router):
    """Adapter over a column matcher + fixed reference table."""

    name = "discover"

    def __init__(self, matcher, reference, threshold: float = 0.5, jobs: int = 1) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.matcher = matcher
        self.reference = reference
        self.threshold = float(threshold)
        self.jobs = int(jobs)

    def handle_group(self, requests: tuple) -> RouterOutcome:
        answers = []
        column_pairs = 0
        for request in requests:
            table = request.payload["table"]
            links = self.matcher.match_tables(
                self.reference, table, self.threshold, jobs=self.jobs
            )
            column_pairs += len(self.reference.columns) * len(table.columns)
            answers.append({
                "table": table.name,
                "links": [
                    {
                        "column_a": link.column_a,
                        "column_b": link.column_b,
                        "score": round(float(link.score), 9),
                    }
                    for link in links
                ],
            })
        return RouterOutcome(answers=tuple(answers), work=float(column_pairs))
