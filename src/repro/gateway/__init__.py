"""repro.gateway: the curation stack as one deterministic multi-tenant service.

The paper's framing is curation-as-a-service: matching, cleaning and
discovery behind a single interface rather than offline scripts.  This
package is that interface — an async-shaped request/response gateway
running entirely on the simulated clock, so every admission decision,
scheduling choice and latency percentile is byte-reproducible:

* :mod:`repro.gateway.api` — :class:`Gateway`, the request model and the
  discrete-event loop (fault sites ``gateway.admit`` / ``gateway.route``
  / ``gateway.dispatch``);
* :mod:`repro.gateway.admission` — per-route token-bucket admission with
  deterministic shedding;
* :mod:`repro.gateway.scheduler` — two-class priority (interactive over
  batch) plus the FIFO baseline;
* :mod:`repro.gateway.tenancy` — deficit-round-robin multi-tenant
  fairness with tenant-id tie-breaks;
* :mod:`repro.gateway.backpressure` — the high/low-water valve (with a
  cooldown dwell) that pauses batch work and `repro.loop` retrains while
  the online queue is hot;
* :mod:`repro.gateway.routers` — match / clean / discover / health /
  metrics route handlers over existing read-only components;
* :mod:`repro.gateway.workload` — seeded multi-tenant diurnal traffic.

Gateway routing never changes *what* is answered — only *when*: answers
stay differentially equal to the offline components, and BENCH_E19 pins
one ``answers_sha1`` per scenario across scheduling policies.
"""

from repro.gateway.admission import AdmissionController, AdmitDecision, TokenBucket
from repro.gateway.api import (
    DEFAULT_ROUTE_COSTS,
    Gateway,
    GatewayConfig,
    GatewayReport,
    GatewayRequest,
    RequestResult,
    RouteCost,
)
from repro.gateway.backpressure import BackpressureValve
from repro.gateway.routers import (
    CleanRouter,
    DiscoverRouter,
    HealthRouter,
    MatchRouter,
    MetricsRouter,
    Router,
    RouterOutcome,
)
from repro.gateway.scheduler import CLASSES, FifoScheduler, TwoClassScheduler
from repro.gateway.tenancy import DeficitRoundRobin, DispatchGroup
from repro.gateway.workload import RequestStream, generate_requests

__all__ = [
    "AdmissionController",
    "AdmitDecision",
    "BackpressureValve",
    "CLASSES",
    "CleanRouter",
    "DEFAULT_ROUTE_COSTS",
    "DeficitRoundRobin",
    "DiscoverRouter",
    "DispatchGroup",
    "FifoScheduler",
    "Gateway",
    "GatewayConfig",
    "GatewayReport",
    "GatewayRequest",
    "HealthRouter",
    "MatchRouter",
    "MetricsRouter",
    "RequestResult",
    "RequestStream",
    "RouteCost",
    "Router",
    "RouterOutcome",
    "TokenBucket",
    "TwoClassScheduler",
    "generate_requests",
]
