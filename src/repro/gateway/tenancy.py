"""Deficit-round-robin multi-tenant fairness.

Classic DRR (Shreedhar & Varghese) over per-tenant FIFO queues: each
tenant's turn adds ``quantum × weight`` to its deficit counter, and the
tenant may dispatch requests while the deficit covers their
``cost_units``.  An emptied queue forfeits its remaining deficit, so a
tenant cannot bank idle time; a backlogged tenant's deficit grows every
rotation until even its most expensive head request becomes affordable —
DRR is starvation-free by construction.

Determinism contract: the rotation order is the *sorted tenant ids* of
the currently backlogged tenants, and the round-robin cursor is tracked
by tenant id (not list position), so the schedule is byte-reproducible —
ties between tenants are always broken by tenant id, never by dict or
arrival-bookkeeping order.

One dispatch group is one tenant's head-run of same-route requests (the
gateway coalesces a group into a single router call, e.g. one
``match_batch``).  Groups never mix tenants: cross-tenant coalescing
would let a greedy tenant ride along on every other tenant's turn,
which is exactly what DRR exists to prevent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["DeficitRoundRobin", "DispatchGroup"]


@dataclass(frozen=True)
class DispatchGroup:
    """A coalesced unit of dispatch: same tenant, same route, same class."""

    requests: tuple
    route: str
    tenant: str
    priority: str

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a DispatchGroup must carry at least one request")


class DeficitRoundRobin:
    """DRR scheduler over per-tenant FIFO queues for one priority class."""

    def __init__(self, quantum: float = 4.0, weights: "dict[str, float] | None" = None) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        self._weights = dict(weights or {})
        for tenant in sorted(self._weights):
            if self._weights[tenant] <= 0:
                raise ValueError(
                    f"tenant weight must be > 0, got {self._weights[tenant]} "
                    f"for {tenant!r}"
                )
        self.quantum = float(quantum)
        self._queues: "dict[str, deque]" = {}
        self._deficits: "dict[str, float]" = {}
        self._resume_after: str | None = None

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def enqueue(self, request) -> None:
        self._queues.setdefault(request.tenant, deque()).append(request)

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending_by_tenant(self) -> "dict[str, int]":
        return {t: len(self._queues[t]) for t in sorted(self._queues) if self._queues[t]}

    def next_group(self, max_batch: int) -> DispatchGroup | None:
        """Dequeue the next tenant's affordable head-run, or ``None``."""
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        backlogged = sorted(t for t in self._queues if self._queues[t])
        if not backlogged:
            return None
        # Rotation starts strictly after the cursor tenant, wrapping; a
        # cursor pointing at a now-idle tenant still lands correctly
        # because the comparison is by id, not position.
        if self._resume_after is None:
            order = backlogged
        else:
            after = [t for t in backlogged if t > self._resume_after]
            order = after + [t for t in backlogged if t <= self._resume_after]
        while True:
            for tenant in order:
                queue = self._queues[tenant]
                self._deficits[tenant] = (
                    self._deficits.get(tenant, 0.0) + self.quantum * self.weight(tenant)
                )
                taken: "list" = []
                route = queue[0].route
                while (
                    queue
                    and len(taken) < max_batch
                    and queue[0].route == route
                    and queue[0].cost_units <= self._deficits[tenant]
                ):
                    request = queue.popleft()
                    self._deficits[tenant] -= request.cost_units
                    taken.append(request)
                if not queue:
                    # Forfeit: an idle tenant must not bank credit.
                    self._deficits[tenant] = 0.0
                if taken:
                    self._resume_after = tenant
                    return DispatchGroup(
                        requests=tuple(taken),
                        route=route,
                        tenant=tenant,
                        priority=taken[0].priority,
                    )
            # No head request was affordable this rotation; every visited
            # deficit just grew by quantum × weight, so a later rotation
            # must succeed — bounded by max(cost_units)/quantum rounds.
