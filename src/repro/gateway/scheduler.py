"""Two-class priority scheduling (and the FIFO baseline).

:class:`TwoClassScheduler` is the gateway's default: interactive work
strictly precedes batch work (non-preemptive — a running batch group is
never aborted, which is why the backpressure valve matters), and within
each class :class:`~repro.gateway.tenancy.DeficitRoundRobin` arbitrates
between tenants.  Batch groups additionally require the valve's consent
(``batch_ok``), so a paused valve starves only the batch class.

:class:`FifoScheduler` is the control arm for the E19 bench: one global
arrival-order queue, groups formed from head-runs of same-route requests
regardless of tenant or class.  It ignores the valve — that is the
point of the comparison.

Both schedulers expose the same duck-typed surface (``enqueue`` /
``has_pending`` / ``has_dispatchable`` / ``next_group`` /
``online_depth`` / ``depths``), so the gateway event loop is policy-
agnostic.
"""

from __future__ import annotations

from collections import deque

from repro.gateway.tenancy import DeficitRoundRobin, DispatchGroup

__all__ = ["CLASSES", "FifoScheduler", "TwoClassScheduler", "make_scheduler"]

CLASSES = ("interactive", "batch")


class TwoClassScheduler:
    """Strict interactive-over-batch priority, DRR fairness within each."""

    def __init__(self, quantum: float = 4.0, weights: "dict[str, float] | None" = None) -> None:
        self._classes = {
            name: DeficitRoundRobin(quantum=quantum, weights=weights)
            for name in CLASSES
        }

    def enqueue(self, request) -> None:
        self._classes[request.priority].enqueue(request)

    @property
    def has_pending(self) -> bool:
        return any(self._classes[name].pending for name in CLASSES)

    def has_dispatchable(self, batch_ok: bool) -> bool:
        if self._classes["interactive"].pending:
            return True
        return batch_ok and self._classes["batch"].pending > 0

    def online_depth(self) -> int:
        """Pending *interactive* requests — the valve's watched quantity."""
        return self._classes["interactive"].pending

    def depths(self) -> "dict[str, int]":
        return {name: self._classes[name].pending for name in CLASSES}

    def next_group(self, max_batch: int, batch_ok: bool) -> DispatchGroup | None:
        group = self._classes["interactive"].next_group(max_batch) \
            if self._classes["interactive"].pending else None
        if group is not None:
            return group
        if batch_ok and self._classes["batch"].pending:
            return self._classes["batch"].next_group(max_batch)
        return None


class FifoScheduler:
    """Single global arrival-order queue; the bench's no-policy baseline."""

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._depth = {name: 0 for name in CLASSES}

    def enqueue(self, request) -> None:
        self._queue.append(request)
        self._depth[request.priority] += 1

    @property
    def has_pending(self) -> bool:
        return bool(self._queue)

    def has_dispatchable(self, batch_ok: bool) -> bool:
        # FIFO serves whatever is at the head — no class distinction, no
        # valve consent: it is the baseline the priority rows beat.
        return bool(self._queue)

    def online_depth(self) -> int:
        return self._depth["interactive"]

    def depths(self) -> "dict[str, int]":
        return dict(self._depth)

    def next_group(self, max_batch: int, batch_ok: bool) -> DispatchGroup | None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if not self._queue:
            return None
        taken = []
        route = self._queue[0].route
        while self._queue and len(taken) < max_batch and self._queue[0].route == route:
            request = self._queue.popleft()
            self._depth[request.priority] -= 1
            taken.append(request)
        return DispatchGroup(
            requests=tuple(taken),
            route=route,
            tenant=taken[0].tenant,
            priority=taken[0].priority,
        )


def make_scheduler(policy: str, *, quantum: float, weights: "dict[str, float] | None"):
    """Build the scheduler for a policy name (``priority`` | ``fifo``)."""
    if policy == "priority":
        return TwoClassScheduler(quantum=quantum, weights=weights)
    if policy == "fifo":
        return FifoScheduler()
    raise ValueError(f"unknown scheduling policy {policy!r} (use 'priority' or 'fifo')")
