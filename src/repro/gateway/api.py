"""The gateway: one deterministic front door for the whole curation stack.

:class:`Gateway` fronts already-built curation components (match
service, FD repairer, column matcher) behind named routes on the
simulated clock.  A request carries ``(tenant, route, priority,
deadline)``; its life is

1. **admission** — the per-route token bucket
   (:mod:`repro.gateway.admission`) admits or sheds it at arrival, under
   fault site ``gateway.admit``;
2. **scheduling** — the two-class scheduler
   (:mod:`repro.gateway.scheduler`) queues it; interactive strictly
   precedes batch, deficit round robin (:mod:`repro.gateway.tenancy`)
   arbitrates tenants, and the backpressure valve
   (:mod:`repro.gateway.backpressure`) holds batch groups back while the
   interactive queue is above high water;
3. **dispatch** — a same-tenant same-route group becomes one router call
   (fault sites ``gateway.route`` for resolution, ``gateway.dispatch``
   for execution), occupying the single simulated server for the cost
   model's price.

The event loop mirrors :func:`repro.serve.sim.simulate`: arrivals order
before service events at equal timestamps, nothing reads wall clocks or
ambient randomness, and the same requests + config replay the exact same
schedule — including which requests get shed and when the valve flips.

**Routing never changes answers.**  Every answer is produced by the same
read-only component call an offline caller would make; the gateway
decides *when* work runs, never *what* it computes.  The differential
tests (gateway ≡ service ≡ offline ``predict_proba``) and the
per-scenario ``answers_sha1`` in BENCH_E19 hold the line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.faults.retry import HOT_POLICY, retry_call
from repro.gateway.admission import AdmissionController
from repro.gateway.backpressure import BackpressureValve
from repro.gateway.routers.base import Router, RouterOutcome
from repro.gateway.routers.health import HealthRouter
from repro.gateway.routers.metrics import MetricsRouter
from repro.gateway.scheduler import CLASSES, make_scheduler
from repro.obs.metrics import REGISTRY as _OBS
from repro.obs.trace import span
from repro.serve.clock import SimClock
from repro.utils.content import digest_rows
from repro.utils.stats import percentile

__all__ = [
    "DEFAULT_ROUTE_COSTS",
    "Gateway",
    "GatewayConfig",
    "GatewayReport",
    "GatewayRequest",
    "RequestResult",
    "RouteCost",
]


@dataclass(frozen=True)
class GatewayRequest:
    """One request: who (tenant), what (route + payload), how urgent.

    ``deadline`` is an *absolute* simulated timestamp and is SLO
    metadata only — the gateway reports ``deadline_met`` but never drops
    expired requests, because expiry-dropping would make *what* is
    answered depend on the scheduling policy and break the one-digest-
    per-scenario contract.  ``cost_units`` is the DRR accounting weight
    (how much of a tenant's deficit the request consumes).
    """

    request_id: int
    tenant: str
    route: str
    priority: str = "interactive"
    arrival: float = 0.0
    deadline: float = math.inf
    payload: dict = field(default_factory=dict, compare=False)
    cost_units: float = 1.0

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ValueError(f"request_id must be >= 0, got {self.request_id}")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")
        if not self.route:
            raise ValueError("route must be a non-empty string")
        if self.priority not in CLASSES:
            raise ValueError(
                f"priority must be one of {CLASSES}, got {self.priority!r}"
            )
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline < self.arrival:
            raise ValueError(
                f"deadline must be >= arrival, got deadline={self.deadline} "
                f"< arrival={self.arrival}"
            )
        if self.cost_units <= 0:
            raise ValueError(f"cost_units must be > 0, got {self.cost_units}")


@dataclass
class RequestResult:
    """Terminal state of one request: completed with an answer, or shed."""

    request_id: int
    tenant: str
    route: str
    priority: str
    status: str  # "ok" | "shed"
    arrival: float
    deadline: float = math.inf
    start: float | None = None
    finish: float | None = None
    group_id: int | None = None
    answer: object | None = None

    @property
    def latency(self) -> float | None:
        """Simulated arrival→completion latency; None for shed requests."""
        if self.finish is None:
            return None
        return self.finish - self.arrival

    @property
    def deadline_met(self) -> bool | None:
        """Did the answer arrive by the deadline?  None for shed requests."""
        if self.finish is None:
            return None
        return self.finish <= self.deadline


@dataclass(frozen=True)
class RouteCost:
    """Simulated seconds one dispatched group costs on a route.

    ``cost = base + per_request·|group| + per_work·outcome.work
    + per_embed·outcome.embed_misses`` — the match entries mirror the
    kernel-calibrated :class:`repro.serve.sim.ServerConfig` constants so
    gateway latencies stay comparable with E17's rows.
    """

    base: float = 0.002
    per_request: float = 0.0004
    per_work: float = 0.0
    per_embed: float = 0.0

    def __post_init__(self) -> None:
        if min(self.base, self.per_request, self.per_work, self.per_embed) < 0:
            raise ValueError("route cost terms must be >= 0")


# Kernel-calibrated defaults (see bench_micro_substrate / E17's "kernel
# cost" rows): match prices scored pairs + embedding misses exactly like
# ServerConfig(cost_per_miss=5e-5, cost_per_embed=2e-4); clean prices
# cells examined; discover prices column pairs; health/metrics are tiny.
DEFAULT_ROUTE_COSTS: "dict[str, RouteCost]" = {
    "match": RouteCost(base=0.002, per_request=0.0004, per_work=0.00005, per_embed=0.0002),
    "clean": RouteCost(base=0.002, per_request=0.0005, per_work=0.00002),
    "discover": RouteCost(base=0.002, per_request=0.0005, per_work=0.0002),
    "health": RouteCost(base=0.0002, per_request=0.0001),
    "metrics": RouteCost(base=0.0002, per_request=0.0001),
}


@dataclass(frozen=True)
class GatewayConfig:
    """Scheduling policy, fairness, admission and backpressure knobs.

    ``admission`` maps route names to ``(rate, burst)`` token-bucket
    policies (absent routes are never shed).  ``high_water``/
    ``low_water``/``cooldown`` configure the backpressure valve; a
    ``None`` high water disables it.  ``route_costs`` entries override
    :data:`DEFAULT_ROUTE_COSTS` per route.
    """

    policy: str = "priority"
    max_batch_size: int = 8
    quantum: float = 4.0
    tenant_weights: "dict[str, float] | None" = None
    admission: "dict[str, tuple[float, int]] | None" = None
    high_water: int | None = None
    low_water: int = 0
    cooldown: float = 0.0
    route_costs: "dict[str, RouteCost] | None" = None

    def __post_init__(self) -> None:
        if self.policy not in ("priority", "fifo"):
            raise ValueError(
                f"policy must be 'priority' or 'fifo', got {self.policy!r}"
            )
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {self.quantum}")

    def make_valve(self) -> BackpressureValve | None:
        if self.high_water is None:
            return None
        return BackpressureValve(self.high_water, self.low_water, self.cooldown)


@dataclass
class GatewayReport:
    """Everything one gateway run produced, in deterministic order."""

    policy: str
    results: "list[RequestResult]" = field(default_factory=list)
    groups: "list[dict]" = field(default_factory=list)
    duration: float = 0.0
    valve: dict | None = None

    @property
    def completed(self) -> "list[RequestResult]":
        return [r for r in self.results if r.status == "ok"]

    @property
    def shed(self) -> "list[RequestResult]":
        return [r for r in self.results if r.status == "shed"]

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / len(self.results) if self.results else 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second."""
        return len(self.completed) / self.duration if self.duration > 0 else 0.0

    def _select(self, route=None, tenant=None, priority=None):
        return [
            r for r in self.completed
            if (route is None or r.route == route)
            and (tenant is None or r.tenant == tenant)
            and (priority is None or r.priority == priority)
        ]

    def latencies(self, *, route=None, tenant=None, priority=None) -> "list[float]":
        """Matching completed-request latencies, sorted ascending."""
        return sorted(r.latency for r in self._select(route, tenant, priority))

    def latency_percentiles(
        self, quantiles: tuple = (50, 95, 99), *,
        route=None, tenant=None, priority=None,
    ) -> "dict[int, float]":
        ordered = self.latencies(route=route, tenant=tenant, priority=priority)
        return {q: percentile(ordered, q) for q in quantiles}

    def deadline_hit_rate(self, *, route=None, tenant=None, priority=None) -> float:
        """Fraction of matching completed requests that met their deadline."""
        selected = self._select(route, tenant, priority)
        if not selected:
            return 0.0
        return sum(1 for r in selected if r.deadline_met) / len(selected)

    def completed_share(self, first: int | None = None) -> "dict[str, float]":
        """Per-tenant share of completions, in completion order.

        ``first`` restricts to the earliest ``first`` completions (by
        finish time, request id as the deterministic tie-break) — the
        fairness metric that matters *under contention*, before the
        work-conserving server has drained every queue.
        """
        ordered = sorted(self.completed, key=lambda r: (r.finish, r.request_id))
        if first is not None:
            ordered = ordered[:first]
        counts: "dict[str, int]" = {}
        for result in ordered:
            counts[result.tenant] = counts.get(result.tenant, 0) + 1
        total = len(ordered)
        return {t: counts[t] / total for t in sorted(counts)} if total else {}

    def answers(self, route: str = "match") -> "list":
        """Completed answers on ``route``, ordered by request id."""
        return [r.answer for r in self.completed if r.route == route]

    def answers_digest(self, route: str = "match") -> str:
        """One sha1 over the route's answers — the "same answers" witness.

        Uses the shared :func:`repro.utils.digest_rows` quantization, so
        digests are comparable with :func:`repro.loop.answers_digest`
        over the same answer sequence.
        """
        rows = []
        for result in self.completed:
            if result.route != route:
                continue
            answer = result.answer
            payload = answer.to_dict() if hasattr(answer, "to_dict") else answer
            rows.append({"request_id": result.request_id, "answer": payload})
        return digest_rows(rows)


def _valid_router(route: str):
    def check(router: object) -> bool:
        return getattr(router, "name", None) == route and callable(
            getattr(router, "handle_group", None)
        )
    return check


def _valid_outcome(size: int):
    def check(outcome: object) -> bool:
        return (
            isinstance(outcome, RouterOutcome)
            and len(outcome.answers) == size
            and outcome.work >= 0.0
            and outcome.embed_misses >= 0
        )
    return check


class Gateway:
    """Deterministic multi-tenant front door over curation routers.

    ``routers`` is an iterable of :class:`Router` instances (keyed by
    their ``name``); a :class:`HealthRouter` and :class:`MetricsRouter`
    are installed automatically unless the caller provides their own.
    ``registry`` (optional) is a :class:`repro.loop.ModelRegistry` whose
    snapshot the health route exposes.
    """

    def __init__(
        self,
        routers,
        *,
        config: GatewayConfig | None = None,
        registry=None,
    ) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.registry = registry
        self._routers: "dict[str, Router]" = {}
        for router in routers:
            name = getattr(router, "name", None)
            if not name or not callable(getattr(router, "handle_group", None)):
                raise ValueError(f"not a router (need .name and .handle_group): {router!r}")
            if name in self._routers:
                raise ValueError(f"duplicate router for route {name!r}")
            self._routers[name] = router
        if "health" not in self._routers:
            self._routers["health"] = HealthRouter(self)
        if "metrics" not in self._routers:
            self._routers["metrics"] = MetricsRouter(self)
        self._route_costs = {**DEFAULT_ROUTE_COSTS, **(self.config.route_costs or {})}
        self._scheduler = None
        self._valve: BackpressureValve | None = None
        self._results: "dict[int, RequestResult]" = {}
        self._groups: "list[dict]" = []
        self._lat_by_route: "dict[str, list[float]]" = {}
        self._lat_by_tenant: "dict[str, list[float]]" = {}
        self._shed_by_route: "dict[str, int]" = {}

    @property
    def routes(self) -> "list[str]":
        return sorted(self._routers)

    # ------------------------------------------------------------------ #
    # snapshots (health / metrics routes)
    # ------------------------------------------------------------------ #

    def health_snapshot(self) -> dict:
        """Liveness + registry/valve/fingerprint state, all deterministic."""
        snapshot: dict = {
            "status": "ok",
            "policy": self.config.policy,
            "routes": self.routes,
            "depth": dict(self._scheduler.depths()) if self._scheduler is not None else {},
        }
        match_router = self._routers.get("match")
        service = getattr(match_router, "service", None)
        if service is not None:
            snapshot["fingerprint"] = service.parameter_fingerprint()
        if self._valve is not None:
            snapshot["valve"] = self._valve.snapshot()
        if self.registry is not None:
            active = self.registry.active
            snapshot["registry"] = {
                "versions": [v.version_id for v in self.registry.versions],
                "active": active.version_id if active is not None else None,
            }
        return snapshot

    def metrics_snapshot(self) -> dict:
        """Per-route / per-tenant completions and latency percentiles so far."""
        def stats(lat_map: "dict[str, list[float]]") -> "dict[str, dict]":
            out = {}
            for key in sorted(lat_map):
                ordered = sorted(lat_map[key])
                out[key] = {
                    "completed": len(ordered),
                    "p50_ms": round(percentile(ordered, 50) * 1e3, 6),
                    "p95_ms": round(percentile(ordered, 95) * 1e3, 6),
                    "p99_ms": round(percentile(ordered, 99) * 1e3, 6),
                }
            return out

        routes = stats(self._lat_by_route)
        for route in sorted(self._shed_by_route):
            routes.setdefault(route, {"completed": 0})
        for route in routes:
            routes[route]["shed"] = self._shed_by_route.get(route, 0)
        return {
            "completed": sum(len(v) for v in self._lat_by_route.values()),
            "shed": sum(self._shed_by_route.values()),
            "routes": routes,
            "tenants": stats(self._lat_by_tenant),
        }

    # ------------------------------------------------------------------ #
    # the event loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: "list[GatewayRequest]",
        *,
        clock: SimClock | None = None,
    ) -> GatewayReport:
        """Play ``requests`` through admission → scheduling → dispatch."""
        clock = clock or SimClock()
        arrivals = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        seen_ids: "dict[int, bool]" = {}
        for request in arrivals:
            if request.request_id in seen_ids:
                raise ValueError(f"duplicate request_id {request.request_id}")
            seen_ids[request.request_id] = True
            if request.route not in self._routers:
                raise ValueError(
                    f"request {request.request_id} targets unknown route "
                    f"{request.route!r}; installed: {self.routes}"
                )

        admission = AdmissionController(self.config.admission)
        scheduler = make_scheduler(
            self.config.policy,
            quantum=self.config.quantum,
            weights=self.config.tenant_weights,
        )
        valve = self.config.make_valve()
        self._scheduler = scheduler
        self._valve = valve
        self._results = {}
        self._groups = []
        self._lat_by_route = {}
        self._lat_by_tenant = {}
        self._shed_by_route = {}
        server_free = 0.0
        index = 0
        total = len(arrivals)

        def admit(request: GatewayRequest) -> None:
            clock.advance_to(request.arrival)
            if _OBS.enabled:
                _OBS.counter("gateway.requests").inc()
            decision = admission.decide(request.route, request.arrival)
            if decision.admitted:
                scheduler.enqueue(request)
            else:
                self._results[request.request_id] = RequestResult(
                    request_id=request.request_id,
                    tenant=request.tenant,
                    route=request.route,
                    priority=request.priority,
                    status="shed",
                    arrival=request.arrival,
                    deadline=request.deadline,
                )
                self._shed_by_route[request.route] = (
                    self._shed_by_route.get(request.route, 0) + 1
                )
            if valve is not None:
                valve.observe(clock.now, scheduler.online_depth())

        with span("gateway.run", requests=total, policy=self.config.policy) as run_span:
            while index < total or scheduler.has_pending:
                fire = max(server_free, clock.now)
                # Arrivals at or before the earliest possible service
                # event join (or shed) first — at equal timestamps,
                # arrival events order before dispatch events, matching
                # serve.sim's convention.
                if index < total and arrivals[index].arrival <= fire:
                    admit(arrivals[index])
                    index += 1
                    continue
                if scheduler.has_pending:
                    batch_ok = (
                        valve.batch_allowed(fire, scheduler.online_depth())
                        if valve is not None else True
                    )
                    if scheduler.has_dispatchable(batch_ok):
                        clock.advance_to(fire)
                        server_free = self._dispatch(
                            fire, scheduler, valve, batch_ok, clock
                        )
                        continue
                    # Only valve-blocked batch work remains runnable now.
                    # A completed cooldown dwell is itself an event: wake
                    # at it when no arrival comes first, otherwise the
                    # loop would deadlock with an empty arrival stream.
                    wake = valve.resume_time() if valve is not None else None
                    if wake is not None and (
                        index >= total or wake < arrivals[index].arrival
                    ):
                        clock.advance_to(max(wake, fire))
                        continue
                if index < total:
                    admit(arrivals[index])
                    index += 1
                    continue
                raise RuntimeError(
                    "gateway stalled: batch work pending, valve paused with "
                    "no resume candidate, and no arrivals left"
                )
            clock.advance_to(max(server_free, clock.now))
            report = GatewayReport(
                policy=self.config.policy,
                results=[
                    self._results[r.request_id]
                    for r in sorted(requests, key=lambda r: r.request_id)
                ],
                groups=self._groups,
                duration=clock.now,
                valve=(
                    {**valve.snapshot(), "events": list(valve.events)}
                    if valve is not None else None
                ),
            )
            run_span.meta.update({
                "completed": len(report.completed),
                "shed": len(report.shed),
                "groups": len(report.groups),
                "simulated_duration": round(report.duration, 6),
                "valve_pauses": valve.pauses if valve is not None else 0,
            })
        if _OBS.enabled:
            _OBS.gauge("gateway.duration_seconds").set(report.duration)
        return report

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _resolve_router(self, route: str) -> Router:
        """Pure route-table lookup (the ``gateway.route`` fault site)."""
        return self._routers[route]

    def _dispatch(self, fire, scheduler, valve, batch_ok, clock) -> float:
        group = scheduler.next_group(self.config.max_batch_size, batch_ok)
        router = retry_call(
            self._resolve_router,
            group.route,
            site="gateway.route",
            policy=HOT_POLICY,
            validate=_valid_router(group.route),
        )
        # An injected error here fires *before* the router touches its
        # component — the dead-router model; the retry replays the same
        # pure group call, so a recovered dispatch is bit-identical.
        outcome = retry_call(
            router.handle_group,
            group.requests,
            site="gateway.dispatch",
            policy=HOT_POLICY,
            validate=_valid_outcome(len(group.requests)),
        )
        route_cost = self._route_costs.get(group.route, RouteCost())
        cost = (
            route_cost.base
            + route_cost.per_request * len(group.requests)
            + route_cost.per_work * outcome.work
            + route_cost.per_embed * outcome.embed_misses
        )
        finish = fire + cost
        group_id = len(self._groups)
        self._groups.append({
            "group_id": group_id,
            "route": group.route,
            "tenant": group.tenant,
            "priority": group.priority,
            "fire": fire,
            "finish": finish,
            "size": len(group.requests),
            "work": outcome.work,
            "embed_misses": outcome.embed_misses,
            "cost": cost,
        })
        for request, answer in zip(group.requests, outcome.answers):
            self._results[request.request_id] = RequestResult(
                request_id=request.request_id,
                tenant=request.tenant,
                route=request.route,
                priority=request.priority,
                status="ok",
                arrival=request.arrival,
                deadline=request.deadline,
                start=fire,
                finish=finish,
                group_id=group_id,
                answer=answer,
            )
            latency = finish - request.arrival
            self._lat_by_route.setdefault(request.route, []).append(latency)
            self._lat_by_tenant.setdefault(request.tenant, []).append(latency)
        if _OBS.enabled:
            _OBS.counter("gateway.groups").inc()
            _OBS.counter("gateway.dispatched").inc(float(len(group.requests)))
        if valve is not None:
            valve.observe(fire, scheduler.online_depth())
        return finish
