"""Catalog of named fault-injection sites.

Naming scheme: dot-separated ``<area>.<unit>[.<detail>]`` mirroring the
package that owns the code point —

* ``pipeline.step.<name>`` — one concrete site per pipeline step (the
  ``*`` entry below is the fnmatch pattern chaos plans schedule against);
* ``par.pool`` — each attempt to run a :mod:`repro.par` chunk batch on
  the process pool;
* ``er.blocking.lsh`` / ``er.blocking.token`` — the candidate-pair
  computation of the two blockers;
* ``er.deeper.pair_features`` — DeepER's pair featurisation hot path;
* ``er.deeper.fit.epoch`` — the top of every DeepER training epoch;
* ``serve.score`` / ``serve.cache.lookup`` — the serving layer's batch
  scoring call and per-batch cache consult;
* ``gateway.admit`` / ``gateway.route`` / ``gateway.dispatch`` — the
  gateway's admission decision, route-table resolution and router group
  execution.

Sites split by what owns recovery:

* **retryable** sites sit inside a retry or fallback layer, so an
  injected error under the layer's budget is invisible in the final
  results (``par.pool`` exhaustion degrades to the serial path, which by
  the :mod:`repro.par` contract is bit-identical);
* **latency-only** sites have no recovery layer — chaos plans schedule
  only latency faults there, because an error fault would (correctly)
  abort the run.

Chaos plans (:meth:`repro.faults.FaultPlan.chaos`) draw their schedule
from this catalog, so every seeded plan is recoverable by construction.
"""

from __future__ import annotations

__all__ = ["CORRUPT_SITES", "LATENCY_ONLY_SITES", "RETRY_SITES", "all_sites"]

RETRY_SITES: dict[str, str] = {
    "pipeline.step.*": (
        "CurationPipeline.run step execution; budget = the pipeline's "
        "RetryPolicy.attempts (no policy means no budget: errors propagate)"
    ),
    "par.pool": (
        "repro.par process-pool attempt; exhaustion falls back to the "
        "bit-identical serial path, so the call itself never fails"
    ),
    "er.blocking.lsh": "LSHBlocker.candidate_pairs band matching (attempts=2)",
    "er.blocking.token": "TokenBlocker.candidate_pairs rare-token probe (attempts=2)",
    "er.deeper.pair_features": "DeepER pair featurisation (attempts=2)",
    "serve.score": (
        "MatchService batch scoring via DeepER.predict_proba; validated "
        "shape/finiteness, retried under HOT_POLICY (attempts=2)"
    ),
    "serve.shard.query": (
        "ShardedMatchService per-shard call (embed/candidates/score on "
        "one shard group); budget = the group's replica count — an error "
        "fails the batch over to the next replica, which shares the "
        "shard's cache tier, so a recovered batch is bit-identical"
    ),
    "serve.shard.route": (
        "ShardedMatchService home-shard routing of a batch's distinct "
        "query keys; pure recompute, validated and retried under "
        "HOT_POLICY (attempts=2)"
    ),
    "loop.retrain": (
        "continuous-curation candidate retrain (active selection + "
        "crowd labeling + fit); a pure function of the queue snapshot, "
        "banked labels and day seed — crowd votes are content-keyed per "
        "pair, so relabeling is idempotent — validated (trained matcher, "
        "exact label count) and retried under HOT_POLICY (attempts=2)"
    ),
    "serve.swap": (
        "MatchService/ShardedMatchService hot-swap commit of a promoted "
        "matcher; idempotent rebind + score-tier invalidation with a "
        "validated fingerprint return, retried under HOT_POLICY "
        "(attempts=2)"
    ),
    "gateway.admit": (
        "Gateway per-route token-bucket admission decision; a pure "
        "preview of the bucket state committed only after the retry "
        "layer accepts it, validated and retried under HOT_POLICY "
        "(attempts=2)"
    ),
    "gateway.route": (
        "Gateway route-table resolution of a dispatch group's router; "
        "pure dict lookup with a validated (name-checked) return, "
        "retried under HOT_POLICY (attempts=2)"
    ),
    "gateway.dispatch": (
        "Gateway router group execution (one coalesced router call per "
        "dispatch group); an error at entry models a dead router "
        "instance and the retry replays the same pure group call, "
        "validated answer count, HOT_POLICY (attempts=2)"
    ),
}

LATENCY_ONLY_SITES: dict[str, str] = {
    "er.deeper.fit.epoch": (
        "top of each DeepER training epoch; not retryable (an epoch "
        "consumes minibatch rng), so only latency faults are scheduled"
    ),
    "serve.cache.lookup": (
        "MatchService per-batch cache consult; pure lookup with no retry "
        "layer, so only latency faults are scheduled"
    ),
}

# Retryable sites whose wrapped call validates its return value, so a
# corrupted-return fault is detected and retried rather than persisted.
#
# "serve.shard.query" is deliberately absent: a corrupted *return* is
# only detected after the primary has already consulted (and warmed) the
# shard's shared cache tier, so the replica's retry would report fewer
# cache misses than a fault-free run — the answers would still be
# correct, but the simulated cost rows would drift under chaos.  Error
# faults at that site fire *before* the call touches anything, which is
# exactly the dead-shard model failover is built for.
#
# "gateway.dispatch" is absent for the same reason: the wrapped call is
# the router's group execution, and the match router's match_batch warms
# the service's cache tiers as it runs — a corrupted *return* would be
# detected only after the caches moved, so the retry would report fewer
# misses than a fault-free run and the simulated cost rows would drift.
# Error faults there fire before the router touches its component (the
# dead-router model the chaos tier kills mid-burst).  "gateway.admit"
# and "gateway.route" wrap genuinely pure previews/lookups committed
# after validation, so corrupt faults are safe at both.
CORRUPT_SITES: tuple[str, ...] = (
    "pipeline.step.*",
    "er.blocking.lsh",
    "er.blocking.token",
    "er.deeper.pair_features",
    "gateway.admit",
    "gateway.route",
    "loop.retrain",
    "serve.score",
    "serve.shard.route",
    "serve.swap",
)


def all_sites() -> list[str]:
    """Every catalogued site (pattern) name, sorted."""
    return sorted({**RETRY_SITES, **LATENCY_ONLY_SITES})
