"""Deterministic fault injection and recovery (see DESIGN.md § "Fault
injection").

Two halves under one contract:

* :mod:`repro.faults.plan` — seeded, schedule-driven injection of
  exceptions, artificial latency and corrupted returns at named sites
  (catalog in :mod:`repro.faults.sites`), activated as a context manager;
  zero overhead while inactive.
* :mod:`repro.faults.retry` — ``retry_call`` with capped deterministic
  backoff (no wall-clock randomness), span/metrics accounting and a
  metrics quarantine around failed attempts.

The contract, enforced by ``tests/faults``: any fault plan that stays
under the wired retry budgets yields final artifacts and BENCH metric
values bit-identical to the fault-free run; plans over budget fail loudly
(:class:`RetryExhausted`, surfaced by the pipeline as ``PipelineError``
with partial provenance).
"""

from repro.faults.plan import (
    CORRUPTED,
    Fault,
    FaultLedger,
    FaultPlan,
    InjectedFault,
    active_plan,
    inject,
    inject_result,
)
from repro.faults.retry import (
    DEFAULT_POLICY,
    HOT_POLICY,
    CorruptedResult,
    RetryExhausted,
    RetryPolicy,
    retry_call,
)
from repro.faults.sites import (
    CORRUPT_SITES,
    LATENCY_ONLY_SITES,
    RETRY_SITES,
    all_sites,
)

__all__ = [
    "CORRUPTED",
    "CORRUPT_SITES",
    "CorruptedResult",
    "DEFAULT_POLICY",
    "Fault",
    "FaultLedger",
    "FaultPlan",
    "HOT_POLICY",
    "InjectedFault",
    "LATENCY_ONLY_SITES",
    "RETRY_SITES",
    "RetryExhausted",
    "RetryPolicy",
    "active_plan",
    "all_sites",
    "inject",
    "inject_result",
    "retry_call",
]
