"""Deterministic retry engine: ``retry_call`` with capped geometric backoff.

Backoff is pure arithmetic — ``delay(k) = min(cap, base * multiplier**k)``
for the k-th failure — with no wall-clock randomness (no jitter, no clock
reads), so two runs that fail the same way back off the same way.  Delays
are *simulated* by default: they are summed into the telemetry (span meta,
``faults.*`` metrics, :class:`RetryExhausted`) but nothing sleeps unless
the policy carries an explicit ``sleep`` callable.

Telemetry: every call annotates the innermost open span's meta under
``meta["retry"][site]`` (attempts, simulated delay, outcome) and bumps
guarded ``faults.retry.*`` counters.  Failed attempts run inside a metrics
*quarantine* — the registry is checkpointed before each attempt and rolled
back (keeping ``faults.*``) when the attempt dies — so a recovered call
leaves metric values bit-identical to a never-faulted call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import inject, inject_result
from repro.obs.metrics import REGISTRY as _OBS
from repro.obs.trace import current_span

__all__ = [
    "CorruptedResult",
    "DEFAULT_POLICY",
    "HOT_POLICY",
    "RetryExhausted",
    "RetryPolicy",
    "retry_call",
]


class CorruptedResult(RuntimeError):
    """A wrapped call returned a value its validator rejected."""


class RetryExhausted(RuntimeError):
    """All attempts at a site failed; carries the budget accounting."""

    def __init__(self, site: str, attempts: int, simulated_delay: float) -> None:
        super().__init__(
            f"site {site!r} exhausted its retry budget after {attempts} attempt(s) "
            f"({simulated_delay:.3f}s simulated backoff)"
        )
        self.site = site
        self.attempts = attempts
        self.simulated_delay = simulated_delay


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a site gets and how the backoff between them grows.

    ``retry_on`` lists the exception types worth retrying; ``give_up_on``
    carves out types that propagate immediately even when they match
    ``retry_on`` (the pipeline puts :class:`PipelineError` there — a
    missing input is not transient).  ``sleep`` is an optional callable
    receiving each backoff delay; ``None`` keeps delays simulated-only.
    ``quarantine_metrics`` rolls the metrics registry back after a failed
    attempt so retries never double-count (``faults.*`` survive).
    """

    attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 1.0
    retry_on: tuple = (Exception,)
    give_up_on: tuple = ()
    sleep: object = None  # callable(seconds) -> None, or None
    quarantine_metrics: bool = True

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.backoff_multiplier < 1:
            raise ValueError("backoff_base/cap must be >= 0 and multiplier >= 1")

    def delay(self, failure_index: int) -> float:
        """Backoff after the ``failure_index``-th failure (0-based)."""
        return min(self.backoff_cap, self.backoff_base * self.backoff_multiplier ** failure_index)


DEFAULT_POLICY = RetryPolicy()

# Pure hot-path wrappers (blocking, pair featurisation): one retry, short
# backoff — enough to absorb a single injected or transient fault without
# materially stretching the hot loop.
HOT_POLICY = RetryPolicy(attempts=2, backoff_base=0.01, backoff_cap=0.1)


def _note(site: str, attempts: int, simulated_delay: float, outcome: str) -> None:
    """Record the retry accounting on the innermost open span, if any."""
    open_span = current_span()
    if open_span is None:
        return
    open_span.meta.setdefault("retry", {})[site] = {
        "attempts": attempts,
        "simulated_delay_seconds": round(simulated_delay, 6),
        "outcome": outcome,
    }


def _keep_faults(name: str) -> bool:
    return name.startswith("faults.")


def retry_call(
    fn,
    *args,
    site: str,
    policy: RetryPolicy | None = None,
    validate=None,
    give_up_on: tuple = (),
    **kwargs,
):
    """Call ``fn(*args, **kwargs)`` under ``policy`` at the named fault site.

    Each attempt passes through the fault-injection points — :func:`inject`
    at entry, :func:`inject_result` on the return value — and, when
    ``validate`` is given, rejects results failing it (raising
    :class:`CorruptedResult`, which is retryable).  Retrying is only sound
    when ``fn`` is pure or idempotent: every wired site re-runs the same
    deterministic computation, which is what makes a recovered run
    bit-identical to a fault-free one.  Raises :class:`RetryExhausted`
    (chained to the last error) once the budget is spent.
    """
    policy = policy or DEFAULT_POLICY
    give_up = tuple(give_up_on) + tuple(policy.give_up_on)
    simulated_delay = 0.0
    for attempt in range(policy.attempts):
        checkpoint = None
        if policy.quarantine_metrics and _OBS.enabled:
            checkpoint = _OBS.checkpoint()
        try:
            inject(site)
            result = inject_result(site, fn(*args, **kwargs))
            if validate is not None and not validate(result):
                raise CorruptedResult(
                    f"site {site!r}: result failed validation: {result!r}"
                )
        except BaseException as exc:
            retryable = isinstance(exc, policy.retry_on) and not (
                give_up and isinstance(exc, give_up)
            )
            if not retryable:
                raise
            if checkpoint is not None:
                _OBS.restore(checkpoint, keep=_keep_faults)
            if attempt == policy.attempts - 1:
                _note(site, attempt + 1, simulated_delay, "exhausted")
                if _OBS.enabled:
                    _OBS.counter("faults.retry.exhausted").inc()
                raise RetryExhausted(site, attempt + 1, simulated_delay) from exc
            delay = policy.delay(attempt)
            simulated_delay += delay
            if policy.sleep is not None:
                policy.sleep(delay)
        else:
            _note(site, attempt + 1, simulated_delay, "ok")
            if _OBS.enabled and attempt > 0:
                _OBS.counter("faults.retry.recovered").inc()
                _OBS.counter("faults.retry.extra_attempts").inc(float(attempt))
            return result
    raise AssertionError("unreachable")  # pragma: no cover
