"""Deterministic fault injection: seeded, schedule-driven faults at named sites.

A :class:`FaultPlan` is a list of :class:`Fault` schedule entries.  While a
plan is active (``with plan:`` — mirroring :class:`repro.obs.metrics.collecting`),
instrumented code points call :func:`inject` / :func:`inject_result` with
their site name; the plan counts invocations per concrete site and fires
exactly the scheduled faults:

* ``error`` — raise :class:`InjectedFault` at the scheduled hit indices;
* ``latency`` — account artificial delay (simulated by default: recorded
  in the ledger and ``faults.*`` metrics, no wall-clock sleep, so the run
  stays deterministic; ``real_sleep=True`` opts into actually sleeping);
* ``corrupt`` — replace the wrapped call's return value (with the
  :data:`CORRUPTED` sentinel unless the fault carries its own mutator),
  which a validating retry site detects and retries.

Determinism: the schedule is data (site pattern + hit indices), the
per-site counters start from zero at activation, and nothing reads clocks
or ambient randomness — so replaying the same plan against the same code
fires the same faults at the same points, every run.  With no active plan
:func:`inject` is a single module-global ``None`` check: zero overhead.
"""

from __future__ import annotations

import fnmatch
import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import REGISTRY as _OBS

__all__ = [
    "CORRUPTED",
    "Fault",
    "FaultLedger",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "inject",
    "inject_result",
]

_KINDS = ("error", "latency", "corrupt")


class InjectedFault(RuntimeError):
    """The exception an ``error`` fault raises at its site."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected fault at site {site!r} (hit {hit})")
        self.site = site
        self.hit = hit


class _Corrupted:
    """Default corrupted-return sentinel: fails any type-shaped validation."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<corrupted>"


CORRUPTED = _Corrupted()


@dataclass(frozen=True)
class Fault:
    """One schedule entry: fire ``kind`` at ``site`` on invocation ``hits``.

    ``site`` may be a concrete name or an ``fnmatch`` pattern
    (``"pipeline.step.*"``); hit indices are 0-based per concrete site.
    """

    site: str
    kind: str = "error"
    hits: tuple[int, ...] = (0,)
    delay_seconds: float = 0.0
    corrupt: object = None  # callable(value) -> value for "corrupt" faults

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, got {self.kind!r}")
        if not self.site:
            raise ValueError("fault site must be non-empty")
        if not self.hits or any(h < 0 for h in self.hits):
            raise ValueError(f"hits must be non-empty and >= 0, got {self.hits!r}")
        if self.kind == "latency" and self.delay_seconds <= 0:
            raise ValueError("latency faults need delay_seconds > 0")


@dataclass
class FaultLedger:
    """Record of every fault an activation actually fired."""

    events: list[dict] = field(default_factory=list)

    def record(self, site: str, kind: str, hit: int, delay: float = 0.0) -> None:
        self.events.append(
            {"site": site, "kind": kind, "hit": hit, "delay_seconds": delay}
        )

    def count(self, kind: str | None = None, site: str | None = None) -> int:
        return sum(
            1
            for event in self.events
            if (kind is None or event["kind"] == kind)
            and (site is None or event["site"] == site)
        )

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return counts

    @property
    def simulated_latency_seconds(self) -> float:
        return sum(e["delay_seconds"] for e in self.events if e["kind"] == "latency")


class FaultPlan:
    """A schedule of faults, activated as a context manager.

    Entering the plan resets its per-site counters and ledger, so one plan
    object replays identically across activations.  Activations nest:
    the innermost plan wins, the previous one is restored on exit.
    """

    def __init__(
        self, faults: list[Fault] | tuple[Fault, ...] = (), *,
        real_sleep: bool = False, name: str = "",
    ) -> None:
        self.faults = list(faults)
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"FaultPlan takes Fault entries, got {fault!r}")
        self.real_sleep = real_sleep
        self.name = name
        self.ledger = FaultLedger()
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._results: dict[str, int] = {}
        self._previous: "FaultPlan | None" = None

    # -- schedule ------------------------------------------------------- #

    def describe(self) -> list[dict]:
        """JSON-ready schedule dump (stable order), for logs and tests."""
        return sorted(
            (
                {
                    "site": f.site,
                    "kind": f.kind,
                    "hits": list(f.hits),
                    "delay_seconds": f.delay_seconds,
                }
                for f in self.faults
            ),
            key=lambda d: (d["site"], d["kind"], d["hits"]),
        )

    @classmethod
    def chaos(
        cls,
        seed: int,
        *,
        sites: "set[str] | None" = None,
        error_rate: float = 0.5,
        corrupt_rate: float = 0.25,
        latency_rate: float = 0.35,
        max_delay: float = 0.02,
    ) -> "FaultPlan":
        """A seeded, recoverable-by-construction chaos schedule.

        Error and corrupted-return faults are drawn only against retryable
        (respectively validating) sites from the catalog, with a single
        hit at invocation 0 and at most one attempt-consuming fault per
        site — one under every wired budget (the smallest is 2 attempts) —
        so a chaos run must converge to the fault-free result.  Latency
        faults (simulated) may land anywhere.  ``sites`` optionally
        restricts the schedule to a subset of catalog patterns.

        **Append stability**: each (kind, site) decision draws from its
        own generator, seeded from the chaos seed plus a content hash of
        the site name — never from one shared stream walked in catalog
        order.  Growing the catalog therefore *adds* scheduled faults
        without perturbing any pre-existing site's schedule: a seed that
        used to kill ``par.pool`` still kills exactly ``par.pool`` after
        new sites are declared (the regression tests pin seeds 7 and 11).
        """
        from repro.faults.sites import CORRUPT_SITES, LATENCY_ONLY_SITES, RETRY_SITES

        def stream(kind_index: int, site: str) -> np.random.Generator:
            token = int.from_bytes(
                hashlib.sha1(site.encode("utf-8")).digest()[:8], "big"
            )
            return np.random.default_rng(
                np.random.SeedSequence([0xFA0175, int(seed), kind_index, token])
            )

        chosen = (lambda s: sites is None or s in sites)
        faults: list[Fault] = []
        consuming: set[str] = set()
        for site in sorted(RETRY_SITES):
            if chosen(site) and stream(0, site).random() < error_rate:
                faults.append(Fault(site, "error", hits=(0,)))
                consuming.add(site)
        for site in sorted(CORRUPT_SITES):
            if chosen(site) and site not in consuming \
                    and stream(1, site).random() < corrupt_rate:
                faults.append(Fault(site, "corrupt", hits=(0,)))
        for site in sorted({**RETRY_SITES, **LATENCY_ONLY_SITES}):
            if not chosen(site):
                continue
            rng = stream(2, site)
            if rng.random() < latency_rate:
                delay = round(float(rng.uniform(0.001, max_delay)), 6)
                faults.append(Fault(site, "latency", hits=(0,), delay_seconds=delay))
        return cls(faults, name=f"chaos[{seed}]")

    # -- activation ----------------------------------------------------- #

    def reset(self) -> None:
        """Clear per-site counters and the ledger (fresh replay)."""
        with self._lock:
            self._calls.clear()
            self._results.clear()
            self.ledger = FaultLedger()

    def __enter__(self) -> "FaultPlan":
        global _ACTIVE
        self.reset()
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    # -- firing --------------------------------------------------------- #

    def _matching(self, site: str, kinds: tuple[str, ...]) -> list[Fault]:
        return [
            fault
            for fault in self.faults
            if fault.kind in kinds and fnmatch.fnmatchcase(site, fault.site)
        ]

    def _fire_call(self, site: str) -> None:
        with self._lock:
            hit = self._calls.get(site, 0)
            self._calls[site] = hit + 1
        delay = sum(
            fault.delay_seconds
            for fault in self._matching(site, ("latency",))
            if hit in fault.hits
        )
        if delay > 0:
            self.ledger.record(site, "latency", hit, delay)
            if _OBS.enabled:
                _OBS.counter("faults.injected.latency").inc()
                _OBS.counter("faults.latency_seconds").inc(delay)
            if self.real_sleep:
                time.sleep(delay)
        for fault in self._matching(site, ("error",)):
            if hit in fault.hits:
                self.ledger.record(site, "error", hit)
                if _OBS.enabled:
                    _OBS.counter("faults.injected.error").inc()
                raise InjectedFault(site, hit)

    def _fire_result(self, site: str, value: object) -> object:
        with self._lock:
            hit = self._results.get(site, 0)
            self._results[site] = hit + 1
        for fault in self._matching(site, ("corrupt",)):
            if hit in fault.hits:
                self.ledger.record(site, "corrupt", hit)
                if _OBS.enabled:
                    _OBS.counter("faults.injected.corrupt").inc()
                value = fault.corrupt(value) if fault.corrupt is not None else CORRUPTED
        return value


_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently activated plan, if any."""
    return _ACTIVE


def inject(site: str) -> None:
    """Fire any scheduled error/latency faults for this ``site`` invocation.

    No-op (one global ``None`` check) when no plan is active — wired hot
    paths pay nothing with faults off.
    """
    plan = _ACTIVE
    if plan is None:
        return
    plan._fire_call(site)


def inject_result(site: str, value: object) -> object:
    """Pass ``value`` through any scheduled corrupted-return fault."""
    plan = _ACTIVE
    if plan is None:
        return value
    return plan._fire_result(site, value)
