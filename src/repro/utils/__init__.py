"""Shared utilities: deterministic RNG handling, content hashing, timing,
validation."""

from repro.utils.content import canonical, content_key, digest_rows
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.stats import percentile
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fitted,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "canonical",
    "content_key",
    "digest_rows",
    "ensure_rng",
    "percentile",
    "spawn_rng",
    "Timer",
    "check_fitted",
    "check_positive",
    "check_probability",
    "check_same_length",
]
