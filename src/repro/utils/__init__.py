"""Shared utilities: deterministic RNG handling, timing, validation."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fitted,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "check_fitted",
    "check_positive",
    "check_probability",
    "check_same_length",
]
