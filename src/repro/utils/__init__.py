"""Shared utilities: deterministic RNG handling, content hashing, timing,
validation."""

from repro.utils.content import canonical, content_key
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fitted,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "canonical",
    "content_key",
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "check_fitted",
    "check_positive",
    "check_probability",
    "check_same_length",
]
