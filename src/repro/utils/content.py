"""Content-addressed hashing of record-like values.

:func:`content_key` is the identity primitive shared by the serving
caches (:mod:`repro.serve.cache`) and the kernel substrate
(:mod:`repro.kernels`): two dicts with the same *content* get the same
key regardless of insertion order, object identity, process or
``PYTHONHASHSEED`` — sha1 over a canonical JSON rendering, never
``hash()``.  It lives in :mod:`repro.utils` so lower layers (``er``,
``kernels``) can deduplicate tuples without importing the serving
package and creating an import cycle.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical", "content_key", "digest_rows"]


def canonical(value: object) -> object:
    """JSON-representable canonical form of a record value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    # numpy scalars stringify deterministically via repr-stable str().
    return str(value)


def content_key(record: object) -> str:
    """Stable content digest of a record (dict key order never matters).

    Uses sha1 over a canonical JSON rendering rather than ``hash()`` so
    keys are identical across processes and ``PYTHONHASHSEED`` values —
    cache behaviour and kernel dedup must replay bit-identically run to
    run.
    """
    payload = json.dumps(canonical(record), sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def _quantize(value: object, decimals: int) -> object:
    if isinstance(value, float):
        return round(value, decimals)
    if isinstance(value, dict):
        return {k: _quantize(v, decimals) for k, v in value.items()}
    if isinstance(value, list):
        return [_quantize(v, decimals) for v in value]
    return value


def digest_rows(rows: "list[dict]", *, float_decimals: int = 9) -> str:
    """sha1 over a canonical JSON rendering of a row sequence.

    Floats are quantized to ``float_decimals`` first: legitimate
    topology/batching differences perturb float computations in the last
    bit (shape-dependent matmul reductions, per-shard cache state shifting
    batch cuts), so raw values agree across equivalent runs only to
    ~1 ulp.  Nine decimals is far below every decision threshold in the
    stack and far above that noise, so one digest means "same answers",
    not "same batch plan".  Shared by :func:`repro.loop.answers_digest`
    and the gateway's per-scenario answer digests.
    """
    payload = json.dumps(
        [_quantize(canonical(row), float_decimals) for row in rows],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()
