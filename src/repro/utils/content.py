"""Content-addressed hashing of record-like values.

:func:`content_key` is the identity primitive shared by the serving
caches (:mod:`repro.serve.cache`) and the kernel substrate
(:mod:`repro.kernels`): two dicts with the same *content* get the same
key regardless of insertion order, object identity, process or
``PYTHONHASHSEED`` — sha1 over a canonical JSON rendering, never
``hash()``.  It lives in :mod:`repro.utils` so lower layers (``er``,
``kernels``) can deduplicate tuples without importing the serving
package and creating an import cycle.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical", "content_key"]


def canonical(value: object) -> object:
    """JSON-representable canonical form of a record value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    # numpy scalars stringify deterministically via repr-stable str().
    return str(value)


def content_key(record: object) -> str:
    """Stable content digest of a record (dict key order never matters).

    Uses sha1 over a canonical JSON rendering rather than ``hash()`` so
    keys are identical across processes and ``PYTHONHASHSEED`` values —
    cache behaviour and kernel dedup must replay bit-identically run to
    run.
    """
    payload = json.dumps(canonical(record), sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()
