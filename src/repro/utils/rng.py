"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
convention uniform and makes experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed, or
    an existing generator (returned unchanged so state is shared).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed or a Generator, got {type(rng)!r}")


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used when a component fans work out to sub-components that must not share
    random state (e.g. per-layer initialisation, parallel imputation draws).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
