"""Small argument-validation helpers shared across the library.

These raise early with actionable messages instead of letting numpy produce
shape errors deep inside a training loop.
"""

from __future__ import annotations

from typing import Any, Sized


def check_positive(name: str, value: float, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_same_length(name_a: str, a: Sized, name_b: str, b: Sized) -> None:
    """Raise ``ValueError`` unless the two sized arguments have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def check_fitted(obj: Any, attribute: str) -> None:
    """Raise ``RuntimeError`` unless ``obj`` has a non-None ``attribute``.

    Mirrors scikit-learn's fitted-estimator convention: estimators set a
    trailing-underscore attribute in ``fit`` and predict-time methods call
    this guard first.
    """
    if getattr(obj, attribute, None) is None:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted yet; call fit() before "
            f"using this method (missing attribute {attribute!r})"
        )
