"""Wall-clock timing helper used by the benchmark harness.

Since the observability PR, :class:`Timer` is a thin veneer over
:mod:`repro.obs.trace` — each ``Timer`` block opens a named span, so timed
regions show up in the provenance tree alongside pipeline steps instead
of being invisible ad-hoc ``perf_counter`` pairs.
"""

from __future__ import annotations

from repro.obs.trace import Span, span


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            expensive()
        print(t.elapsed)

    Pass ``name`` to label the underlying span (default ``"timer"``).
    """

    def __init__(self, name: str = "timer") -> None:
        self.name = name
        self.start: float | None = None
        self.elapsed: float = 0.0
        self.span: Span | None = None
        self._cm: span | None = None

    def __enter__(self) -> "Timer":
        self._cm = span(self.name)
        self.span = self._cm.__enter__()
        self.start = self.span.start
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._cm is not None:
            self._cm.__exit__(*exc_info)
            self.elapsed = self.span.duration
            self._cm = None
