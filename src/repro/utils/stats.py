"""Deterministic order statistics shared by the serving and gateway layers.

:func:`percentile` is the single nearest-rank implementation behind
``SimReport.latency_percentiles`` (:mod:`repro.serve.sim`) and the
gateway's per-route/per-tenant SLO rows (:mod:`repro.gateway`).  It lives
in :mod:`repro.utils` so the gateway does not need to import the serving
simulator (or copy the arithmetic) to report latency percentiles.
"""

from __future__ import annotations

import math

__all__ = ["percentile"]


def percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty).

    Nearest-rank (ceil) rather than interpolation: the result is always an
    observed value, which keeps reported tail latencies honest and the
    arithmetic trivially bit-stable.
    """
    if not ordered:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]
