"""Heterogeneous-graph cell embeddings (paper Section 3.1, Figure 4).

The "more natural (sophisticated) model for DC": convert a relation to the
Figure-4 graph (``repro.data.graph``) and learn node embeddings with
weighted random walks + skip-gram (DeepWalk-style).  FD edges carry higher
weight, so walks — and therefore embeddings — respect integrity
constraints, which the tuple-as-document adaptation cannot do.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.data.dependencies import FunctionalDependency
from repro.data.graph import cell_node, table_to_graph
from repro.data.table import Table
from repro.text.similarity import cosine
from repro.text.word2vec import SkipGram
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted, check_positive


class GraphEmbedder:
    """DeepWalk-style node embeddings over a weighted graph.

    Parameters
    ----------
    dim, window, epochs, negatives:
        Passed through to the skip-gram trainer over walk sequences.
    walk_length, walks_per_node:
        Random-walk corpus size.
    """

    def __init__(
        self,
        dim: int = 32,
        walk_length: int = 12,
        walks_per_node: int = 8,
        window: int = 4,
        epochs: int = 5,
        negatives: int = 5,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        check_positive("walk_length", walk_length)
        check_positive("walks_per_node", walks_per_node)
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self._rng = ensure_rng(rng)
        self.model = SkipGram(
            dim=dim, window=window, epochs=epochs, negatives=negatives, rng=self._rng
        )
        self.graph_: nx.Graph | None = None

    def fit(self, graph: nx.Graph) -> "GraphEmbedder":
        """Learn embeddings for every node of ``graph``."""
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot embed an empty graph")
        self.graph_ = graph
        walks = self._generate_walks(graph)
        self.model.fit(walks)
        return self

    def _generate_walks(self, graph: nx.Graph) -> list[list[str]]:
        """Weighted random walks: next node ∝ edge weight."""
        # Precompute neighbour arrays and cumulative weights per node.
        neighbours: dict[str, tuple[list[str], np.ndarray]] = {}
        for node in graph.nodes:
            adjacent = list(graph[node])
            if not adjacent:
                neighbours[node] = ([], np.zeros(0))
                continue
            weights = np.array([graph[node][nbr].get("weight", 1.0) for nbr in adjacent])
            neighbours[node] = (adjacent, np.cumsum(weights / weights.sum()))
        walks: list[list[str]] = []
        nodes = list(graph.nodes)
        for _ in range(self.walks_per_node):
            order = self._rng.permutation(len(nodes))
            for idx in order:
                walk = [nodes[idx]]
                for _ in range(self.walk_length - 1):
                    adjacent, cumulative = neighbours[walk[-1]]
                    if not adjacent:
                        break
                    draw = self._rng.random()
                    walk.append(adjacent[int(np.searchsorted(cumulative, draw))])
                walks.append(walk)
        return walks

    def vector(self, node: str) -> np.ndarray:
        """Embedding of a node id; zero vector when the node is unknown."""
        check_fitted(self, "graph_")
        if node in self.model:
            return self.model.vector(node)
        return np.zeros(self.model.dim)

    def similarity(self, node_a: str, node_b: str) -> float:
        return cosine(self.vector(node_a), self.vector(node_b))

    def association(self, node_a: str, node_b: str) -> float:
        """First-order walk co-occurrence score (see
        :meth:`SkipGram.first_order_similarity`): high iff the two nodes
        actually appear near each other on random walks — the right signal
        for "are these cells linked in the graph", robust to the
        anisotropy that washes out plain cosine on small graphs."""
        check_fitted(self, "graph_")
        return self.model.first_order_similarity(node_a, node_b)

    def most_similar(self, node: str, topn: int = 5) -> list[tuple[str, float]]:
        check_fitted(self, "graph_")
        return self.model.most_similar(node, topn=topn)


class TableGraphEmbedder:
    """Convenience wrapper: relation (+FDs) → Figure-4 graph → embeddings.

    ``use_fd_edges=False`` gives the ablation arm of experiment E8.
    """

    def __init__(
        self,
        dim: int = 32,
        use_fd_edges: bool = True,
        fd_weight: float = 3.0,
        rng: np.random.Generator | int | None = None,
        **walk_kwargs: object,
    ) -> None:
        self.use_fd_edges = use_fd_edges
        self.fd_weight = fd_weight
        self.embedder = GraphEmbedder(dim=dim, rng=rng, **walk_kwargs)

    def fit(self, table: Table, fds: list[FunctionalDependency] | None = None) -> "TableGraphEmbedder":
        fds = fds if self.use_fd_edges else []
        graph = table_to_graph(table, fds, fd_weight=self.fd_weight)
        self.embedder.fit(graph)
        return self

    def cell_vector(self, column: str, value: object) -> np.ndarray:
        """Embedding of the (column, value) cell node."""
        return self.embedder.vector(cell_node(column, value))

    def cell_similarity(
        self, column_a: str, value_a: object, column_b: str, value_b: object
    ) -> float:
        return cosine(self.cell_vector(column_a, value_a), self.cell_vector(column_b, value_b))

    def cell_association(
        self, column_a: str, value_a: object, column_b: str, value_b: object
    ) -> float:
        """First-order association between two cells (graph proximity)."""
        return self.embedder.association(
            cell_node(column_a, value_a), cell_node(column_b, value_b)
        )
