"""Distributed representations for data curation (paper Section 3.1):
cell embeddings, heterogeneous-graph embeddings, compositional tuple /
column / table / database embeddings, and pre-trained model management."""

from repro.embeddings.cell import CellEmbedder, cooccurrence_hit_rate, tuple_documents
from repro.embeddings.compose import (
    LSTMComposer,
    TupleEmbedder,
    column_embedding,
    database_embedding,
    mean_compose,
    sif_weights,
    table_embedding,
)
from repro.embeddings.graph import GraphEmbedder, TableGraphEmbedder
from repro.embeddings.pretrained import EmbeddingStore, fine_tune

__all__ = [
    "CellEmbedder",
    "tuple_documents",
    "cooccurrence_hit_rate",
    "GraphEmbedder",
    "TableGraphEmbedder",
    "TupleEmbedder",
    "LSTMComposer",
    "mean_compose",
    "sif_weights",
    "column_embedding",
    "table_embedding",
    "database_embedding",
    "EmbeddingStore",
    "fine_tune",
]
