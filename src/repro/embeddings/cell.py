"""Distributed representations of cells (paper Section 3.1).

Implements the "adapted approach from word embeddings": treat each tuple as
a document whose words are attribute values, and run skip-gram over it.
The module deliberately exposes the knobs the paper criticises — most
importantly the context ``window`` — so experiment E7 can demonstrate
limitation 2 (related attributes further apart than the window never
co-occur as training pairs).
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.data.types import is_missing
from repro.text.similarity import cosine
from repro.text.word2vec import SkipGram
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


def tuple_documents(
    tables: list[Table],
    qualify: bool = False,
    lowercase: bool = True,
) -> list[list[str]]:
    """Convert relations to "tuple documents" for embedding training.

    Each row becomes one document; each cell becomes one token (whole-value
    tokens, so ``"human resources"`` is a single unit).  With
    ``qualify=True`` tokens are prefixed by their column (``dept=finance``),
    which separates homonyms across columns at the cost of cross-column
    generalisation.
    """
    documents: list[list[str]] = []
    for table in tables:
        for i in range(table.num_rows):
            doc: list[str] = []
            for column in table.columns:
                value = table.cell(i, column)
                if is_missing(value):
                    continue
                token = str(value)
                if lowercase:
                    token = token.lower()
                doc.append(f"{column}={token}" if qualify else token)
            if doc:
                documents.append(doc)
    return documents


class CellEmbedder:
    """Tuple-as-document skip-gram cell embeddings.

    Parameters mirror :class:`~repro.text.word2vec.SkipGram`; ``window``
    defaults to a large value so that, by default, all attributes of a
    tuple co-occur (the "safe" configuration; E7 sweeps it downward).
    """

    def __init__(
        self,
        dim: int = 32,
        window: int = 16,
        epochs: int = 10,
        negatives: int = 5,
        qualify: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.qualify = qualify
        self._rng = ensure_rng(rng)
        self.model = SkipGram(
            dim=dim, window=window, epochs=epochs, negatives=negatives, rng=self._rng
        )
        self.fitted_: bool | None = None

    def fit(self, tables: list[Table]) -> "CellEmbedder":
        """Learn cell embeddings from one or more relations."""
        documents = tuple_documents(tables, qualify=self.qualify)
        if not documents:
            raise ValueError("no non-empty tuples to train on")
        self.model.fit(documents)
        self.fitted_ = True
        return self

    def _key(self, value: object, column: str | None = None) -> str:
        token = str(value).lower()
        if self.qualify:
            if column is None:
                raise ValueError("qualified embedder needs the column name")
            return f"{column}={token}"
        return token

    def vector(self, value: object, column: str | None = None) -> np.ndarray:
        """Embedding of a cell value (zero vector when unseen)."""
        check_fitted(self, "fitted_")
        key = self._key(value, column)
        if key in self.model:
            return self.model.vector(key)
        return np.zeros(self.model.dim)

    def similarity(
        self,
        value_a: object,
        value_b: object,
        column_a: str | None = None,
        column_b: str | None = None,
    ) -> float:
        """Cosine similarity between two cell values."""
        return cosine(self.vector(value_a, column_a), self.vector(value_b, column_b))

    def association(
        self,
        value_a: object,
        value_b: object,
        column_a: str | None = None,
        column_b: str | None = None,
    ) -> float:
        """First-order co-occurrence association between two cell values
        (the trained SGNS objective itself; see
        :meth:`SkipGram.first_order_similarity`)."""
        check_fitted(self, "fitted_")
        return self.model.first_order_similarity(
            self._key(value_a, column_a), self._key(value_b, column_b)
        )

    def most_similar(self, value: object, column: str | None = None, topn: int = 5):
        """Nearest cells to ``value`` in embedding space."""
        check_fitted(self, "fitted_")
        key = self._key(value, column)
        return self.model.most_similar(key, topn=topn)


def cooccurrence_hit_rate(
    table: Table,
    column_a: str,
    column_b: str,
    window: int,
    rng: np.random.Generator | int | None = 0,
    trials: int = 2000,
) -> float:
    """Probability that ``column_a`` and ``column_b`` values land in the same
    dynamic skip-gram window when the tuple is read as a document.

    This is the analytical core of E7: with column distance ``d = |i - j|``
    and dynamic window size drawn uniformly from {1..window}, the hit rate
    is ``P(span >= d)``; the Monte-Carlo estimate here follows the exact
    pair-generation procedure of the trainer.
    """
    rng = ensure_rng(rng)
    idx_a = table.columns.index(column_a)
    idx_b = table.columns.index(column_b)
    distance = abs(idx_a - idx_b)
    hits = 0
    for _ in range(trials):
        span = int(rng.integers(1, window + 1))
        if span >= distance:
            hits += 1
    return hits / trials
