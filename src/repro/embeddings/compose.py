"""Compositional distributed representations (paper Section 3.1).

From atomic word/cell vectors the paper asks for representations of
increasingly abstract units: tuples (tuple2vec), columns (column2vec),
tables (table2vec) and whole databases (database2vec).  Three composition
strategies are provided:

* **mean** — the "common approach" of averaging component vectors;
* **SIF** — smoothed-inverse-frequency weighting (rare words count more),
  a strong unsupervised baseline for sentence-style composition;
* **LSTM** — a data-driven composer (:class:`LSTMComposer`) trained
  end-to-end inside DeepER, matching the paper's "more sophisticated
  approach such as LSTM".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.table import Table
from repro.data.types import is_missing
from repro.nn.layers import Module
from repro.nn.rnn import SequenceEncoder
from repro.nn.tensor import Tensor
from repro.text.tokenize import word_tokenize
from repro.text.word2vec import SkipGram
from repro.utils.rng import ensure_rng

VectorFn = Callable[[str], np.ndarray]


def mean_compose(vectors: np.ndarray, dim: int) -> np.ndarray:
    """Average composition; zero vector for empty input."""
    if vectors.size == 0:
        return np.zeros(dim)
    return vectors.mean(axis=0)


def sif_weights(tokens: list[str], model: SkipGram, a: float = 1e-3) -> np.ndarray:
    """Smoothed-inverse-frequency weights ``a / (a + p(w))`` per token."""
    freqs = np.asarray(model.vocabulary.frequencies(), dtype=np.float64)
    total = freqs.sum()
    weights = []
    for token in tokens:
        token_id = model.vocabulary.get(token)
        p = freqs[token_id] / total if token_id is not None else 0.0
        weights.append(a / (a + p))
    return np.asarray(weights)


class TupleEmbedder:
    """Embed records (dicts) into vectors from word embeddings.

    Parameters
    ----------
    model:
        Fitted :class:`SkipGram` supplying word vectors.
    columns:
        The attributes to include, in a fixed order.
    method:
        ``"mean"`` or ``"sif"``.
    vector_fn:
        Optional override mapping token → vector (e.g. subword back-off);
        defaults to the model's in-vocabulary lookup with zero for OOV.
    """

    def __init__(
        self,
        model: SkipGram,
        columns: list[str],
        method: str = "mean",
        vector_fn: VectorFn | None = None,
    ) -> None:
        if method not in {"mean", "sif"}:
            raise ValueError(f"method must be 'mean' or 'sif', got {method!r}")
        self.model = model
        self.columns = list(columns)
        self.method = method
        self._vector_fn = vector_fn or self._default_vector

    def _default_vector(self, token: str) -> np.ndarray:
        if token in self.model:
            return self.model.vector(token)
        return np.zeros(self.model.dim)

    @property
    def dim(self) -> int:
        return self.model.dim

    def tokens_of(self, record: dict[str, object]) -> list[str]:
        """Token stream of a record over the configured columns."""
        tokens: list[str] = []
        for column in self.columns:
            value = record.get(column)
            if is_missing(value):
                continue
            tokens.extend(word_tokenize(str(value)))
        return tokens

    def embed(self, record: dict[str, object]) -> np.ndarray:
        """Tuple2vec: one vector per record."""
        tokens = self.tokens_of(record)
        if not tokens:
            return np.zeros(self.dim)
        vectors = np.array([self._vector_fn(t) for t in tokens])
        if self.method == "sif":
            weights = sif_weights(tokens, self.model)
            total = weights.sum()
            if total < 1e-12:
                return np.zeros(self.dim)
            return (vectors * weights[:, None]).sum(axis=0) / total
        return mean_compose(vectors, self.dim)

    def embed_many(self, records: list[dict[str, object]]) -> np.ndarray:
        """Stack of tuple embeddings, shape ``(n, dim)``."""
        if not records:
            return np.zeros((0, self.dim))
        return np.array([self.embed(r) for r in records])

    def embed_columns(self, record: dict[str, object]) -> np.ndarray:
        """Per-attribute embeddings, shape ``(len(columns), dim)``.

        Missing or empty attributes map to the zero vector.  DeepER's pair
        featurisation compares attributes position-by-position, which needs
        this attribute-aligned view rather than one whole-tuple bag.
        """
        out = np.zeros((len(self.columns), self.dim))
        for idx, column in enumerate(self.columns):
            value = record.get(column)
            if is_missing(value):
                continue
            tokens = word_tokenize(str(value))
            if not tokens:
                continue
            vectors = np.array([self._vector_fn(t) for t in tokens])
            if self.method == "sif":
                weights = sif_weights(tokens, self.model)
                total = weights.sum()
                if total >= 1e-12:
                    out[idx] = (vectors * weights[:, None]).sum(axis=0) / total
            else:
                out[idx] = vectors.mean(axis=0)
        return out

    def token_matrix(self, record: dict[str, object], max_tokens: int) -> np.ndarray:
        """Fixed-length ``(max_tokens, dim)`` matrix for sequence models.

        Tokens beyond ``max_tokens`` are truncated; shorter records are
        zero-padded (zero rows contribute nothing to the LSTM input).
        """
        tokens = self.tokens_of(record)[:max_tokens]
        matrix = np.zeros((max_tokens, self.dim))
        for i, token in enumerate(tokens):
            matrix[i] = self._vector_fn(token)
        return matrix


def column_embedding(
    table: Table, column: str, embed_value: VectorFn, dim: int, sample: int | None = None,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Column2vec: mean embedding of a column's (optionally sampled) values."""
    values = [v for v in table.column(column) if not is_missing(v)]
    if sample is not None and len(values) > sample:
        rng = ensure_rng(rng)
        idx = rng.choice(len(values), size=sample, replace=False)
        values = [values[i] for i in idx]
    if not values:
        return np.zeros(dim)
    vectors = []
    for value in values:
        tokens = word_tokenize(str(value))
        if not tokens:
            continue
        vectors.append(np.mean([embed_value(t) for t in tokens], axis=0))
    if not vectors:
        return np.zeros(dim)
    return np.mean(vectors, axis=0)


def table_embedding(
    table: Table, embed_value: VectorFn, dim: int, columns: list[str] | None = None
) -> np.ndarray:
    """Table2vec: mean of its column embeddings."""
    columns = columns or table.columns
    if not columns:
        return np.zeros(dim)
    stack = np.array([column_embedding(table, c, embed_value, dim) for c in columns])
    return stack.mean(axis=0)


def database_embedding(tables: list[Table], embed_value: VectorFn, dim: int) -> np.ndarray:
    """Database2vec: mean of table embeddings."""
    if not tables:
        return np.zeros(dim)
    stack = np.array([table_embedding(t, embed_value, dim) for t in tables])
    return stack.mean(axis=0)


class LSTMComposer(Module):
    """Trainable tuple composition: token vectors → (bi)LSTM → tuple vector.

    Used as DeepER's sophisticated composition arm; consumes the padded
    ``(batch, max_tokens, dim)`` matrices from
    :meth:`TupleEmbedder.token_matrix`.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 32,
        bidirectional: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.encoder = SequenceEncoder(
            input_dim, hidden_dim, bidirectional=bidirectional, pooling="last", rng=rng
        )
        self.output_dim = self.encoder.output_size

    def forward(self, token_batch: "Tensor | np.ndarray") -> Tensor:
        if not isinstance(token_batch, Tensor):
            token_batch = Tensor(token_batch)
        return self.encoder(token_batch)
