"""Pre-trained embedding store and fine-tuning (paper Sections 3.3, 6.2.5).

The transfer-learning recipe the paper prescribes: pre-train embeddings
once on a large generic corpus (cheap, unlabeled), persist them, and reuse
them for downstream DC tasks — optionally fine-tuning on in-domain text.
:class:`EmbeddingStore` is the persistence layer; :func:`fine_tune`
continues SGNS training on new documents, extending the vocabulary with
in-domain terms while keeping the pre-trained geometry.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.text.vocab import Vocabulary
from repro.text.word2vec import SkipGram
from repro.utils.rng import ensure_rng


class EmbeddingStore:
    """Directory-backed registry of named pre-trained SkipGram models."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if "/" in name or "\\" in name:
            raise ValueError(f"model name must be a bare identifier, got {name!r}")
        return self.directory / f"{name}.npz"

    def save(self, name: str, model: SkipGram) -> Path:
        """Persist a fitted model under ``name`` (overwrites)."""
        path = self._path(name)
        model.save(str(path))
        return path

    def load(self, name: str) -> SkipGram:
        """Load a model previously saved under ``name``."""
        path = self._path(name)
        if not path.exists():
            raise FileNotFoundError(f"no pre-trained model named {name!r} in {self.directory}")
        return SkipGram.load(str(path))

    def names(self) -> list[str]:
        """All stored model names."""
        return sorted(p.stem for p in self.directory.glob("*.npz"))

    def __contains__(self, name: str) -> bool:
        return self._path(name).exists()


def fine_tune(
    model: SkipGram,
    documents: list[list[str]],
    epochs: int = 3,
    learning_rate: float | None = None,
    min_count: int = 1,
    rng: np.random.Generator | int | None = None,
) -> SkipGram:
    """Continue training a pre-trained model on in-domain ``documents``.

    Returns a **new** model: the vocabulary is the union of old and new
    tokens; vectors of known tokens start from the pre-trained values, new
    tokens start near zero.  A reduced learning rate (default: 40% of the
    original) keeps pre-trained structure from being washed out.
    """
    rng = ensure_rng(rng)
    merged = Vocabulary(min_count=1)
    merged.counts.update(model.vocabulary.counts)
    for doc in documents:
        merged.counts.update(token for token in doc)
    # Enforce min_count only for genuinely new tokens; pre-trained tokens stay.
    for token in list(merged.counts):
        new_count = merged.counts[token] - model.vocabulary.count_of(token)
        if token not in model.vocabulary and new_count < min_count:
            del merged.counts[token]
    merged._rebuild()

    tuned = SkipGram(
        dim=model.dim,
        window=model.window,
        negatives=model.negatives,
        epochs=epochs,
        learning_rate=learning_rate or model.learning_rate * 0.4,
        rng=rng,
    )
    tuned.vocabulary = merged
    size = len(merged)
    tuned.vectors_ = (rng.random((size, model.dim)) - 0.5) / model.dim
    tuned.context_vectors_ = np.zeros((size, model.dim))
    for token in merged.tokens:
        if token in model.vocabulary:
            old_id = model.vocabulary.id_of(token)
            new_id = merged.id_of(token)
            tuned.vectors_[new_id] = model.vectors_[old_id]
            tuned.context_vectors_[new_id] = model.context_vectors_[old_id]

    # Continue SGNS training on the new documents only.
    encoded = [tuned.vocabulary.encode(doc) for doc in documents]
    neg_table = tuned._negative_table()
    for epoch in range(epochs):
        lr = tuned.learning_rate * (1.0 - epoch / max(1, epochs))
        lr = max(lr, tuned.learning_rate * 0.05)
        centers, contexts = tuned._generate_pairs(encoded, None)
        if centers.size:
            tuned._sgd_epoch(centers, contexts, neg_table, lr, batch_size=tuned.batch_size)
    return tuned
