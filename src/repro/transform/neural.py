"""Neural program induction for string transformation (RobustFill-lite).

The paper contrasts symbolic program synthesis with "neural program
induction where the neural network produces outputs for new inputs by
using a latent specification of the program without explicitly generating
it" [32, 43].  This module is that comparator: a character-level seq2seq —
LSTM encoder, LSTM decoder with Luong dot-product attention over the
encoder states, plus a pointer-generator copy head: the output
distribution mixes a vocabulary softmax with the attention weights
scattered onto the input characters.  Without the copy path, digit-heavy
string tasks are pure memorisation (each position has 10 unseen values);
with it, "copy characters i..j" generalises.  Experiment E12 compares its
sample efficiency with the enumerative synthesizer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, Linear, Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.rnn import LSTMCell
from repro.nn.tensor import Tensor, concat, softmax, stack
from repro.nn.training import iterate_minibatches
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted

PAD, SOS, EOS = 0, 1, 2


class CharVocab:
    """Character vocabulary with pad / start / end specials."""

    def __init__(self, texts: list[str]) -> None:
        chars = sorted({ch for text in texts for ch in text})
        self._char_to_id = {ch: i + 3 for i, ch in enumerate(chars)}
        self._id_to_char = {i + 3: ch for i, ch in enumerate(chars)}

    def __len__(self) -> int:
        return len(self._char_to_id) + 3

    def encode(self, text: str, max_len: int, add_eos: bool = False) -> list[int]:
        ids = [self._char_to_id.get(ch, PAD) for ch in text]
        if add_eos:
            ids.append(EOS)
        ids = ids[:max_len]
        return ids + [PAD] * (max_len - len(ids))

    def decode(self, ids: list[int]) -> str:
        out = []
        for token_id in ids:
            if token_id == EOS:
                break
            char = self._id_to_char.get(int(token_id))
            if char:
                out.append(char)
        return "".join(out)


class Seq2SeqTransformer(Module):
    """Attention seq2seq for one string-transformation task."""

    def __init__(
        self,
        embedding_dim: int = 24,
        hidden_dim: int = 48,
        max_len: int = 32,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.max_len = max_len
        self._rng = ensure_rng(rng)
        self.vocab_: CharVocab | None = None
        # Layers are built lazily once the vocabulary size is known.
        self.embed: Embedding | None = None
        self.encoder_cell: LSTMCell | None = None
        self.decoder_cell: LSTMCell | None = None
        self.output_head: Linear | None = None

    def _build(self, vocab_size: int) -> None:
        self.embed = Embedding(vocab_size, self.embedding_dim, rng=self._rng)
        self.encoder_cell = LSTMCell(self.embedding_dim, self.hidden_dim, rng=self._rng)
        self.decoder_cell = LSTMCell(self.embedding_dim, self.hidden_dim, rng=self._rng)
        # Heads consume [decoder hidden ++ attention context].
        self.output_head = Linear(2 * self.hidden_dim, vocab_size, rng=self._rng)
        self.copy_gate = Linear(2 * self.hidden_dim, 1, rng=self._rng)
        self._vocab_size = vocab_size

    # ------------------------------------------------------------------ #
    # model pieces
    # ------------------------------------------------------------------ #

    def _encode(self, input_ids: np.ndarray) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Run the encoder; return (all hidden states, final (h, c))."""
        batch, steps = input_ids.shape
        state = self.encoder_cell.initial_state(batch)
        outputs = []
        embedded = self.embed(input_ids)  # (batch, steps, emb)
        for t in range(steps):
            state = self.encoder_cell(embedded[:, t, :], state)
            outputs.append(state[0])
        return stack(outputs, axis=1), state

    def _decode_step(
        self,
        token_ids: np.ndarray,
        state: tuple[Tensor, Tensor],
        encoder_outputs: Tensor,
        copy_matrix: np.ndarray,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """One decoder step; returns the mixed output *probabilities*.

        ``copy_matrix`` has shape ``(batch, steps, vocab)`` with a one-hot
        row per input position, so ``weights @ copy_matrix`` scatters the
        attention mass onto the characters actually present in the input —
        the pointer half of the pointer-generator.
        """
        emb = self.embed(token_ids)
        h, c = self.decoder_cell(emb, state)
        # Attention: scores over encoder time steps.
        batch, steps, hidden = encoder_outputs.shape
        query = h.reshape(batch, hidden, 1)
        scores = (encoder_outputs @ query).reshape(batch, steps)
        weights = softmax(scores, axis=-1)
        context = (encoder_outputs * weights.reshape(batch, steps, 1)).sum(axis=1)
        features = concat([h, context], axis=1)
        generate_probs = softmax(self.output_head(features), axis=-1)
        copy_probs = (weights.reshape(batch, 1, steps) @ Tensor(copy_matrix)).reshape(
            batch, self._vocab_size
        )
        gate = self.copy_gate(features).sigmoid()
        probs = gate * generate_probs + (1.0 - gate) * copy_probs
        return probs, (h, c)

    def _copy_matrix(self, input_ids: np.ndarray) -> np.ndarray:
        batch, steps = input_ids.shape
        matrix = np.zeros((batch, steps, self._vocab_size))
        rows = np.repeat(np.arange(batch), steps)
        cols = np.tile(np.arange(steps), batch)
        matrix[rows, cols, input_ids.reshape(-1)] = 1.0
        # PAD positions must not receive copy mass.
        matrix[:, :, PAD] = 0.0
        return matrix

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def fit(
        self,
        pairs: list[tuple[str, str]],
        epochs: int = 150,
        batch_size: int = 16,
        lr: float = 5e-3,
        verbose: bool = False,
    ) -> "Seq2SeqTransformer":
        if not pairs:
            raise ValueError("need at least one training pair")
        self.vocab_ = CharVocab([s for pair in pairs for s in pair])
        self._build(len(self.vocab_))
        inputs = np.array([self.vocab_.encode(a, self.max_len) for a, _ in pairs])
        targets = np.array(
            [self.vocab_.encode(b, self.max_len, add_eos=True) for _, b in pairs]
        )
        params = self.parameters()
        optimizer = Adam(params, lr=lr)
        for epoch in range(epochs):
            losses = []
            for batch in iterate_minibatches(len(pairs), batch_size, rng=self._rng):
                loss = self._batch_loss(inputs[batch], targets[batch])
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(params, 5.0)
                optimizer.step()
                losses.append(loss.item())
            if verbose and (epoch + 1) % 25 == 0:
                print(f"epoch {epoch + 1}: loss={np.mean(losses):.4f}")
        return self

    def _batch_loss(self, input_ids: np.ndarray, target_ids: np.ndarray) -> Tensor:
        batch = input_ids.shape[0]
        encoder_outputs, state = self._encode(input_ids)
        copy_matrix = self._copy_matrix(input_ids)
        # Teacher forcing: decoder input is <sos> ++ target[:-1].
        decoder_in = np.concatenate(
            [np.full((batch, 1), SOS, dtype=np.int64), target_ids[:, :-1]], axis=1
        )
        prob_steps = []
        for t in range(target_ids.shape[1]):
            probs, state = self._decode_step(
                decoder_in[:, t], state, encoder_outputs, copy_matrix
            )
            prob_steps.append(probs)
        probs = stack(prob_steps, axis=1)  # (batch, time, vocab)
        flat_probs = probs.reshape(batch * target_ids.shape[1], -1)
        flat_targets = target_ids.reshape(-1)
        keep = np.flatnonzero(flat_targets != PAD)
        picked = flat_probs[keep, flat_targets[keep]]
        return -(picked + 1e-10).log().mean()

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #

    def transform(self, text: str) -> str:
        """Greedy-decode the model's output for ``text``."""
        check_fitted(self, "vocab_")
        self.eval()
        input_ids = np.array([self.vocab_.encode(text, self.max_len)])
        encoder_outputs, state = self._encode(input_ids)
        copy_matrix = self._copy_matrix(input_ids)
        token = np.array([SOS])
        out_ids: list[int] = []
        for _ in range(self.max_len):
            probs, state = self._decode_step(token, state, encoder_outputs, copy_matrix)
            next_id = int(np.argmax(probs.data[0]))
            if next_id == EOS:
                break
            out_ids.append(next_id)
            token = np.array([next_id])
        self.train()
        return self.vocab_.decode(out_ids)

    def accuracy(self, pairs: list[tuple[str, str]]) -> float:
        """Exact-match accuracy on held-out pairs."""
        if not pairs:
            return 0.0
        hits = sum(1 for a, b in pairs if self.transform(a) == b)
        return hits / len(pairs)
