"""Data transformation by program synthesis (paper Section 4): FlashFill-
style DSL + enumerative synthesis, semantic transformations, and neural
program induction."""

from repro.transform.dsl import (
    ConstStr,
    Expression,
    Lower,
    Program,
    SplitSub,
    SubStr,
    Title,
    TokenInitial,
    TokenSub,
    Upper,
)
from repro.transform.neural import CharVocab, Seq2SeqTransformer
from repro.transform.semantic import (
    EmbeddingTransformer,
    LookupMapping,
    LookupTransformer,
)
from repro.transform.synthesis import Synthesizer, synthesize_column_transform
from repro.transform.tasks import TransformationTask, default_tasks

__all__ = [
    "Expression",
    "ConstStr",
    "SubStr",
    "TokenSub",
    "SplitSub",
    "TokenInitial",
    "Lower",
    "Upper",
    "Title",
    "Program",
    "Synthesizer",
    "synthesize_column_transform",
    "LookupTransformer",
    "LookupMapping",
    "EmbeddingTransformer",
    "Seq2SeqTransformer",
    "CharVocab",
    "TransformationTask",
    "default_tasks",
]
