"""A FlashFill-style DSL for string transformations (paper Section 4).

Programs are concatenations of atomic expressions evaluated against an
input string:

* :class:`ConstStr` — a literal;
* :class:`SubStr` — a character slice with (possibly negative) positions;
* :class:`TokenSub` — the i-th whitespace token;
* :class:`TokenInitial` — the first character of the i-th token;
* case modifiers :class:`Lower` / :class:`Upper` / :class:`Title` wrapping
  any expression.

Every expression has a ``rank`` used by the synthesizer: generalising
expressions (token/substring references) rank better than literals, so
"J. Smith" is learned as ``Initial(token 0) + ". " + token 1`` rather than
memorised.
"""

from __future__ import annotations

from dataclasses import dataclass


class Expression:
    """Atomic DSL expression; ``evaluate`` may raise ``ValueError`` when the
    expression does not apply to an input (e.g. token index out of range)."""

    rank: float = 1.0

    def evaluate(self, text: str) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstStr(Expression):
    """A literal string, independent of the input."""

    value: str

    @property
    def rank(self) -> float:
        # Pure separator literals (spaces/punctuation) are idiomatic glue and
        # rank cheap; alphanumeric literals generalise worst and rank high.
        if self.value and all(not ch.isalnum() for ch in self.value):
            return 0.25 + 0.05 * len(self.value)
        return 2.0 + 0.1 * len(self.value)

    def evaluate(self, text: str) -> str:
        return self.value

    def __str__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class SubStr(Expression):
    """``text[start:end]`` with python-slice semantics; negative indices
    anchor to the end of the string (FlashFill's CPos(-k))."""

    start: int
    end: int

    @property
    def rank(self) -> float:
        # Positional slices generalise worse than token references: the
        # magic offsets only transfer when inputs share a fixed layout.
        return 1.2

    def evaluate(self, text: str) -> str:
        start = self.start if self.start >= 0 else len(text) + self.start
        end = self.end if self.end >= 0 else len(text) + self.end
        if not (0 <= start <= end <= len(text)):
            raise ValueError(f"SubStr({self.start},{self.end}) out of range for {text!r}")
        return text[start:end]

    def __str__(self) -> str:
        return f"SubStr({self.start},{self.end})"


@dataclass(frozen=True)
class TokenSub(Expression):
    """The ``index``-th whitespace-separated token (negative from the end)."""

    index: int

    @property
    def rank(self) -> float:
        return 0.5

    def evaluate(self, text: str) -> str:
        tokens = text.split()
        try:
            return tokens[self.index]
        except IndexError:
            raise ValueError(f"token {self.index} out of range for {text!r}") from None

    def __str__(self) -> str:
        return f"Token({self.index})"


@dataclass(frozen=True)
class TokenInitial(Expression):
    """First character of the ``index``-th token (for name initials)."""

    index: int

    @property
    def rank(self) -> float:
        return 0.6

    def evaluate(self, text: str) -> str:
        tokens = text.split()
        try:
            token = tokens[self.index]
        except IndexError:
            raise ValueError(f"token {self.index} out of range for {text!r}") from None
        if not token:
            raise ValueError("empty token")
        return token[0]

    def __str__(self) -> str:
        return f"Initial({self.index})"


@dataclass(frozen=True)
class SplitSub(Expression):
    """The ``index``-th piece after splitting on ``separator``, stripped.

    Covers delimiter-structured values the whitespace tokenizer cannot:
    ``SplitSub("@", 0)`` extracts the user part of an email,
    ``SplitSub(",", 1)`` the second CSV field.
    """

    separator: str
    index: int

    @property
    def rank(self) -> float:
        return 0.7

    def evaluate(self, text: str) -> str:
        if not self.separator or self.separator not in text:
            raise ValueError(f"separator {self.separator!r} not in {text!r}")
        pieces = text.split(self.separator)
        try:
            return pieces[self.index].strip()
        except IndexError:
            raise ValueError(f"piece {self.index} out of range for {text!r}") from None

    def __str__(self) -> str:
        return f"Split({self.separator!r},{self.index})"


@dataclass(frozen=True)
class _CaseModifier(Expression):
    inner: Expression

    _case_fn = staticmethod(lambda s: s)
    _name = "Case"

    @property
    def rank(self) -> float:
        return self.inner.rank + 0.2

    def evaluate(self, text: str) -> str:
        return self._case_fn(self.inner.evaluate(text))

    def __str__(self) -> str:
        return f"{self._name}({self.inner})"


class Lower(_CaseModifier):
    """Lowercase the wrapped expression's output."""

    _case_fn = staticmethod(str.lower)
    _name = "Lower"


class Upper(_CaseModifier):
    """Uppercase the wrapped expression's output."""

    _case_fn = staticmethod(str.upper)
    _name = "Upper"


class Title(_CaseModifier):
    """Title-case the wrapped expression's output."""

    _case_fn = staticmethod(str.title)
    _name = "Title"


@dataclass(frozen=True)
class Program:
    """A concatenation of expressions."""

    parts: tuple[Expression, ...]

    @property
    def rank(self) -> float:
        """Lower is better: sum of part ranks + a per-part cost."""
        return sum(p.rank for p in self.parts) + 0.3 * len(self.parts)

    def evaluate(self, text: str) -> str:
        return "".join(part.evaluate(text) for part in self.parts)

    def consistent_with(self, examples: list[tuple[str, str]]) -> bool:
        """True when the program maps every input to its expected output."""
        for input_text, output_text in examples:
            try:
                if self.evaluate(input_text) != output_text:
                    return False
            except ValueError:
                return False
        return True

    def __str__(self) -> str:
        return " + ".join(str(p) for p in self.parts)
