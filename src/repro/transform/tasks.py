"""A suite of string-transformation tasks for experiment E12.

Each task supplies a ground-truth transformation function plus an input
generator, so benches can draw arbitrarily many (input, output) examples
and measure synthesis success vs number of provided examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.world import CITIES, FIRST_NAMES, LAST_NAMES
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class TransformationTask:
    """One benchmark transformation."""

    name: str
    transform: Callable[[str], str]
    generator: Callable[[np.random.Generator], str]

    def examples(
        self, n: int, rng: "np.random.Generator | int | None" = 0
    ) -> list[tuple[str, str]]:
        rng = ensure_rng(rng)
        seen: set[str] = set()
        out: list[tuple[str, str]] = []
        guard = 0
        while len(out) < n and guard < 100 * n + 100:
            guard += 1
            source = self.generator(rng)
            if source in seen:
                continue
            seen.add(source)
            out.append((source, self.transform(source)))
        return out


def _full_name(rng: np.random.Generator) -> str:
    first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))].title()
    last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))].title()
    return f"{first} {last}"


def _three_part_name(rng: np.random.Generator) -> str:
    first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))].title()
    middle = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))].title()
    last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))].title()
    return f"{first} {middle} {last}"


def _phone(rng: np.random.Generator) -> str:
    digits = "".join(str(d) for d in rng.integers(0, 10, size=10))
    return f"({digits[:3]}) {digits[3:6]}-{digits[6:]}"


def _date(rng: np.random.Generator) -> str:
    return (
        f"{int(rng.integers(2000, 2020)):04d}-"
        f"{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}"
    )


def _city_pair(rng: np.random.Generator) -> str:
    a = CITIES[int(rng.integers(len(CITIES)))]
    b = CITIES[int(rng.integers(len(CITIES)))]
    return f"{a}, {b}"


def _email_name(rng: np.random.Generator) -> str:
    first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))]
    last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))]
    return f"{first}.{last}@example.com"


def default_tasks() -> list[TransformationTask]:
    """The E12 task suite (each solvable inside the DSL)."""
    return [
        TransformationTask(
            "abbreviate_name",
            lambda s: f"{s.split()[0][0]}. {s.split()[-1]}",
            _full_name,
        ),
        TransformationTask(
            "last_first",
            lambda s: f"{s.split()[-1]}, {s.split()[0]}",
            _full_name,
        ),
        TransformationTask(
            "upper_last",
            lambda s: s.split()[-1].upper(),
            _full_name,
        ),
        TransformationTask(
            "initials",
            lambda s: "".join(t[0] for t in s.split()),
            _three_part_name,
        ),
        TransformationTask(
            "drop_middle",
            lambda s: f"{s.split()[0]} {s.split()[-1]}",
            _three_part_name,
        ),
        TransformationTask(
            "phone_digits_dash",
            lambda s: f"{s[1:4]}-{s[6:9]}-{s[10:]}",
            _phone,
        ),
        TransformationTask(
            "phone_area_code",
            lambda s: s[1:4],
            _phone,
        ),
        TransformationTask(
            "date_year",
            lambda s: s[:4],
            _date,
        ),
        TransformationTask(
            "date_us_order",
            lambda s: f"{s[5:7]}/{s[8:]}/{s[:4]}",
            _date,
        ),
        TransformationTask(
            "first_city_title",
            lambda s: s.split(",")[0].strip().title(),
            _city_pair,
        ),
        TransformationTask(
            "lower_full",
            lambda s: s.lower(),
            _full_name,
        ),
        TransformationTask(
            "email_user",
            lambda s: s.split("@")[0],
            _email_name,
        ),
    ]
