"""Enumerative program synthesis from input-output examples (Section 4).

Strategy (FlashFill-like, simplified): for the first example, build a DAG
over output positions whose edges carry every atomic expression that
produces that output span from the input; enumerate programs through the
DAG best-first; keep programs consistent with all remaining examples and
return the best-ranked one.
"""

from __future__ import annotations

import heapq
import itertools

from repro.transform.dsl import (
    ConstStr,
    Expression,
    Lower,
    Program,
    SplitSub,
    SubStr,
    Title,
    TokenInitial,
    TokenSub,
    Upper,
)

_SEPARATORS = (",", ";", "@", "/", "-", ":", "|", ".")


def _substring_expressions(input_text: str, target: str) -> list[Expression]:
    """All atomic expressions mapping ``input_text`` to exactly ``target``."""
    out: list[Expression] = []
    n = len(input_text)
    # Direct substring occurrences → absolute and end-anchored positions.
    start = input_text.find(target)
    while start != -1:
        end = start + len(target)
        out.append(SubStr(start, end))
        if end == n:
            out.append(SubStr(start - n, n) if start != 0 else SubStr(0, n))
        start = input_text.find(target, start + 1)
    # Case-modified occurrences.
    lowered = input_text.lower()
    if target != target.lower() or target not in input_text:
        pos = lowered.find(target.lower())
        while pos != -1:
            end = pos + len(target)
            raw = input_text[pos:end]
            for modifier, fn in ((Lower, str.lower), (Upper, str.upper), (Title, str.title)):
                if fn(raw) == target and raw != target:
                    out.append(modifier(SubStr(pos, end)))
            pos = lowered.find(target.lower(), pos + 1)
    # Token references (absolute and from the end).
    tokens = input_text.split()
    for rel, token in _indexed_both_ends(tokens):
        if token == target:
            out.append(TokenSub(rel))
        for modifier, fn in ((Lower, str.lower), (Upper, str.upper), (Title, str.title)):
            if fn(token) == target and token != target:
                out.append(modifier(TokenSub(rel)))
        if token and token[0] == target:
            out.append(TokenInitial(rel))
        if token and len(target) == 1:
            if token[0].lower() == target:
                out.append(Lower(TokenInitial(rel)))
            if token[0].upper() == target and token[0] != target:
                out.append(Upper(TokenInitial(rel)))
    # Separator-split pieces (stripped), with case modifiers.
    for separator in _SEPARATORS:
        if separator not in input_text:
            continue
        pieces = input_text.split(separator)
        for rel, piece in _indexed_both_ends(pieces):
            stripped = piece.strip()
            if not stripped:
                continue
            if stripped == target:
                out.append(SplitSub(separator, rel))
            for modifier, fn in ((Lower, str.lower), (Upper, str.upper), (Title, str.title)):
                if fn(stripped) == target and stripped != target:
                    out.append(modifier(SplitSub(separator, rel)))
    return out


def _indexed_both_ends(tokens: list[str]):
    """Yield (index, token) with both positive and negative indices."""
    for i, token in enumerate(tokens):
        yield i, token
        yield i - len(tokens), token


class Synthesizer:
    """Best-first FlashFill-style synthesizer.

    Parameters
    ----------
    max_parts:
        Maximum concatenation length of candidate programs.
    max_programs:
        Enumeration budget (programs checked against the other examples).
    allow_constants:
        Whether ``ConstStr`` edges are allowed (separators need them).
    """

    def __init__(
        self,
        max_parts: int = 6,
        max_programs: int = 5000,
        allow_constants: bool = True,
    ) -> None:
        self.max_parts = max_parts
        self.max_programs = max_programs
        self.allow_constants = allow_constants

    def synthesize(self, examples: list[tuple[str, str]]) -> Program | None:
        """Return the best program consistent with all examples, or None."""
        if not examples:
            raise ValueError("need at least one example")
        seed_input, seed_output = examples[0]
        edges = self._build_edges(seed_input, seed_output)
        best: Program | None = None
        for program in itertools.islice(
            self._enumerate(seed_output, edges), self.max_programs
        ):
            if program.consistent_with(examples):
                # Enumeration is best-first on cumulative rank, so the first
                # consistent program is also the best-ranked one.
                best = program
                break
        return best

    def synthesize_all(
        self, examples: list[tuple[str, str]], limit: int = 10
    ) -> list[Program]:
        """Up to ``limit`` consistent programs, best rank first."""
        seed_input, seed_output = examples[0]
        edges = self._build_edges(seed_input, seed_output)
        found: list[Program] = []
        for program in itertools.islice(
            self._enumerate(seed_output, edges), self.max_programs
        ):
            if program.consistent_with(examples):
                found.append(program)
                if len(found) >= limit:
                    break
        return sorted(found, key=lambda p: p.rank)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _build_edges(
        self, input_text: str, output_text: str
    ) -> dict[tuple[int, int], list[Expression]]:
        """Edge map: output span (i, j) → expressions producing it."""
        edges: dict[tuple[int, int], list[Expression]] = {}
        n = len(output_text)
        for i in range(n):
            for j in range(i + 1, n + 1):
                target = output_text[i:j]
                expressions = _substring_expressions(input_text, target)
                if self.allow_constants:
                    expressions.append(ConstStr(target))
                if expressions:
                    expressions.sort(key=lambda e: e.rank)
                    edges[(i, j)] = expressions
        return edges

    def _enumerate(
        self, output_text: str, edges: dict[tuple[int, int], list[Expression]]
    ):
        """Best-first enumeration of full programs through the span DAG."""
        n = len(output_text)
        counter = itertools.count()
        # Heap entries: (cost_so_far, tiebreak, position, parts).
        heap: list[tuple[float, int, int, tuple[Expression, ...]]] = [
            (0.0, next(counter), 0, ())
        ]
        while heap:
            cost, _, pos, parts = heapq.heappop(heap)
            if pos == n:
                yield Program(parts)
                continue
            if len(parts) >= self.max_parts:
                continue
            for j in range(pos + 1, n + 1):
                for expression in edges.get((pos, j), ()):
                    heapq.heappush(
                        heap,
                        (
                            cost + expression.rank + 0.3,
                            next(counter),
                            j,
                            parts + (expression,),
                        ),
                    )


def synthesize_column_transform(
    pairs: list[tuple[str, str]],
    holdout: list[tuple[str, str]] | None = None,
    **kwargs: object,
) -> tuple[Program | None, float]:
    """Convenience: synthesize from ``pairs``, measure accuracy on ``holdout``.

    Returns ``(program, holdout_accuracy)``; accuracy is 0.0 when synthesis
    fails.
    """
    program = Synthesizer(**kwargs).synthesize(pairs)
    if program is None:
        return None, 0.0
    test = holdout if holdout is not None else pairs
    if not test:
        return program, 1.0
    hits = 0
    for input_text, expected in test:
        try:
            if program.evaluate(input_text) == expected:
                hits += 1
        except ValueError:
            pass
    return program, hits / len(test)
