"""Semantic transformations (paper Section 4): (France, Paris)-style
mappings that no regular-expression DSL can express.

Two mechanisms, mirroring the paper's discussion:

* :class:`LookupTransformer` — searches a catalog of reference relations
  for a column pair consistent with the examples (DataXFormer-style
  transformation discovery [2]);
* :class:`EmbeddingTransformer` — learns the *relation vector* between
  example pairs in embedding space (king − man + woman ≈ queen) and applies
  it by nearest-neighbour search; works when no reference table exists.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.data.table import Table
from repro.data.types import is_missing
from repro.text.word2vec import SkipGram
from repro.utils.validation import check_fitted


@dataclass(frozen=True)
class LookupMapping:
    """A discovered (table, input column, output column) mapping."""

    table_name: str
    input_column: str
    output_column: str
    coverage: float  # fraction of examples witnessed


class LookupTransformer:
    """Discover the example-consistent column pair in a table catalog."""

    def __init__(self, catalog: list[Table]) -> None:
        if not catalog:
            raise ValueError("catalog must contain at least one table")
        self.catalog = list(catalog)
        self.mapping_: LookupMapping | None = None
        self._lookup: dict[str, str] | None = None

    def fit(self, examples: list[tuple[str, str]]) -> "LookupTransformer":
        """Find the best column pair consistent with every example."""
        if not examples:
            raise ValueError("need at least one example pair")
        best: tuple[float, LookupMapping, dict[str, str]] | None = None
        for table in self.catalog:
            for in_col in table.columns:
                mapping = self._column_map(table, in_col)
                for out_col in table.columns:
                    if out_col == in_col:
                        continue
                    witnessed = 0
                    consistent = True
                    for source, target in examples:
                        row = mapping.get(source.lower())
                        if row is None:
                            continue
                        value = table.cell(row, out_col)
                        if is_missing(value):
                            continue
                        if str(value).lower() != target.lower():
                            consistent = False
                            break
                        witnessed += 1
                    if not consistent or witnessed == 0:
                        continue
                    coverage = witnessed / len(examples)
                    candidate = LookupMapping(table.name, in_col, out_col, coverage)
                    if best is None or coverage > best[0]:
                        lookup = {
                            str(table.cell(i, in_col)).lower(): str(table.cell(i, out_col))
                            for i in range(table.num_rows)
                            if not is_missing(table.cell(i, in_col))
                            and not is_missing(table.cell(i, out_col))
                        }
                        best = (coverage, candidate, lookup)
        if best is None:
            raise ValueError("no column pair in the catalog is consistent with the examples")
        self.mapping_ = best[1]
        self._lookup = best[2]
        return self

    def transform(self, value: str) -> str | None:
        """Map one input value; None when it is not covered."""
        check_fitted(self, "mapping_")
        return self._lookup.get(value.lower())

    def _column_map(self, table: Table, column: str) -> dict[str, int]:
        out: dict[str, int] = {}
        for i in range(table.num_rows):
            value = table.cell(i, column)
            if not is_missing(value):
                out.setdefault(str(value).lower(), i)
        return out


class EmbeddingTransformer:
    """Apply the mean example-pair offset vector in embedding space.

    Vectors are mean-centred before the arithmetic ("all-but-the-top"
    debiasing): small training corpora produce anisotropic spaces where
    every word shares a large common component, which drowns the relation
    vector.  Example targets are excluded from the answer set by default,
    matching the standard analogy-evaluation protocol.
    """

    def __init__(
        self,
        model: SkipGram,
        candidates: list[str] | None = None,
        center: bool = True,
        exclude_example_targets: bool = True,
    ) -> None:
        self.model = model
        self.candidates = candidates
        self.center = center
        self.exclude_example_targets = exclude_example_targets
        self.offset_: np.ndarray | None = None
        self._example_targets: set[str] = set()
        self._mean: np.ndarray | None = None

    def _vector(self, token: str) -> np.ndarray:
        vec = self.model.vector(token)
        if self.center and self._mean is not None:
            return vec - self._mean
        return vec

    def fit(self, examples: list[tuple[str, str]]) -> "EmbeddingTransformer":
        self._mean = self.model.vectors_.mean(axis=0) if self.center else None
        offsets = []
        for source, target in examples:
            if source in self.model and target in self.model:
                offsets.append(self._vector(target) - self._vector(source))
                self._example_targets.add(target)
        if not offsets:
            raise ValueError("no example pair is fully in-vocabulary")
        self.offset_ = np.mean(offsets, axis=0)
        return self

    def transform(self, value: str, topn: int = 1) -> list[str]:
        """Nearest candidates to ``vector(value) + offset``."""
        check_fitted(self, "offset_")
        if value not in self.model:
            return []
        query = self._vector(value) + self.offset_
        pool = self.candidates if self.candidates is not None else self.model.vocabulary.tokens
        scored: list[tuple[str, float]] = []
        query_norm = np.linalg.norm(query) + 1e-12
        for token in pool:
            if token == value or token not in self.model:
                continue
            if self.exclude_example_targets and token in self._example_targets:
                continue
            vec = self._vector(token)
            score = float(query @ vec / (query_norm * (np.linalg.norm(vec) + 1e-12)))
            scored.append((token, score))
        scored.sort(key=lambda item: -item[1])
        return [token for token, _ in scored[:topn]]
