"""Data augmentation for DC training data (paper Section 6.2.2)."""

from repro.augment.transforms import (
    AugmentationPipeline,
    augment_er_pairs,
    default_er_transforms,
)

__all__ = [
    "AugmentationPipeline",
    "default_er_transforms",
    "augment_er_pairs",
]
