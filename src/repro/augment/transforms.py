"""Label-preserving transformations for ER training pairs (Section 6.2.2).

Image augmentation rotates and crops; ER augmentation perturbs *one side*
of a labelled tuple pair in ways that cannot flip the label:

* typo injection / re-casing / token swap (a matching pair still matches,
  a non-matching pair still doesn't);
* attribute null-out (removes evidence, never fabricates it);
* pair symmetry (swap the two records — matching is symmetric).

All transforms are record-level functions composed by
:class:`AugmentationPipeline`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data import perturb
from repro.data.types import is_missing
from repro.utils.rng import ensure_rng

Record = dict
RecordTransform = Callable[[dict, np.random.Generator], dict]


def _transform_text_cells(
    record: dict, rng: np.random.Generator, fn: Callable[[str, np.random.Generator], str],
    probability: float,
) -> dict:
    out = dict(record)
    for key, value in record.items():
        if is_missing(value) or not isinstance(value, str):
            continue
        if rng.random() < probability:
            out[key] = fn(value, rng)
    return out


def typo_transform(record: dict, rng: np.random.Generator) -> dict:
    """Inject a typo into ~one text attribute."""
    return _transform_text_cells(record, rng, perturb.typo, probability=0.4)


def case_transform(record: dict, rng: np.random.Generator) -> dict:
    """Re-case text attributes."""
    return _transform_text_cells(record, rng, perturb.change_case, probability=0.4)


def token_swap_transform(record: dict, rng: np.random.Generator) -> dict:
    """Swap adjacent tokens in multi-token attributes."""
    return _transform_text_cells(record, rng, perturb.swap_tokens, probability=0.4)


def null_out_transform(record: dict, rng: np.random.Generator) -> dict:
    """Drop one attribute value (evidence removal is label-preserving)."""
    out = dict(record)
    present = [k for k, v in record.items() if not is_missing(v)]
    if len(present) > 2:  # keep at least two attributes of signal
        key = present[int(rng.integers(len(present)))]
        out[key] = None
    return out


def default_er_transforms() -> list[RecordTransform]:
    """The standard label-preserving transform set for ER pairs."""
    return [typo_transform, case_transform, token_swap_transform, null_out_transform]


class AugmentationPipeline:
    """Expand a labelled ER pair set with label-preserving variants.

    Parameters
    ----------
    transforms:
        Record-level transforms to sample from.
    multiplier:
        Augmented examples generated per original example.
    swap_pairs:
        Also add the mirrored (b, a) pair (matching is symmetric).
    """

    def __init__(
        self,
        transforms: list[RecordTransform] | None = None,
        multiplier: int = 1,
        swap_pairs: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if multiplier < 0:
            raise ValueError(f"multiplier must be >= 0, got {multiplier}")
        self.transforms = transforms if transforms is not None else default_er_transforms()
        self.multiplier = multiplier
        self.swap_pairs = swap_pairs
        self._rng = ensure_rng(rng)

    def augment(
        self, labeled_pairs: list[tuple[dict, dict, int]]
    ) -> list[tuple[dict, dict, int]]:
        """Return originals + augmented variants (shuffled)."""
        out = list(labeled_pairs)
        for record_a, record_b, label in labeled_pairs:
            for _ in range(self.multiplier):
                a, b = dict(record_a), dict(record_b)
                if self.transforms:
                    transform = self.transforms[int(self._rng.integers(len(self.transforms)))]
                    if self._rng.random() < 0.5:
                        a = transform(a, self._rng)
                    else:
                        b = transform(b, self._rng)
                if self.swap_pairs and self._rng.random() < 0.5:
                    a, b = b, a
                out.append((a, b, label))
        order = self._rng.permutation(len(out))
        return [out[i] for i in order]


def augment_er_pairs(
    labeled_pairs: list[tuple[dict, dict, int]],
    multiplier: int = 1,
    rng: np.random.Generator | int | None = 0,
) -> list[tuple[dict, dict, int]]:
    """One-call convenience around :class:`AugmentationPipeline`."""
    return AugmentationPipeline(multiplier=multiplier, rng=rng).augment(labeled_pairs)
