"""Data imputation (paper Section 5.3): denoising-autoencoder multiple
imputation (MIDA-style, [25]) and the classic baselines it is compared to.

All imputers share one interface: ``fit(table)`` then
``transform(table) -> Table`` returning a copy with missing cells filled.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.encoding import TableEncoder
from repro.data.table import Table
from repro.data.types import ColumnType, coerce_numeric, is_missing
from repro.nn.autoencoder import DenoisingAutoencoder
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.nn.training import iterate_minibatches
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class _BaseImputer:
    """Shared plumbing: column stats + fill loop."""

    def fit(self, table: Table) -> "_BaseImputer":
        raise NotImplementedError

    def transform(self, table: Table) -> Table:
        raise NotImplementedError

    def fit_transform(self, table: Table) -> Table:
        return self.fit(table).transform(table)


class MeanModeImputer(_BaseImputer):
    """Numeric → column mean, categorical → column mode."""

    def __init__(self, numeric_columns: list[str] | None = None) -> None:
        self._forced_numeric = set(numeric_columns or [])
        self.fill_: dict[str, object] | None = None

    def fit(self, table: Table) -> "MeanModeImputer":
        fill: dict[str, object] = {}
        for column in table.columns:
            kind = (
                ColumnType.NUMERIC
                if column in self._forced_numeric
                else table.column_type(column)
            )
            present = [v for v in table.column(column) if not is_missing(v)]
            if not present:
                fill[column] = None
            elif kind == ColumnType.NUMERIC:
                numbers = [coerce_numeric(v) for v in present]
                numbers = [v for v in numbers if v is not None]
                fill[column] = float(np.mean(numbers)) if numbers else None
            else:
                counts: dict[object, int] = {}
                for value in present:
                    counts[value] = counts.get(value, 0) + 1
                fill[column] = max(counts, key=counts.get)
        self.fill_ = fill
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "fill_")
        out = table.copy()
        for column in out.columns:
            replacement = self.fill_.get(column)
            values = out.column(column)
            for i, value in enumerate(values):
                if is_missing(value) and replacement is not None:
                    out.set_cell(i, column, replacement)
        return out


class MedianImputer(MeanModeImputer):
    """Numeric → column median (categoricals still go to the mode)."""

    def fit(self, table: Table) -> "MedianImputer":
        super().fit(table)
        for column in table.columns:
            kind = (
                ColumnType.NUMERIC
                if column in self._forced_numeric
                else table.column_type(column)
            )
            if kind != ColumnType.NUMERIC:
                continue
            numbers = [
                coerce_numeric(v) for v in table.column(column) if not is_missing(v)
            ]
            numbers = [v for v in numbers if v is not None]
            if numbers:
                self.fill_[column] = float(np.median(numbers))
        return self


class HotDeckImputer(_BaseImputer):
    """Fill each missing cell with a random observed value of the column."""

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._rng = ensure_rng(rng)
        self.donors_: dict[str, list[object]] | None = None

    def fit(self, table: Table) -> "HotDeckImputer":
        self.donors_ = {
            column: [v for v in table.column(column) if not is_missing(v)]
            for column in table.columns
        }
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "donors_")
        out = table.copy()
        for column in out.columns:
            donors = self.donors_.get(column, [])
            if not donors:
                continue
            values = out.column(column)
            for i, value in enumerate(values):
                if is_missing(value):
                    out.set_cell(i, column, donors[int(self._rng.integers(len(donors)))])
        return out


class KNNImputer(_BaseImputer):
    """k-nearest-neighbour imputation in encoded space.

    Distance uses only dimensions observed in *both* rows; each missing
    cell takes the (mode / mean) of its neighbours' values.
    """

    def __init__(
        self, k: int = 5, numeric_columns: list[str] | None = None
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.encoder = TableEncoder(numeric_columns)
        self._train_matrix: np.ndarray | None = None
        self._train_mask: np.ndarray | None = None
        self._train_table: Table | None = None

    def fit(self, table: Table) -> "KNNImputer":
        self.encoder.fit(table)
        self._train_matrix, self._train_mask = self.encoder.encode(table)
        self._train_table = table
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "_train_matrix")
        matrix, mask = self.encoder.encode(table)
        out = table.copy()
        for i in range(table.num_rows):
            missing_columns = [
                c for c in out.columns if is_missing(out.cell(i, c))
            ]
            if not missing_columns:
                continue
            neighbours = self._nearest(matrix[i], mask[i], exclude=i if table is self._train_table else None)
            for column in missing_columns:
                value = self._vote(neighbours, column)
                if value is not None:
                    out.set_cell(i, column, value)
        return out

    def _nearest(
        self, row: np.ndarray, row_mask: np.ndarray, exclude: int | None
    ) -> list[int]:
        shared = self._train_mask & row_mask
        diffs = (self._train_matrix - row) ** 2
        counts = shared.sum(axis=1)
        distances = np.where(
            counts > 0,
            (diffs * shared).sum(axis=1) / np.maximum(counts, 1),
            np.inf,
        )
        if exclude is not None:
            distances[exclude] = np.inf
        order = np.argsort(distances)
        return [int(j) for j in order[: self.k] if np.isfinite(distances[j])]

    def _vote(self, neighbours: list[int], column: str) -> object:
        values = [
            self._train_table.cell(j, column)
            for j in neighbours
            if not is_missing(self._train_table.cell(j, column))
        ]
        if not values:
            return None
        if self.encoder.column_kind(column) == ColumnType.NUMERIC:
            numbers = [coerce_numeric(v) for v in values]
            numbers = [v for v in numbers if v is not None]
            return float(np.mean(numbers)) if numbers else None
        counts: dict[object, int] = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        return max(counts, key=counts.get)


class DAEImputer(_BaseImputer):
    """MIDA-style multiple imputation with a denoising autoencoder.

    Training: rows are mean/mode pre-filled, the DAE corrupts inputs and is
    optimised to reconstruct the *observed* entries only (masked MSE), so
    it learns "local (tuple level) and global (relation level) patterns".

    Imputation: missing cells take the model's reconstruction; with
    ``n_draws > 1``, multiple stochastic corruptions are decoded and
    averaged — the *multiple imputation* of [25].
    """

    def __init__(
        self,
        hidden_sizes: list[int] | None = None,
        corruption: float = 0.25,
        epochs: int = 60,
        batch_size: int = 32,
        lr: float = 5e-3,
        n_draws: int = 5,
        refinement_rounds: int = 2,
        numeric_columns: list[str] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.hidden_sizes = hidden_sizes
        self.corruption = corruption
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.n_draws = n_draws
        self.refinement_rounds = refinement_rounds
        self._rng = ensure_rng(rng)
        self.encoder = TableEncoder(numeric_columns)
        self._prefill = MeanModeImputer(numeric_columns)
        self.model_: DenoisingAutoencoder | None = None

    def fit(self, table: Table) -> "DAEImputer":
        self.encoder.fit(table)
        self._prefill.fit(table)
        filled = self._prefill.transform(table)
        matrix, _ = self.encoder.encode(filled)
        _, observed = self.encoder.encode(table)
        hidden = self.hidden_sizes or [
            max(4, int(self.encoder.width_ * 0.7)),
            max(2, int(self.encoder.width_ * 0.4)),
        ]
        self.model_ = DenoisingAutoencoder(
            self.encoder.width_, hidden, corruption=self.corruption, rng=self._rng
        )
        optimizer = Adam(self.model_.parameters(), lr=self.lr)
        mask = observed.astype(np.float64)
        for _ in range(self.epochs):
            for batch in iterate_minibatches(matrix.shape[0], self.batch_size, rng=self._rng):
                noisy = self.model_.corrupt(matrix[batch])
                recon = self.model_.decode(self.model_.encode(Tensor(noisy)))
                diff = recon - Tensor(matrix[batch])
                masked = diff * diff * Tensor(mask[batch])
                denom = max(1.0, float(mask[batch].sum()))
                loss = masked.sum() * (1.0 / denom)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "model_")
        filled = self._prefill.transform(table)
        matrix, _ = self.encoder.encode(filled)
        _, observed = self.encoder.encode(table)
        current = matrix.copy()
        self.model_.eval()
        # Iterative refinement: feed back imputed values, re-reconstruct.
        for round_index in range(self.refinement_rounds + 1):
            draws = []
            for _ in range(self.n_draws):
                noisy = (
                    self.model_.corrupt(current)
                    if round_index == 0 and self.n_draws > 1
                    else current
                )
                recon = self.model_(Tensor(noisy)).data
                draws.append(recon)
            reconstruction = np.mean(draws, axis=0)
            current = np.where(observed, matrix, reconstruction)
        self.model_.train()
        out = table.copy()
        for i in range(table.num_rows):
            for column in out.columns:
                if is_missing(out.cell(i, column)):
                    value = self.encoder.decode_cell(current[i], column)
                    if isinstance(value, float):
                        value = round(value, 4)
                    out.set_cell(i, column, value)
        return out


def evaluate_imputation(
    imputed: Table,
    truth: Table,
    missing_cells: set[tuple[int, str]],
    numeric_columns: list[str] | None = None,
) -> dict[str, float]:
    """Score imputations against ground truth on the held-out cells.

    Returns categorical accuracy and numeric normalised RMSE (by the truth
    column's std), each over the corresponding cell subsets.
    """
    numeric = set(numeric_columns or [])
    cat_total = cat_correct = 0
    squared: dict[str, list[float]] = {}
    for row, column in missing_cells:
        true_value = truth.cell(row, column)
        guess = imputed.cell(row, column)
        if column in numeric or truth.column_type(column) == ColumnType.NUMERIC:
            t = coerce_numeric(true_value)
            g = coerce_numeric(guess)
            if t is None:
                continue
            g = g if g is not None else 0.0
            squared.setdefault(column, []).append((t - g) ** 2)
        else:
            cat_total += 1
            if guess is not None and str(guess) == str(true_value):
                cat_correct += 1
    nrmse_values = []
    for column, errors in squared.items():
        truths = [
            coerce_numeric(v) for v in truth.column(column) if not is_missing(v)
        ]
        truths = [v for v in truths if v is not None]
        std = float(np.std(truths)) or 1.0
        nrmse_values.append(float(np.sqrt(np.mean(errors))) / std)
    return {
        "categorical_accuracy": cat_correct / cat_total if cat_total else float("nan"),
        "numeric_nrmse": float(np.mean(nrmse_values)) if nrmse_values else float("nan"),
        "n_cells": float(len(missing_cells)),
    }
