"""Outlier detection: autoencoder reconstruction error vs statistical
baselines (paper Section 3.1 — "detect anomalous data that does not match
a group of values").
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.encoding import TableEncoder
from repro.data.table import Table
from repro.data.types import coerce_numeric, is_missing
from repro.nn.autoencoder import Autoencoder
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.nn.training import iterate_minibatches
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class AutoencoderOutlierDetector:
    """Rows with high reconstruction error are flagged as outliers.

    The bottleneck forces the model to learn the relation's dominant
    structure; rows off that manifold reconstruct poorly.  The decision
    threshold is the ``contamination`` quantile of training errors.
    """

    def __init__(
        self,
        hidden_sizes: list[int] | None = None,
        contamination: float = 0.05,
        epochs: int = 80,
        batch_size: int = 32,
        lr: float = 5e-3,
        numeric_columns: list[str] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < contamination < 0.5:
            raise ValueError(f"contamination must be in (0, 0.5), got {contamination}")
        self.hidden_sizes = hidden_sizes
        self.contamination = contamination
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = ensure_rng(rng)
        self.encoder = TableEncoder(numeric_columns)
        self.model_: Autoencoder | None = None
        self.threshold_: float | None = None

    def fit(self, table: Table) -> "AutoencoderOutlierDetector":
        self.encoder.fit(table)
        matrix, _ = self.encoder.encode(table)
        hidden = self.hidden_sizes or [
            max(4, int(self.encoder.width_ * 0.5)),
            max(2, int(self.encoder.width_ * 0.25)),
        ]
        self.model_ = Autoencoder(self.encoder.width_, hidden, rng=self._rng)
        optimizer = Adam(self.model_.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            for batch in iterate_minibatches(matrix.shape[0], self.batch_size, rng=self._rng):
                x = Tensor(matrix[batch])
                loss = mse_loss(self.model_(x), x.detach())
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        errors = self.scores(table)
        self.threshold_ = float(np.quantile(errors, 1.0 - self.contamination))
        return self

    def scores(self, table: Table) -> np.ndarray:
        """Per-row reconstruction error (higher = more anomalous)."""
        check_fitted(self, "model_")
        matrix, _ = self.encoder.encode(table)
        return self.model_.reconstruction_error(matrix)

    def predict(self, table: Table) -> np.ndarray:
        """Boolean per-row outlier flags."""
        check_fitted(self, "threshold_")
        return self.scores(table) > self.threshold_


class ZScoreDetector:
    """Flag rows whose any numeric cell is > ``z`` standard deviations out."""

    def __init__(self, z: float = 3.0, numeric_columns: list[str] | None = None) -> None:
        self.z = z
        self._numeric = numeric_columns
        self.stats_: dict[str, tuple[float, float]] | None = None

    def _numeric_columns(self, table: Table) -> list[str]:
        if self._numeric is not None:
            return self._numeric
        from repro.data.types import ColumnType

        return [
            c for c in table.columns if table.column_type(c) == ColumnType.NUMERIC
        ]

    def fit(self, table: Table) -> "ZScoreDetector":
        stats = {}
        for column in self._numeric_columns(table):
            values = [coerce_numeric(v) for v in table.column(column) if not is_missing(v)]
            values = [v for v in values if v is not None]
            if values:
                stats[column] = (float(np.mean(values)), float(np.std(values)) or 1.0)
        self.stats_ = stats
        return self

    def scores(self, table: Table) -> np.ndarray:
        """Per-row max |z| over numeric columns."""
        check_fitted(self, "stats_")
        scores = np.zeros(table.num_rows)
        for column, (mean, std) in self.stats_.items():
            for i, value in enumerate(table.column(column)):
                numeric = coerce_numeric(value)
                if numeric is None:
                    continue
                scores[i] = max(scores[i], abs(numeric - mean) / std)
        return scores

    def predict(self, table: Table) -> np.ndarray:
        return self.scores(table) > self.z


class IQRDetector:
    """Tukey's fences: numeric cell outside [Q1 − k·IQR, Q3 + k·IQR]."""

    def __init__(self, k: float = 1.5, numeric_columns: list[str] | None = None) -> None:
        self.k = k
        self._numeric = numeric_columns
        self.fences_: dict[str, tuple[float, float]] | None = None

    def fit(self, table: Table) -> "IQRDetector":
        from repro.data.types import ColumnType

        numeric = self._numeric or [
            c for c in table.columns if table.column_type(c) == ColumnType.NUMERIC
        ]
        fences = {}
        for column in numeric:
            values = [coerce_numeric(v) for v in table.column(column) if not is_missing(v)]
            values = [v for v in values if v is not None]
            if not values:
                continue
            q1, q3 = np.quantile(values, [0.25, 0.75])
            spread = q3 - q1
            fences[column] = (q1 - self.k * spread, q3 + self.k * spread)
        self.fences_ = fences
        return self

    def predict(self, table: Table) -> np.ndarray:
        check_fitted(self, "fences_")
        flags = np.zeros(table.num_rows, dtype=bool)
        for column, (lo, hi) in self.fences_.items():
            for i, value in enumerate(table.column(column)):
                numeric = coerce_numeric(value)
                if numeric is not None and not lo <= numeric <= hi:
                    flags[i] = True
        return flags


def evaluate_outlier_detection(
    predicted: np.ndarray, true_outlier_rows: set[int]
) -> dict[str, float]:
    """Row-level precision/recall/F1 for outlier flags."""
    predicted_rows = {int(i) for i in np.flatnonzero(predicted)}
    tp = len(predicted_rows & true_outlier_rows)
    precision = tp / len(predicted_rows) if predicted_rows else 0.0
    recall = tp / len(true_outlier_rows) if true_outlier_rows else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}
