"""Mixed-type table ↔ matrix encoding for the neural cleaning models.

Numeric columns are z-standardised; categorical columns are one-hot
encoded.  Missing cells become zero vectors plus an entry in the returned
observation mask, so models can train on observed entries only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.data.types import ColumnType, coerce_numeric, is_missing


@dataclass
class _ColumnCodec:
    name: str
    kind: ColumnType
    start: int
    width: int
    # numeric
    mean: float = 0.0
    std: float = 1.0
    # categorical
    categories: tuple[str, ...] = ()


class TableEncoder:
    """Fit-once encoder between a Table and a dense float matrix."""

    def __init__(self, numeric_columns: list[str] | None = None) -> None:
        self._forced_numeric = set(numeric_columns or [])
        self.codecs_: list[_ColumnCodec] | None = None
        self.width_: int = 0

    def fit(self, table: Table) -> "TableEncoder":
        """Learn per-column statistics / category sets."""
        codecs: list[_ColumnCodec] = []
        offset = 0
        for column in table.columns:
            kind = (
                ColumnType.NUMERIC
                if column in self._forced_numeric
                else table.column_type(column)
            )
            if kind == ColumnType.NUMERIC:
                values = [
                    coerce_numeric(v)
                    for v in table.column(column)
                    if not is_missing(v)
                ]
                values = [v for v in values if v is not None]
                mean = float(np.mean(values)) if values else 0.0
                std = float(np.std(values)) if values else 1.0
                codecs.append(
                    _ColumnCodec(column, ColumnType.NUMERIC, offset, 1, mean, std or 1.0)
                )
                offset += 1
            else:
                categories = tuple(
                    sorted({str(v) for v in table.column(column) if not is_missing(v)})
                )
                width = max(1, len(categories))
                codecs.append(
                    _ColumnCodec(
                        column, ColumnType.CATEGORICAL, offset, width,
                        categories=categories,
                    )
                )
                offset += width
        self.codecs_ = codecs
        self.width_ = offset
        return self

    def encode(self, table: Table) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(matrix, observed_mask)`` both of shape ``(rows, width)``."""
        if self.codecs_ is None:
            raise RuntimeError("TableEncoder is not fitted; call fit() first")
        n = table.num_rows
        matrix = np.zeros((n, self.width_))
        mask = np.zeros((n, self.width_), dtype=bool)
        for codec in self.codecs_:
            column = table.column(codec.name)
            for i, value in enumerate(column):
                if is_missing(value):
                    continue
                sl = slice(codec.start, codec.start + codec.width)
                if codec.kind == ColumnType.NUMERIC:
                    numeric = coerce_numeric(value)
                    if numeric is None:
                        continue
                    matrix[i, codec.start] = (numeric - codec.mean) / codec.std
                    mask[i, sl] = True
                else:
                    try:
                        index = codec.categories.index(str(value))
                    except ValueError:
                        continue  # unseen category: leave unobserved
                    matrix[i, codec.start + index] = 1.0
                    mask[i, sl] = True
        return matrix, mask

    def decode_cell(self, row_vector: np.ndarray, column: str) -> object:
        """Decode one column's value from an encoded row vector."""
        codec = self._codec(column)
        sl = slice(codec.start, codec.start + codec.width)
        if codec.kind == ColumnType.NUMERIC:
            return float(row_vector[codec.start] * codec.std + codec.mean)
        if not codec.categories:
            return None
        return codec.categories[int(np.argmax(row_vector[sl]))]

    def column_slice(self, column: str) -> slice:
        codec = self._codec(column)
        return slice(codec.start, codec.start + codec.width)

    def column_kind(self, column: str) -> ColumnType:
        return self._codec(column).kind

    def _codec(self, column: str) -> _ColumnCodec:
        if self.codecs_ is None:
            raise RuntimeError("TableEncoder is not fitted; call fit() first")
        for codec in self.codecs_:
            if codec.name == column:
                return codec
        raise KeyError(f"column {column!r} was not fitted")

    @property
    def columns(self) -> list[str]:
        if self.codecs_ is None:
            raise RuntimeError("TableEncoder is not fitted; call fit() first")
        return [c.name for c in self.codecs_]
