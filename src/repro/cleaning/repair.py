"""Constraint-based repair: minimal FD repair (paper Section 5.3 mentions
"non-probabilistic (such as minimal FD repair)" solutions).

For every FD ``lhs → rhs`` and every LHS group with conflicting RHS values,
the minority values are rewritten to the group's majority value (cost =
number of changed cells, which majority voting minimises per group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dependencies import FunctionalDependency
from repro.data.table import Table
from repro.data.types import is_missing


@dataclass(frozen=True)
class Repair:
    """One repaired cell."""

    row: int
    column: str
    old_value: object
    new_value: object
    reason: str


@dataclass
class RepairReport:
    repairs: list[Repair] = field(default_factory=list)

    def cells(self) -> set[tuple[int, str]]:
        return {(r.row, r.column) for r in self.repairs}

    def __len__(self) -> int:
        return len(self.repairs)


class FDRepairer:
    """Majority-vote minimal repair for a set of functional dependencies.

    ``max_passes`` > 1 lets repairs of one FD re-trigger checks of another
    (e.g. repairing ``dept_id`` can change which ``dept_name`` group a row
    belongs to).
    """

    def __init__(self, fds: list[FunctionalDependency], max_passes: int = 3) -> None:
        if not fds:
            raise ValueError("FDRepairer needs at least one FD")
        self.fds = list(fds)
        self.max_passes = max_passes

    def repair(self, table: Table) -> tuple[Table, RepairReport]:
        """Return ``(repaired_copy, report)``; the input is untouched."""
        repaired = table.copy(f"{table.name}_repaired")
        report = RepairReport()
        for _ in range(self.max_passes):
            changed = False
            for fd in self.fds:
                changed |= self._repair_fd(repaired, fd, report)
            if not changed:
                break
        return repaired, report

    def _repair_fd(
        self, table: Table, fd: FunctionalDependency, report: RepairReport
    ) -> bool:
        groups: dict[tuple[object, ...], list[int]] = {}
        for i in range(table.num_rows):
            key = tuple(table.cell(i, c) for c in fd.lhs)
            if any(is_missing(v) for v in key) or is_missing(table.cell(i, fd.rhs)):
                continue
            groups.setdefault(key, []).append(i)
        changed = False
        for key, rows in groups.items():
            counts: dict[object, int] = {}
            for row in rows:
                value = table.cell(row, fd.rhs)
                counts[value] = counts.get(value, 0) + 1
            if len(counts) <= 1:
                continue
            # Majority value; deterministic tie-break by string form.
            majority = max(counts.items(), key=lambda kv: (kv[1], str(kv[0])))[0]
            for row in rows:
                value = table.cell(row, fd.rhs)
                if value != majority:
                    table.set_cell(row, fd.rhs, majority)
                    report.repairs.append(
                        Repair(row, fd.rhs, value, majority, f"fd:{fd}")
                    )
                    changed = True
        return changed


def repair_quality(
    report: RepairReport,
    truth: Table,
    corrupted_cells: set[tuple[int, str]],
) -> dict[str, float]:
    """Score a repair run against ground truth.

    * precision — repaired cells that were actually corrupted AND restored
      to the true value;
    * recall — corrupted cells that got correctly restored.
    """
    correct = 0
    for repair in report.repairs:
        if (repair.row, repair.column) in corrupted_cells:
            if repair.new_value == truth.cell(repair.row, repair.column):
                correct += 1
    n_repairs = len(report.repairs)
    precision = correct / n_repairs if n_repairs else 0.0
    recall = correct / len(corrupted_cells) if corrupted_cells else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1, "repairs": float(n_repairs)}
