"""Knowledge fusion via treat-as-missing + imputation (paper Section 5.3).

"In the presence of conflicting values, treat them as missing and identify
the most plausible predicted values."  Conflicts are detected per FD group
or per entity cluster; conflicting cells are blanked and handed to any
imputer (typically the DAE), whose predictions resolve the conflict from
relation-level patterns.
"""

from __future__ import annotations

from repro.cleaning.imputation import _BaseImputer
from repro.data.dependencies import FunctionalDependency
from repro.data.table import Table
from repro.data.types import is_missing


def blank_conflicts(
    table: Table, fds: list[FunctionalDependency]
) -> tuple[Table, set[tuple[int, str]]]:
    """Null out every cell participating in an FD conflict.

    Returns the blanked copy and the set of blanked (row, column) cells.
    """
    blanked = table.copy(f"{table.name}_conflicts_blanked")
    cells: set[tuple[int, str]] = set()
    for fd in fds:
        groups: dict[tuple[object, ...], list[int]] = {}
        for i in range(table.num_rows):
            key = tuple(table.cell(i, c) for c in fd.lhs)
            if any(is_missing(v) for v in key) or is_missing(table.cell(i, fd.rhs)):
                continue
            groups.setdefault(key, []).append(i)
        for rows in groups.values():
            values = {table.cell(r, fd.rhs) for r in rows}
            if len(values) <= 1:
                continue
            for row in rows:
                blanked.set_cell(row, fd.rhs, None)
                cells.add((row, fd.rhs))
    return blanked, cells


def fuse_with_imputer(
    table: Table,
    fds: list[FunctionalDependency],
    imputer: _BaseImputer,
) -> tuple[Table, set[tuple[int, str]]]:
    """Resolve FD conflicts by blanking + imputing.

    The imputer is fitted on the blanked table (conflicting evidence
    removed) and then fills the blanks.  Returns the fused table and the
    set of cells that were in conflict.
    """
    blanked, cells = blank_conflicts(table, fds)
    if not cells:
        return table.copy(f"{table.name}_fused"), cells
    fused = imputer.fit(blanked).transform(blanked)
    fused.name = f"{table.name}_fused"
    return fused, cells
