"""Data cleaning (paper Section 5.3): DAE multiple imputation and baselines,
autoencoder/statistical outlier detection, minimal FD repair, golden-record
consolidation and conflict fusion."""

from repro.cleaning.consolidation import (
    PreferenceLearner,
    consolidate_longest,
    consolidate_majority,
    value_features,
)
from repro.cleaning.encoding import TableEncoder
from repro.cleaning.fusion import blank_conflicts, fuse_with_imputer
from repro.cleaning.holistic import HolisticRepairer
from repro.cleaning.imputation import (
    DAEImputer,
    HotDeckImputer,
    KNNImputer,
    MeanModeImputer,
    MedianImputer,
    evaluate_imputation,
)
from repro.cleaning.outliers import (
    AutoencoderOutlierDetector,
    IQRDetector,
    ZScoreDetector,
    evaluate_outlier_detection,
)
from repro.cleaning.repair import FDRepairer, Repair, RepairReport, repair_quality

__all__ = [
    "TableEncoder",
    "MeanModeImputer",
    "MedianImputer",
    "HotDeckImputer",
    "KNNImputer",
    "DAEImputer",
    "evaluate_imputation",
    "AutoencoderOutlierDetector",
    "ZScoreDetector",
    "IQRDetector",
    "evaluate_outlier_detection",
    "FDRepairer",
    "HolisticRepairer",
    "Repair",
    "RepairReport",
    "repair_quality",
    "consolidate_majority",
    "consolidate_longest",
    "PreferenceLearner",
    "value_features",
    "blank_conflicts",
    "fuse_with_imputer",
]
