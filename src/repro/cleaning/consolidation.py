"""Entity consolidation — the "golden record" problem (paper Sections 4, 5.3).

Given clusters of records that refer to the same entity (ER output), pick
one value per attribute.  Two mechanisms:

* rule-based strategies (majority / longest / least-missing source), and
* :class:`PreferenceLearner` — learns the *domain expert's intrinsic
  preferences* from example choices ("John Smith" over "J Smith"), the
  interactive, preference-driven direction Section 4 sketches.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.data.types import is_missing
from repro.er.baselines import LogisticRegressionClassifier
from repro.utils.validation import check_fitted

Record = "dict[str, object]"


def consolidate_majority(cluster: list[dict[str, object]], columns: list[str]) -> dict[str, object]:
    """Golden record by per-attribute majority vote (ties → longest)."""
    golden: dict[str, object] = {}
    for column in columns:
        values = [r.get(column) for r in cluster if not is_missing(r.get(column))]
        if not values:
            golden[column] = None
            continue
        counts = Counter(str(v) for v in values)
        best = max(counts.items(), key=lambda kv: (kv[1], len(kv[0])))[0]
        golden[column] = best
    return golden


def consolidate_longest(cluster: list[dict[str, object]], columns: list[str]) -> dict[str, object]:
    """Golden record preferring the longest (most informative) string."""
    golden: dict[str, object] = {}
    for column in columns:
        values = [
            str(r.get(column)) for r in cluster if not is_missing(r.get(column))
        ]
        golden[column] = max(values, key=len) if values else None
    return golden


def value_features(value: str, alternatives: list[str]) -> list[float]:
    """Features describing a candidate value relative to its alternatives.

    Captures the signals experts implicitly use: completeness (length),
    formality (capitalisation, no abbreviation dots), frequency among the
    candidates, and token count.
    """
    length = len(value)
    max_len = max((len(v) for v in alternatives), default=1) or 1
    tokens = value.split()
    counts = Counter(alternatives)
    return [
        length / max_len,
        1.0 if value.istitle() or value[:1].isupper() else 0.0,
        1.0 if "." in value else 0.0,
        len(tokens),
        counts[value] / len(alternatives) if alternatives else 0.0,
        1.0 if any(len(t) == 1 for t in tokens) else 0.0,  # initials present
    ]


class PreferenceLearner:
    """Learn which conflicting value an expert would keep.

    Trained on example decisions: each example is (chosen_value,
    rejected_values).  Internally a pairwise preference model — logistic
    regression on feature differences — so it generalises to unseen value
    sets.
    """

    def __init__(self) -> None:
        self.model = LogisticRegressionClassifier(epochs=400)
        self.trained_: bool | None = None

    def fit(self, decisions: list[tuple[str, list[str]]]) -> "PreferenceLearner":
        """``decisions``: (winning value, losing values) tuples."""
        rows, labels = [], []
        for winner, losers in decisions:
            pool = [winner] + list(losers)
            winner_feats = np.array(value_features(winner, pool))
            for loser in losers:
                loser_feats = np.array(value_features(loser, pool))
                rows.append(winner_feats - loser_feats)
                labels.append(1)
                rows.append(loser_feats - winner_feats)
                labels.append(0)
        if not rows:
            raise ValueError("need at least one preference decision")
        self.model.fit(np.array(rows), np.array(labels))
        self.trained_ = True
        return self

    def choose(self, candidates: list[str]) -> str:
        """Pick the preferred value among ``candidates``."""
        check_fitted(self, "trained_")
        if not candidates:
            raise ValueError("no candidates to choose from")
        if len(candidates) == 1:
            return candidates[0]
        features = np.array([value_features(v, candidates) for v in candidates])
        # Score each candidate by its mean pairwise win probability.
        scores = np.zeros(len(candidates))
        for i in range(len(candidates)):
            diffs = features[i] - np.delete(features, i, axis=0)
            scores[i] = self.model.predict_proba(diffs).mean()
        return candidates[int(np.argmax(scores))]

    def consolidate(
        self, cluster: list[dict[str, object]], columns: list[str]
    ) -> dict[str, object]:
        """Golden record using the learned preference per attribute."""
        golden: dict[str, object] = {}
        for column in columns:
            values = [
                str(r.get(column)) for r in cluster if not is_missing(r.get(column))
            ]
            golden[column] = self.choose(values) if values else None
        return golden
