"""Holistic repair — combining signals probabilistically (HoloClean-lite).

The paper cites HoloClean [49] ("holistic data repairs with probabilistic
inference") as the state of the art in constraint-based cleaning.  This is
a lightweight reproduction of its core idea: instead of repairing each
signal in isolation, treat suspect cells as random variables and score
candidate values by *combining* independent evidence sources:

* **FD evidence** — how strongly the cell's LHS group supports each
  candidate (the majority signal minimal repair uses alone);
* **co-occurrence evidence** — a naive-Bayes score of the candidate given
  the row's other attribute values, estimated from the relation itself;
* **prior evidence** — the candidate's global frequency.

Suspect cells are those involved in FD violations; each is reassigned the
maximum-posterior candidate.  Compared to :class:`FDRepairer`, the extra
context lets holistic repair recover the *true* value in groups where the
corruption happens to be the majority.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.cleaning.repair import Repair, RepairReport
from repro.data.dependencies import FunctionalDependency
from repro.data.table import Table
from repro.data.types import is_missing


@dataclass
class _ColumnStatistics:
    """Frequencies needed for the naive-Bayes candidate scoring."""

    priors: Counter = field(default_factory=Counter)
    # (other_column, other_value, candidate) -> count
    cooccurrence: dict = field(default_factory=lambda: defaultdict(Counter))
    total: int = 0


class HolisticRepairer:
    """Probabilistic multi-signal repair of FD-violating cells.

    Parameters
    ----------
    fds:
        The integrity constraints whose violations define suspect cells.
    fd_weight / context_weight / prior_weight:
        Log-linear weights of the three evidence sources.
    smoothing:
        Laplace smoothing for all frequency estimates.
    """

    def __init__(
        self,
        fds: list[FunctionalDependency],
        fd_weight: float = 2.0,
        context_weight: float = 1.0,
        prior_weight: float = 0.3,
        smoothing: float = 0.5,
    ) -> None:
        if not fds:
            raise ValueError("HolisticRepairer needs at least one FD")
        self.fds = list(fds)
        self.fd_weight = fd_weight
        self.context_weight = context_weight
        self.prior_weight = prior_weight
        self.smoothing = smoothing

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def repair(self, table: Table) -> tuple[Table, RepairReport]:
        """Return ``(repaired_copy, report)``; the input is untouched."""
        repaired = table.copy(f"{table.name}_holistic")
        report = RepairReport()
        suspects = self._suspect_cells(repaired)
        if not suspects:
            return repaired, report
        statistics = self._column_statistics(repaired, {c for _, c in suspects})
        for row, column in sorted(suspects):
            current = repaired.cell(row, column)
            candidates = list(statistics[column].priors)
            if len(candidates) < 2:
                continue
            best = max(
                candidates,
                key=lambda value: self._score(repaired, row, column, value, statistics),
            )
            if best != current:
                repaired.set_cell(row, column, best)
                report.repairs.append(
                    Repair(row, column, current, best, "holistic")
                )
        return repaired, report

    # ------------------------------------------------------------------ #
    # evidence
    # ------------------------------------------------------------------ #

    def _suspect_cells(self, table: Table) -> set[tuple[int, str]]:
        suspects: set[tuple[int, str]] = set()
        for fd in self.fds:
            for row in fd.violating_rows(table):
                suspects.add((row, fd.rhs))
        return suspects

    def _column_statistics(
        self, table: Table, columns: set[str]
    ) -> dict[str, _ColumnStatistics]:
        statistics = {c: _ColumnStatistics() for c in columns}
        for i in range(table.num_rows):
            record = table.row_dict(i)
            for column in columns:
                value = record.get(column)
                if is_missing(value):
                    continue
                stats = statistics[column]
                stats.priors[value] += 1
                stats.total += 1
                for other_column, other_value in record.items():
                    if other_column == column or is_missing(other_value):
                        continue
                    stats.cooccurrence[(other_column, other_value)][value] += 1
        return statistics

    def _score(
        self,
        table: Table,
        row: int,
        column: str,
        candidate: object,
        statistics: dict[str, _ColumnStatistics],
    ) -> float:
        stats = statistics[column]
        s = self.smoothing
        domain = max(1, len(stats.priors))
        score = self.prior_weight * math.log(
            (stats.priors[candidate] + s) / (stats.total + s * domain)
        )
        # FD evidence: support of candidate within this row's LHS groups.
        for fd in self.fds:
            if fd.rhs != column:
                continue
            key = tuple(table.cell(row, c) for c in fd.lhs)
            if any(is_missing(v) for v in key):
                continue
            group_counts = Counter()
            for i in range(table.num_rows):
                if i == row:
                    continue
                if tuple(table.cell(i, c) for c in fd.lhs) == key:
                    value = table.cell(i, fd.rhs)
                    if not is_missing(value):
                        group_counts[value] += 1
            total = sum(group_counts.values())
            score += self.fd_weight * math.log(
                (group_counts[candidate] + s) / (total + s * domain)
            )
        # Context evidence: naive-Bayes over the row's other attributes.
        record = table.row_dict(row)
        fd_columns = {c for fd in self.fds for c in fd.lhs if fd.rhs == column}
        for other_column, other_value in record.items():
            if other_column == column or other_column in fd_columns:
                continue
            if is_missing(other_value):
                continue
            counts = stats.cooccurrence.get((other_column, other_value))
            if counts is None:
                continue
            total = sum(counts.values())
            score += self.context_weight * math.log(
                (counts[candidate] + s) / (total + s * domain)
            )
        return score
