"""Synthetic data generation for DC benchmarks (paper Section 6.2.3):
VAE and GAN tabular generators plus fidelity metrics."""

from repro.synth.fidelity import (
    categorical_tv_distance,
    correlation_preservation,
    fidelity_report,
    numeric_ks_statistic,
)
from repro.synth.tabular import TabularGAN, TabularVAE

__all__ = [
    "TabularVAE",
    "TabularGAN",
    "categorical_tv_distance",
    "numeric_ks_statistic",
    "correlation_preservation",
    "fidelity_report",
]
