"""Fidelity metrics for synthetic tables: does the generated data carry the
same statistical structure as the real data?"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.data.table import Table
from repro.data.types import ColumnType, coerce_numeric, is_missing


def categorical_tv_distance(real: Table, synthetic: Table, column: str) -> float:
    """Total-variation distance between the two value distributions (0..1)."""
    real_counts = real.value_counts(column)
    synthetic_counts = synthetic.value_counts(column)
    domain = set(map(str, real_counts)) | set(map(str, synthetic_counts))
    n_real = sum(real_counts.values()) or 1
    n_synth = sum(synthetic_counts.values()) or 1
    real_str = {str(k): v for k, v in real_counts.items()}
    synth_str = {str(k): v for k, v in synthetic_counts.items()}
    tv = 0.0
    for value in domain:
        tv += abs(real_str.get(value, 0) / n_real - synth_str.get(value, 0) / n_synth)
    return tv / 2.0


def numeric_ks_statistic(real: Table, synthetic: Table, column: str) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (0 = identical, 1 = disjoint)."""
    real_values = _numeric_values(real, column)
    synth_values = _numeric_values(synthetic, column)
    if not real_values or not synth_values:
        return 1.0
    return float(stats.ks_2samp(real_values, synth_values).statistic)


def correlation_preservation(
    real: Table, synthetic: Table, numeric_columns: list[str]
) -> float:
    """Mean |Δ Pearson correlation| over numeric column pairs (0 = perfect)."""
    if len(numeric_columns) < 2:
        return 0.0
    diffs = []
    for i, col_a in enumerate(numeric_columns):
        for col_b in numeric_columns[i + 1 :]:
            r_real = _pearson(real, col_a, col_b)
            r_synth = _pearson(synthetic, col_a, col_b)
            if r_real is None or r_synth is None:
                continue
            diffs.append(abs(r_real - r_synth))
    return float(np.mean(diffs)) if diffs else 0.0


def fidelity_report(
    real: Table,
    synthetic: Table,
    numeric_columns: list[str] | None = None,
) -> dict[str, float]:
    """Aggregate fidelity summary: mean TV, mean KS, correlation drift."""
    numeric = set(numeric_columns or [])
    tv_scores, ks_scores = [], []
    for column in real.columns:
        is_numeric = column in numeric or real.column_type(column) == ColumnType.NUMERIC
        if is_numeric:
            ks_scores.append(numeric_ks_statistic(real, synthetic, column))
        else:
            tv_scores.append(categorical_tv_distance(real, synthetic, column))
    numeric_list = sorted(numeric) or [
        c for c in real.columns if real.column_type(c) == ColumnType.NUMERIC
    ]
    return {
        "mean_tv_distance": float(np.mean(tv_scores)) if tv_scores else float("nan"),
        "mean_ks_statistic": float(np.mean(ks_scores)) if ks_scores else float("nan"),
        "correlation_drift": correlation_preservation(real, synthetic, numeric_list),
    }


def _numeric_values(table: Table, column: str) -> list[float]:
    values = [coerce_numeric(v) for v in table.column(column) if not is_missing(v)]
    return [v for v in values if v is not None]


def _pearson(table: Table, col_a: str, col_b: str) -> float | None:
    rows = []
    for i in range(table.num_rows):
        a = coerce_numeric(table.cell(i, col_a))
        b = coerce_numeric(table.cell(i, col_b))
        if a is not None and b is not None:
            rows.append((a, b))
    if len(rows) < 3:
        return None
    arr = np.array(rows)
    if arr[:, 0].std() < 1e-12 or arr[:, 1].std() < 1e-12:
        return None
    return float(np.corrcoef(arr[:, 0], arr[:, 1])[0, 1])
