"""Synthetic tabular data generation with VAE and GAN (paper Section 6.2.3).

"The most promising approaches are variational auto encoders (VAE) and
Generative adversarial networks (GANs).  Both have their own pros and
cons."  Both generators share the :class:`~repro.cleaning.encoding.TableEncoder`
mixed-type encoding and decode sampled rows back to relations, so the
fidelity comparison of experiment E13 is apples-to-apples.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.encoding import TableEncoder
from repro.data.table import Table
from repro.nn.autoencoder import VAE
from repro.nn.gan import GAN
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.nn.training import iterate_minibatches
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class _TabularGenerator:
    """Shared encode/decode plumbing for the tabular generators."""

    def __init__(self, numeric_columns: list[str] | None = None) -> None:
        self.encoder = TableEncoder(numeric_columns)
        self._template: Table | None = None

    def _decode_rows(self, matrix: np.ndarray, name: str) -> Table:
        check_fitted(self, "_template")
        out = Table(name, self._template.columns)
        for row_vector in matrix:
            row = []
            for column in self._template.columns:
                value = self.encoder.decode_cell(row_vector, column)
                if isinstance(value, float):
                    value = round(value, 4)
                row.append(value)
            out.append(row)
        return out


class TabularVAE(_TabularGenerator):
    """VAE-based generator: structured latent space, distributional prior."""

    def __init__(
        self,
        hidden_dim: int = 48,
        latent_dim: int = 8,
        beta: float = 0.5,
        epochs: int = 120,
        batch_size: int = 32,
        lr: float = 5e-3,
        numeric_columns: list[str] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(numeric_columns)
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        self.beta = beta
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = ensure_rng(rng)
        self.model_: VAE | None = None

    def fit(self, table: Table) -> "TabularVAE":
        self.encoder.fit(table)
        self._template = table
        matrix, _ = self.encoder.encode(table)
        self.model_ = VAE(
            self.encoder.width_, self.hidden_dim, self.latent_dim,
            beta=self.beta, rng=self._rng,
        )
        optimizer = Adam(self.model_.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            for batch in iterate_minibatches(matrix.shape[0], self.batch_size, rng=self._rng):
                loss = self.model_.loss(Tensor(matrix[batch]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self

    def sample(self, n: int, name: str = "vae_synthetic") -> Table:
        check_fitted(self, "model_")
        return self._decode_rows(self.model_.sample(n), name)


class TabularGAN(_TabularGenerator):
    """GAN-based generator: more generic, convergence not guaranteed."""

    def __init__(
        self,
        latent_dim: int = 12,
        hidden_dim: int = 48,
        epochs: int = 120,
        batch_size: int = 32,
        lr: float = 1e-3,
        numeric_columns: list[str] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(numeric_columns)
        self.latent_dim = latent_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self._rng = ensure_rng(rng)
        self.model_: GAN | None = None
        self.history_: dict[str, list[float]] | None = None

    def fit(self, table: Table) -> "TabularGAN":
        self.encoder.fit(table)
        self._template = table
        matrix, _ = self.encoder.encode(table)
        self.model_ = GAN(
            self.encoder.width_, latent_dim=self.latent_dim,
            hidden_dim=self.hidden_dim, rng=self._rng,
        )
        self.history_ = self.model_.fit(
            matrix, epochs=self.epochs, batch_size=self.batch_size, lr=self.lr
        )
        return self

    def sample(self, n: int, name: str = "gan_synthetic") -> Table:
        check_fitted(self, "model_")
        return self._decode_rows(self.model_.generate(n), name)

    def discriminator_convergence(self) -> float:
        """Final discriminator accuracy; 0.5 means the GAN converged.

        Persistent deviation from 0.5 is the convergence trouble the paper
        flags as the GAN's weakness for DC data synthesis.
        """
        check_fitted(self, "history_")
        return float(np.mean(self.history_["d_accuracy"][-5:]))
