"""Data-curation pipeline orchestration (paper Section 3.4, Figure 1).

"THE PROMISED LAND: ... the entire data curation pipeline can be
automatically orchestrated, and the discovered datasets can be nicely
integrated and cleaned, ready for the analytics task at hand."

A :class:`CurationPipeline` chains typed steps over a shared
:class:`PipelineContext` (a keyed store of tables and artifacts).  Every
step execution runs inside a :mod:`repro.obs.trace` span, so the run
produces an auditable provenance tree: each :class:`StepReport` carries
its span (with any nested spans the step opened) alongside the detail
dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.table import Table
from repro.faults.plan import inject
from repro.faults.retry import RetryExhausted, RetryPolicy, retry_call
from repro.obs.trace import Span, span

#: Context artifact key where a checkpointing pipeline stores its progress.
CHECKPOINT_KEY = "pipeline.checkpoint"


class PipelineError(RuntimeError):
    """Raised when a step cannot run (missing inputs, bad config).

    When raised out of :meth:`CurationPipeline.run`, carries the partial
    provenance of the run: ``reports`` (every completed
    :class:`StepReport`), ``failed_step``, and — for retry-budget
    exhaustion — the ``exhausted_site``.
    """

    def __init__(
        self,
        message: str,
        *,
        reports: "list[StepReport] | None" = None,
        failed_step: str | None = None,
        exhausted_site: str | None = None,
    ) -> None:
        super().__init__(message)
        self.reports = list(reports) if reports else []
        self.failed_step = failed_step
        self.exhausted_site = exhausted_site


@dataclass
class PipelineContext:
    """Shared state flowing through the pipeline.

    ``current_step`` is maintained by :meth:`CurationPipeline.run` so that
    lookup failures name the step that asked — "no table 'x'" is useless
    in a six-step run without knowing *who* wanted 'x'.
    """

    tables: dict[str, Table] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)
    current_step: str | None = None

    def _requester(self) -> str:
        return f"step {self.current_step!r}: " if self.current_step else ""

    def table(self, key: str) -> Table:
        if key not in self.tables:
            raise PipelineError(
                f"{self._requester()}no table {key!r} in context; "
                f"available: {sorted(self.tables)}"
            )
        return self.tables[key]

    def put_table(self, key: str, table: Table) -> None:
        self.tables[key] = table

    def artifact(self, key: str) -> object:
        if key not in self.artifacts:
            raise PipelineError(
                f"{self._requester()}no artifact {key!r} in context; "
                f"available: {sorted(self.artifacts)}"
            )
        return self.artifacts[key]


@dataclass
class StepReport:
    """Provenance record of one executed step."""

    name: str
    seconds: float
    details: dict[str, object] = field(default_factory=dict)
    span: Span | None = None

    def __str__(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.name}] {self.seconds:.2f}s {detail}"


class PipelineStep:
    """Base class: subclasses set ``name`` and implement :meth:`run`."""

    name: str = "step"

    def run(self, context: PipelineContext) -> dict[str, object]:
        """Mutate ``context``; return a detail dict for the report."""
        raise NotImplementedError


def _valid_details(details: object) -> bool:
    """A step's detail payload must be a dict (or None → empty dict)."""
    return details is None or isinstance(details, dict)


class CurationPipeline:
    """An ordered sequence of curation steps with run reports.

    ``retry`` gives flaky steps a budget: a single :class:`RetryPolicy`
    applies to every step, a ``{step_name: RetryPolicy}`` dict applies
    per step (steps absent from the dict run unretried).  Retrying a step
    re-executes :meth:`PipelineStep.run` on the same context, which is
    sound because steps write their outputs by key — a re-run overwrites
    its own partial writes deterministically.  :class:`PipelineError`
    never retries: a missing input is not transient.

    ``checkpoint=True`` records progress in
    ``context.artifacts[CHECKPOINT_KEY]`` after every completed step;
    ``run(context, resume=True)`` on a context carrying a checkpoint skips
    the completed prefix and reuses its reports.
    """

    def __init__(
        self,
        steps: list[PipelineStep],
        retry: "RetryPolicy | dict[str, RetryPolicy] | None" = None,
        checkpoint: bool = False,
    ) -> None:
        if not steps:
            raise ValueError("pipeline needs at least one step")
        self.steps = list(steps)
        self.retry = retry
        self.checkpoint = checkpoint

    def _policy_for(self, step_name: str) -> "RetryPolicy | None":
        if isinstance(self.retry, dict):
            return self.retry.get(step_name)
        return self.retry

    def run(
        self, context: PipelineContext | None = None, *, resume: bool = False
    ) -> tuple[PipelineContext, list[StepReport]]:
        """Execute all steps in order; returns final context + reports.

        The whole run opens a ``pipeline`` span with one child span per
        step; each report's :attr:`StepReport.span` points at its step's
        subtree.  Spans close (and ``current_step`` resets) even when a
        step raises.  On failure the in-flight provenance is not lost:
        the raised :class:`PipelineError` carries every completed report
        and the failing step's name (retry-budget exhaustion additionally
        names the exhausted fault site).
        """
        context = context or PipelineContext()
        reports: list[StepReport] = []
        start_index = 0
        if resume:
            saved = context.artifacts.get(CHECKPOINT_KEY)
            if saved:
                start_index = min(int(saved["completed"]), len(self.steps))
                reports = list(saved["reports"])[:start_index]
        with span("pipeline", steps=len(self.steps)) as root:
            if start_index:
                root.meta["resumed_from"] = start_index
            for index, step in enumerate(self.steps):
                if index < start_index:
                    continue
                context.current_step = step.name
                site = f"pipeline.step.{step.name}"
                policy = self._policy_for(step.name)
                try:
                    with span(step.name) as step_span:
                        if policy is None:
                            inject(site)
                            details = step.run(context)
                        else:
                            details = retry_call(
                                step.run,
                                context,
                                site=site,
                                policy=policy,
                                validate=_valid_details,
                                give_up_on=(PipelineError,),
                            )
                except RetryExhausted as exc:
                    raise PipelineError(
                        f"step {step.name!r} failed permanently: {exc}",
                        reports=reports,
                        failed_step=step.name,
                        exhausted_site=exc.site,
                    ) from exc
                except PipelineError as exc:
                    exc.reports = list(reports)
                    exc.failed_step = step.name
                    raise
                finally:
                    context.current_step = None
                reports.append(
                    StepReport(step.name, step_span.duration, details or {}, span=step_span)
                )
                if self.checkpoint:
                    context.artifacts[CHECKPOINT_KEY] = {
                        "completed": index + 1,
                        "reports": list(reports),
                    }
        if self.checkpoint:
            context.artifacts.pop(CHECKPOINT_KEY, None)
        self.last_span_ = root
        return context, reports

    def describe(self) -> str:
        """One-line-per-step plan summary."""
        return "\n".join(
            f"{i + 1}. {step.name}" for i, step in enumerate(self.steps)
        )
