"""Data-curation pipeline orchestration (paper Section 3.4, Figure 1).

"THE PROMISED LAND: ... the entire data curation pipeline can be
automatically orchestrated, and the discovered datasets can be nicely
integrated and cleaned, ready for the analytics task at hand."

A :class:`CurationPipeline` chains typed steps over a shared
:class:`PipelineContext` (a keyed store of tables and artifacts).  Every
step execution is timed and logged with a detail dict, so the run produces
an auditable report — provenance for the self-driving pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data.table import Table


class PipelineError(RuntimeError):
    """Raised when a step cannot run (missing inputs, bad config)."""


@dataclass
class PipelineContext:
    """Shared state flowing through the pipeline."""

    tables: dict[str, Table] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)

    def table(self, key: str) -> Table:
        if key not in self.tables:
            raise PipelineError(
                f"no table {key!r} in context; available: {sorted(self.tables)}"
            )
        return self.tables[key]

    def put_table(self, key: str, table: Table) -> None:
        self.tables[key] = table

    def artifact(self, key: str) -> object:
        if key not in self.artifacts:
            raise PipelineError(
                f"no artifact {key!r} in context; available: {sorted(self.artifacts)}"
            )
        return self.artifacts[key]


@dataclass
class StepReport:
    """Provenance record of one executed step."""

    name: str
    seconds: float
    details: dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.name}] {self.seconds:.2f}s {detail}"


class PipelineStep:
    """Base class: subclasses set ``name`` and implement :meth:`run`."""

    name: str = "step"

    def run(self, context: PipelineContext) -> dict[str, object]:
        """Mutate ``context``; return a detail dict for the report."""
        raise NotImplementedError


class CurationPipeline:
    """An ordered sequence of curation steps with run reports."""

    def __init__(self, steps: list[PipelineStep]) -> None:
        if not steps:
            raise ValueError("pipeline needs at least one step")
        self.steps = list(steps)

    def run(self, context: PipelineContext | None = None) -> tuple[PipelineContext, list[StepReport]]:
        """Execute all steps in order; returns final context + reports."""
        context = context or PipelineContext()
        reports: list[StepReport] = []
        for step in self.steps:
            start = time.perf_counter()
            details = step.run(context)
            elapsed = time.perf_counter() - start
            reports.append(StepReport(step.name, elapsed, details or {}))
        return context, reports

    def describe(self) -> str:
        """One-line-per-step plan summary."""
        return "\n".join(
            f"{i + 1}. {step.name}" for i, step in enumerate(self.steps)
        )
