"""Data-curation pipeline orchestration (paper Section 3.4, Figure 1).

"THE PROMISED LAND: ... the entire data curation pipeline can be
automatically orchestrated, and the discovered datasets can be nicely
integrated and cleaned, ready for the analytics task at hand."

A :class:`CurationPipeline` chains typed steps over a shared
:class:`PipelineContext` (a keyed store of tables and artifacts).  Every
step execution runs inside a :mod:`repro.obs.trace` span, so the run
produces an auditable provenance tree: each :class:`StepReport` carries
its span (with any nested spans the step opened) alongside the detail
dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.table import Table
from repro.obs.trace import Span, span


class PipelineError(RuntimeError):
    """Raised when a step cannot run (missing inputs, bad config)."""


@dataclass
class PipelineContext:
    """Shared state flowing through the pipeline.

    ``current_step`` is maintained by :meth:`CurationPipeline.run` so that
    lookup failures name the step that asked — "no table 'x'" is useless
    in a six-step run without knowing *who* wanted 'x'.
    """

    tables: dict[str, Table] = field(default_factory=dict)
    artifacts: dict[str, object] = field(default_factory=dict)
    current_step: str | None = None

    def _requester(self) -> str:
        return f"step {self.current_step!r}: " if self.current_step else ""

    def table(self, key: str) -> Table:
        if key not in self.tables:
            raise PipelineError(
                f"{self._requester()}no table {key!r} in context; "
                f"available: {sorted(self.tables)}"
            )
        return self.tables[key]

    def put_table(self, key: str, table: Table) -> None:
        self.tables[key] = table

    def artifact(self, key: str) -> object:
        if key not in self.artifacts:
            raise PipelineError(
                f"{self._requester()}no artifact {key!r} in context; "
                f"available: {sorted(self.artifacts)}"
            )
        return self.artifacts[key]


@dataclass
class StepReport:
    """Provenance record of one executed step."""

    name: str
    seconds: float
    details: dict[str, object] = field(default_factory=dict)
    span: Span | None = None

    def __str__(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.name}] {self.seconds:.2f}s {detail}"


class PipelineStep:
    """Base class: subclasses set ``name`` and implement :meth:`run`."""

    name: str = "step"

    def run(self, context: PipelineContext) -> dict[str, object]:
        """Mutate ``context``; return a detail dict for the report."""
        raise NotImplementedError


class CurationPipeline:
    """An ordered sequence of curation steps with run reports."""

    def __init__(self, steps: list[PipelineStep]) -> None:
        if not steps:
            raise ValueError("pipeline needs at least one step")
        self.steps = list(steps)

    def run(self, context: PipelineContext | None = None) -> tuple[PipelineContext, list[StepReport]]:
        """Execute all steps in order; returns final context + reports.

        The whole run opens a ``pipeline`` span with one child span per
        step; each report's :attr:`StepReport.span` points at its step's
        subtree.  Spans close (and ``current_step`` resets) even when a
        step raises.
        """
        context = context or PipelineContext()
        reports: list[StepReport] = []
        with span("pipeline", steps=len(self.steps)) as root:
            for step in self.steps:
                context.current_step = step.name
                try:
                    with span(step.name) as step_span:
                        details = step.run(context)
                finally:
                    context.current_step = None
                reports.append(
                    StepReport(step.name, step_span.duration, details or {}, span=step_span)
                )
        self.last_span_ = root
        return context, reports

    def describe(self) -> str:
        """One-line-per-step plan summary."""
        return "\n".join(
            f"{i + 1}. {step.name}" for i, step in enumerate(self.steps)
        )
