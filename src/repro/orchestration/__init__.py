"""Pipeline orchestration (paper Section 3.4, Figure 1): typed curation
steps composed into an auditable end-to-end pipeline."""

from repro.orchestration.pipeline import (
    CHECKPOINT_KEY,
    CurationPipeline,
    PipelineContext,
    PipelineError,
    PipelineStep,
    StepReport,
)
from repro.orchestration.steps import (
    ConsolidateStep,
    DedupStep,
    DiscoverStep,
    EnrichStep,
    ImputeStep,
    RepairStep,
    ResolveEntitiesStep,
    SchemaMatchStep,
    TransformStep,
)

__all__ = [
    "CHECKPOINT_KEY",
    "CurationPipeline",
    "PipelineContext",
    "PipelineStep",
    "PipelineError",
    "StepReport",
    "DiscoverStep",
    "SchemaMatchStep",
    "ResolveEntitiesStep",
    "ConsolidateStep",
    "DedupStep",
    "EnrichStep",
    "RepairStep",
    "ImputeStep",
    "TransformStep",
]
