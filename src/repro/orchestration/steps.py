"""Concrete pipeline steps mirroring the Figure-1 stages: discover →
integrate (schema match, entity resolution, consolidation) → clean
(repair, impute)."""

from __future__ import annotations

from typing import Callable

from repro.cleaning.consolidation import consolidate_majority
from repro.cleaning.imputation import _BaseImputer
from repro.cleaning.repair import FDRepairer
from repro.data.dependencies import FunctionalDependency, violation_rate
from repro.data.table import Table
from repro.discovery.search import _IndexedEngine
from repro.discovery.matcher import SemanticMatcher
from repro.orchestration.pipeline import PipelineContext, PipelineError, PipelineStep


class DiscoverStep(PipelineStep):
    """Pick the most relevant tables in a lake for an analyst query."""

    name = "discover"

    def __init__(
        self,
        engine: _IndexedEngine,
        query: str,
        top_k: int = 2,
        output_keys: list[str] | None = None,
    ) -> None:
        self.engine = engine
        self.query = query
        self.top_k = top_k
        self.output_keys = output_keys

    def run(self, context: PipelineContext) -> dict[str, object]:
        hits = self.engine.search(self.query, topn=self.top_k)
        if not hits:
            raise PipelineError(f"discovery found nothing for query {self.query!r}")
        lake = context.artifact("lake")  # dict[str, Table]
        keys = self.output_keys or [f"discovered_{i}" for i in range(len(hits))]
        for key, (table_name, _) in zip(keys, hits):
            context.put_table(key, lake[table_name])
        return {"query": self.query, "hits": [name for name, _ in hits]}


class SchemaMatchStep(PipelineStep):
    """Align the columns of table B onto table A's schema."""

    name = "schema_match"

    def __init__(
        self,
        matcher: SemanticMatcher,
        input_a: str,
        input_b: str,
        output_key: str,
        threshold: float = 0.5,
    ) -> None:
        self.matcher = matcher
        self.input_a = input_a
        self.input_b = input_b
        self.output_key = output_key
        self.threshold = threshold

    def run(self, context: PipelineContext) -> dict[str, object]:
        table_a = context.table(self.input_a)
        table_b = context.table(self.input_b)
        links = self.matcher.match_tables(table_a, table_b, threshold=self.threshold)
        # Greedy 1:1 assignment best-score-first.
        mapping: dict[str, str] = {}
        used_a: set[str] = set()
        for link in links:
            if link.column_b in mapping or link.column_a in used_a:
                continue
            mapping[link.column_b] = link.column_a
            used_a.add(link.column_a)
        renamed = table_b.rename(mapping, name=f"{table_b.name}_aligned")
        context.put_table(self.output_key, renamed)
        return {"mapped_columns": len(mapping), "mapping": dict(sorted(mapping.items()))}


class ResolveEntitiesStep(PipelineStep):
    """Match records across two tables; store match pairs + clusters."""

    name = "entity_resolution"

    def __init__(
        self,
        matcher: object,  # anything with predict_proba(list[pair]) -> probs
        input_a: str,
        input_b: str,
        id_column: str,
        candidate_fn: Callable[[Table, Table], set[tuple[str, str]]] | None = None,
        threshold: float = 0.5,
        matches_key: str = "matches",
    ) -> None:
        self.matcher = matcher
        self.input_a = input_a
        self.input_b = input_b
        self.id_column = id_column
        self.candidate_fn = candidate_fn
        self.threshold = threshold
        self.matches_key = matches_key

    def run(self, context: PipelineContext) -> dict[str, object]:
        table_a = context.table(self.input_a)
        table_b = context.table(self.input_b)
        ids_a = [str(v) for v in table_a.column(self.id_column)]
        ids_b = [str(v) for v in table_b.column(self.id_column)]
        if self.candidate_fn is not None:
            candidates = sorted(self.candidate_fn(table_a, table_b))
        else:
            candidates = [(a, b) for a in ids_a for b in ids_b]
        index_a = {i: table_a.row_dict(n) for n, i in enumerate(ids_a)}
        index_b = {i: table_b.row_dict(n) for n, i in enumerate(ids_b)}
        pairs = [(index_a[a], index_b[b]) for a, b in candidates]
        probs = self.matcher.predict_proba(pairs)
        matches = {
            pair for pair, p in zip(candidates, probs) if p >= self.threshold
        }
        context.artifacts[self.matches_key] = matches
        return {
            "candidates": len(candidates),
            "matches": len(matches),
        }


class ConsolidateStep(PipelineStep):
    """Merge matched records into golden records, keep singletons."""

    name = "consolidate"

    def __init__(
        self,
        input_a: str,
        input_b: str,
        id_column: str,
        output_key: str,
        matches_key: str = "matches",
        consolidate_fn: Callable[[list[dict], list[str]], dict] = consolidate_majority,
    ) -> None:
        self.input_a = input_a
        self.input_b = input_b
        self.id_column = id_column
        self.output_key = output_key
        self.matches_key = matches_key
        self.consolidate_fn = consolidate_fn

    def run(self, context: PipelineContext) -> dict[str, object]:
        table_a = context.table(self.input_a)
        table_b = context.table(self.input_b)
        matches: set[tuple[str, str]] = context.artifact(self.matches_key)
        columns = [c for c in table_a.columns if c in set(table_b.columns)]
        matched_b = {b for _, b in matches}
        partner: dict[str, list[str]] = {}
        for a, b in matches:
            partner.setdefault(a, []).append(b)
        index_a = {
            str(table_a.cell(i, self.id_column)): table_a.row_dict(i)
            for i in range(table_a.num_rows)
        }
        index_b = {
            str(table_b.cell(i, self.id_column)): table_b.row_dict(i)
            for i in range(table_b.num_rows)
        }
        merged = Table(self.output_key, columns)
        golden_count = 0
        for id_a, record_a in index_a.items():
            cluster = [record_a] + [index_b[b] for b in partner.get(id_a, [])]
            if len(cluster) > 1:
                golden = self.consolidate_fn(cluster, columns)
                golden[self.id_column] = id_a
                golden_count += 1
            else:
                golden = record_a
            merged.append([golden.get(c) for c in columns])
        for id_b, record_b in index_b.items():
            if id_b not in matched_b:
                merged.append([record_b.get(c) for c in columns])
        context.put_table(self.output_key, merged)
        return {"rows": merged.num_rows, "golden_records": golden_count}


class RepairStep(PipelineStep):
    """Minimal FD repair of a context table."""

    name = "repair"

    def __init__(
        self, fds: list[FunctionalDependency], input_key: str, output_key: str
    ) -> None:
        self.fds = list(fds)
        self.input_key = input_key
        self.output_key = output_key

    def run(self, context: PipelineContext) -> dict[str, object]:
        table = context.table(self.input_key)
        before = violation_rate(table, self.fds)
        repaired, report = FDRepairer(self.fds).repair(table)
        after = violation_rate(repaired, self.fds)
        context.put_table(self.output_key, repaired)
        return {
            "violation_rate_before": round(before, 4),
            "violation_rate_after": round(after, 4),
            "repairs": len(report),
        }


class ImputeStep(PipelineStep):
    """Fill missing values with any imputer."""

    name = "impute"

    def __init__(
        self, imputer: _BaseImputer, input_key: str, output_key: str
    ) -> None:
        self.imputer = imputer
        self.input_key = input_key
        self.output_key = output_key

    def run(self, context: PipelineContext) -> dict[str, object]:
        table = context.table(self.input_key)
        before = table.missing_rate()
        imputed = self.imputer.fit(table).transform(table)
        context.put_table(self.output_key, imputed)
        return {
            "missing_rate_before": round(before, 4),
            "missing_rate_after": round(imputed.missing_rate(), 4),
        }


class DedupStep(PipelineStep):
    """Duplicate elimination *within* one table: cluster + consolidate.

    Uses :func:`repro.er.clustering.dedupe_table` with any pairwise scorer;
    each duplicate cluster collapses to one golden record.
    """

    name = "dedup"

    def __init__(
        self,
        input_key: str,
        output_key: str,
        id_column: str,
        score_fn: Callable[[dict, dict], float],
        threshold: float = 0.5,
        method: str = "components",
        consolidate_fn: Callable[[list[dict], list[str]], dict] = consolidate_majority,
    ) -> None:
        self.input_key = input_key
        self.output_key = output_key
        self.id_column = id_column
        self.score_fn = score_fn
        self.threshold = threshold
        self.method = method
        self.consolidate_fn = consolidate_fn

    def run(self, context: PipelineContext) -> dict[str, object]:
        from repro.er.clustering import dedupe_table

        table = context.table(self.input_key)
        clusters = dedupe_table(
            table, self.id_column, self.score_fn,
            threshold=self.threshold, method=self.method,
        )
        index = {
            str(table.cell(i, self.id_column)): table.row_dict(i)
            for i in range(table.num_rows)
        }
        out = Table(self.output_key, table.columns)
        merged = 0
        for cluster in clusters:
            records = [index[i] for i in cluster]
            if len(records) > 1:
                golden = self.consolidate_fn(records, table.columns)
                golden[self.id_column] = cluster[0]
                merged += 1
            else:
                golden = records[0]
            out.append([golden.get(c) for c in table.columns])
        context.put_table(self.output_key, out)
        return {
            "rows_before": table.num_rows,
            "rows_after": out.num_rows,
            "clusters_merged": merged,
        }


class EnrichStep(PipelineStep):
    """Data enrichment by join discovery (§3.1): find the best joinable
    column into the lake and left-join the target's columns on."""

    name = "enrich"

    def __init__(
        self,
        input_key: str,
        output_key: str,
        lake_key: str = "lake",
        min_score: float = 0.8,
    ) -> None:
        self.input_key = input_key
        self.output_key = output_key
        self.lake_key = lake_key
        self.min_score = min_score

    def run(self, context: PipelineContext) -> dict[str, object]:
        from repro.discovery.joinable import enrich, find_joinable_columns

        source = context.table(self.input_key)
        lake: dict[str, Table] = context.artifact(self.lake_key)
        targets = [t for name, t in lake.items() if name != source.name]
        candidates = find_joinable_columns(source, targets, min_score=self.min_score)
        usable = None
        for source_column, target_name, target_column, score in candidates:
            target = lake[target_name]
            add = [c for c in target.columns
                   if c != target_column and c not in source.columns]
            if add:
                usable = (source_column, target_name, target_column, score, add)
                break
        if usable is None:
            context.put_table(self.output_key, source.copy(self.output_key))
            return {"joined": False}
        source_column, target_name, target_column, score, add = usable
        enriched = enrich(
            source, lake[target_name], source_column, target_column,
            add_columns=add, name=self.output_key,
        )
        context.put_table(self.output_key, enriched)
        return {
            "joined": True,
            "via": f"{source_column}={target_name}.{target_column}",
            "score": round(score, 3),
            "added_columns": add,
        }


class TransformStep(PipelineStep):
    """Normalise one column with a synthesized string-transformation program."""

    name = "transform"

    def __init__(
        self,
        input_key: str,
        output_key: str,
        column: str,
        examples: list[tuple[str, str]],
    ) -> None:
        self.input_key = input_key
        self.output_key = output_key
        self.column = column
        self.examples = examples

    def run(self, context: PipelineContext) -> dict[str, object]:
        from repro.transform.synthesis import Synthesizer

        program = Synthesizer().synthesize(self.examples)
        if program is None:
            raise PipelineError(
                f"could not synthesize a transform for column {self.column!r}"
            )
        table = context.table(self.input_key).copy(self.output_key)
        applied = 0
        for i in range(table.num_rows):
            value = table.cell(i, self.column)
            if value is None:
                continue
            try:
                table.set_cell(i, self.column, program.evaluate(str(value)))
                applied += 1
            except ValueError:
                pass  # leave values the program does not cover
        context.put_table(self.output_key, table)
        return {"program": str(program), "applied": applied}
