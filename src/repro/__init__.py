"""AutoDC — a from-scratch reproduction of *Data Curation with Deep
Learning* (Thirumuruganathan, Tang & Ouzzani, EDBT 2020).

The package is organised by the paper's roadmap:

* :mod:`repro.nn` — the deep-learning substrate (Section 2's architecture
  zoo on a numpy autograd engine);
* :mod:`repro.text` / :mod:`repro.embeddings` — distributed representations
  of words, cells, tuples, columns, tables (Sections 2.2, 3.1);
* :mod:`repro.data` — relations, FDs, the Figure-4 heterogeneous graph,
  synthetic benchmarks and BART-style error generation;
* :mod:`repro.er` — DeepER entity resolution with LSH blocking and the
  traditional baselines (Section 5.2, Figure 5);
* :mod:`repro.discovery` — EKG, coherent-group semantic matching, dataset
  search (Section 5.1);
* :mod:`repro.cleaning` — DAE imputation, outlier detection, FD repair,
  consolidation, fusion (Section 5.3);
* :mod:`repro.transform` — FlashFill-style program synthesis, semantic
  transformations, neural program induction (Section 4);
* :mod:`repro.weak` / :mod:`repro.augment` / :mod:`repro.synth` — the
  training-data tricks of Section 6.2;
* :mod:`repro.orchestration` — the Figure-1 pipeline, composed end to end;
* :mod:`repro.serve` — deterministic online serving (micro-batching,
  caching, admission control) for ER match queries on a simulated clock;
* :mod:`repro.kernels` — batched matrix-op scoring kernels and quantized
  embedding stores, differentially proven against the per-pair loops;
* :mod:`repro.loop` — the continuous-curation loop: serving feedback →
  weak-supervision labels → background retrain → versioned registry →
  shadow scoring → deterministic promotion → hot swap;
* :mod:`repro.gateway` — the multi-tenant service front door: per-route
  admission, two-class priority scheduling, deficit-round-robin
  fairness and retrain backpressure, all on the simulated clock.

See ``examples/quickstart.py`` for a complete runnable tour.
"""

from repro import (
    augment,
    cleaning,
    data,
    discovery,
    embeddings,
    er,
    faults,
    gateway,
    kernels,
    lint,
    loop,
    nlq,
    nn,
    obs,
    orchestration,
    par,
    serve,
    synth,
    text,
    transform,
    utils,
    weak,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "text",
    "data",
    "embeddings",
    "er",
    "discovery",
    "nlq",
    "cleaning",
    "transform",
    "weak",
    "augment",
    "synth",
    "orchestration",
    "serve",
    "obs",
    "par",
    "faults",
    "gateway",
    "kernels",
    "lint",
    "loop",
    "utils",
]
