"""Text, JSON, and SARIF reporters over a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import all_rules, rule_family

__all__ = [
    "JSON_REPORT_VERSION",
    "SARIF_VERSION",
    "render_json",
    "render_sarif",
    "render_text",
]

JSON_REPORT_VERSION = 2
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, verbose_baselined: bool = False) -> str:
    """Human-readable report: one compiler-style line per finding + summary."""
    lines: list[str] = []
    for finding in result.findings:
        if finding.baselined and not verbose_baselined:
            continue
        lines.append(finding.render())
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} — {entry.message!r} "
            "no longer occurs; remove it from the baseline"
        )
    new = len(result.new_findings)
    baselined = len(result.baselined_findings)
    summary = (
        f"{result.files_checked} file(s) checked: "
        f"{new} new finding(s) "
        f"({len(result.new_errors)} error(s), {len(result.new_warnings)} warning(s)), "
        f"{baselined} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies)"
    )
    lines.append(summary if lines else f"{summary} — clean")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (schema below; covered by the lint tests).

    ::

        {
          "version": 2,
          "rules": {"RL101": "<rule name>", ...},
          "findings": [{rule, path, line, col, message, severity, baselined}, ...],
          "stale_baseline": [{rule, path, message, justification}, ...],
          "summary": {files_checked, files_reused, total, new,
                      new_errors, new_warnings, baselined, stale, ok}
        }
    """
    document = {
        "version": JSON_REPORT_VERSION,
        "rules": {rule.id: rule.name for rule in all_rules()},
        "findings": [finding.to_dict() for finding in result.findings],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "message": entry.message,
                "justification": entry.justification,
            }
            for entry in result.stale_baseline
        ],
        "summary": {
            "files_checked": result.files_checked,
            "files_reused": result.files_reused,
            "total": len(result.findings),
            "new": len(result.new_findings),
            "new_errors": len(result.new_errors),
            "new_warnings": len(result.new_warnings),
            "baselined": len(result.baselined_findings),
            "stale": len(result.stale_baseline),
            "ok": result.ok,
        },
    }
    return json.dumps(document, indent=2)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report, the interchange shape CI annotators ingest.

    One ``run`` with the rule inventory in ``tool.driver.rules`` (only
    rules that actually fired, so the document stays small) and one
    ``result`` per finding; baselined findings carry SARIF's own
    ``baselineState: "unchanged"`` so viewers fold them the same way the
    text reporter does.
    """
    rule_ids = sorted({f.rule_id for f in result.findings})
    known = {rule.id: rule for rule in all_rules()}
    rules = []
    for rule_id in rule_ids:
        rule = known.get(rule_id)
        rules.append(
            {
                "id": rule_id,
                "name": rule.name if rule else "parse-error",
                "properties": {
                    "family": rule_family(rule_id),
                    "scope": rule.scope if rule else "file",
                },
                "fullDescription": {
                    "text": " ".join(rule.description.split())
                    if rule
                    else "file could not be parsed"
                },
            }
        )
    index = {row["id"]: i for i, row in enumerate(rules)}
    results = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": index[finding.rule_id],
                "level": "error" if finding.severity == "error" else "warning",
                "baselineState": "unchanged" if finding.baselined else "new",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
