"""Text and JSON reporters over a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import all_rules

__all__ = ["JSON_REPORT_VERSION", "render_json", "render_text"]

JSON_REPORT_VERSION = 1


def render_text(result: LintResult, verbose_baselined: bool = False) -> str:
    """Human-readable report: one compiler-style line per finding + summary."""
    lines: list[str] = []
    for finding in result.findings:
        if finding.baselined and not verbose_baselined:
            continue
        lines.append(finding.render())
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} — {entry.message!r} "
            "no longer occurs; remove it from the baseline"
        )
    new = len(result.new_findings)
    baselined = len(result.baselined_findings)
    summary = (
        f"{result.files_checked} file(s) checked: "
        f"{new} new finding(s), {baselined} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies)"
    )
    lines.append(summary if lines else f"{summary} — clean")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (schema below; covered by the lint tests).

    ::

        {
          "version": 1,
          "rules": {"RL101": "<rule name>", ...},
          "findings": [{rule, path, line, col, message, baselined}, ...],
          "stale_baseline": [{rule, path, message, justification}, ...],
          "summary": {files_checked, total, new, baselined, stale, ok}
        }
    """
    document = {
        "version": JSON_REPORT_VERSION,
        "rules": {rule.id: rule.name for rule in all_rules()},
        "findings": [finding.to_dict() for finding in result.findings],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "message": entry.message,
                "justification": entry.justification,
            }
            for entry in result.stale_baseline
        ],
        "summary": {
            "files_checked": result.files_checked,
            "total": len(result.findings),
            "new": len(result.new_findings),
            "baselined": len(result.baselined_findings),
            "stale": len(result.stale_baseline),
            "ok": result.ok,
        },
    }
    return json.dumps(document, indent=2)
