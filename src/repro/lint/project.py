"""Whole-program context: import graph, call graph, and per-file facts.

The engine summarizes every collected file once (:func:`summarize_module`)
into a JSON-serializable fact dict — imports, classes, functions, the
calls each function makes, nondeterministic primitive uses, RNG
constructions, mutation sites, fault-site strings — and
:class:`ProjectContext` assembles those summaries into a conservatively
resolved program graph the ``RL11xx`` interprocedural rules
(:mod:`repro.lint.rules.interproc`) run fixpoint passes over.

Summaries (not ASTs) are what the incremental cache persists: a warm run
re-reads only facts for unchanged files, so the whole-program pass costs
one graph build instead of one parse per file.

Resolution is deliberately conservative.  A call edge exists only when
the callee provably lives in the linted tree: module-qualified direct
calls (``helper()``, ``mod.helper()``, ``pkg.mod.helper()``), imports
(including relative ones), ``self.method()`` within a class,
constructor calls (``C()`` edges to ``C.__init__``), and method calls on
locals/attributes whose class was resolved from a constructor assignment.
Everything else resolves to *no* edge — interprocedural rules may miss a
flow through an unresolvable call, but never invent one.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from pathlib import PurePosixPath

__all__ = [
    "ProjectContext",
    "SUMMARY_VERSION",
    "module_name_for",
    "summarize_module",
]

# Bump whenever the summary shape changes: invalidates every cache entry.
SUMMARY_VERSION = 1

# Nondeterministic primitives (dotted call chains after alias expansion).
# time.perf_counter / time.monotonic are deliberately exempt: they are the
# sanctioned duration-measurement idiom (they cannot leak wall-clock epoch
# into values or seeds the way time.time / time_ns do).
_NONDET_CHAINS = {
    ("time", "time"): "time.time()",
    ("time", "time_ns"): "time.time_ns()",
    ("os", "urandom"): "os.urandom()",
    ("uuid", "uuid1"): "uuid.uuid1()",
    ("uuid", "uuid4"): "uuid.uuid4()",
}

# numpy.random module-level functions that are *not* nondeterministic
# constructors of explicitly-seeded state.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

# RNG constructors whose first argument is the seed.
_RNG_CONSTRUCTORS = {"default_rng", "SeedSequence", "Random", "RandomState"}

_IN_PLACE_DATA_METHODS = {"fill", "sort", "put", "partition", "resize", "itemset"}
_OPTIMIZER_HINTS = ("optim", "adam", "sgd", "rmsprop", "momentum")


def module_name_for(display: str) -> str | None:
    """Dotted module name for a posix display path, or None.

    ``src/repro/serve/service.py`` -> ``repro.serve.service``;
    ``benchmarks/run_all.py`` -> ``benchmarks.run_all``; ``__init__.py``
    maps to its package.  Paths outside the conventional layout still get
    a best-effort name so fixture trees resolve the same way the repo does.
    """
    parts = list(PurePosixPath(display).parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or any(not p.isidentifier() for p in parts):
        return None
    return ".".join(parts)


def _attribute_chain(node: ast.AST) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class _ExprFacts:
    """Classify expressions relative to one function's scope."""

    def __init__(self, params: set[str], seed_pure: set[str], imports: dict[str, str]):
        self.params = params
        self.seed_pure = seed_pure
        self.imports = imports

    def nondet_call(self, node: ast.Call) -> str | None:
        """Nondeterministic primitive this call is (after alias expansion)."""
        chain = _attribute_chain(node.func)
        if not chain:
            return None
        head = self.imports.get(chain[0], chain[0])
        expanded = head.split(".") + chain[1:]
        if tuple(expanded[-2:]) in _NONDET_CHAINS:
            return _NONDET_CHAINS[tuple(expanded[-2:])]
        # Module-level random.* / np.random.* calls (an unseeded global
        # stream); Generator *methods* are invisible here because the
        # receiver is a variable, not the module alias.
        if expanded[0] == "random" and len(expanded) == 2:
            return f"random.{expanded[1]}()"
        if (
            len(expanded) >= 3
            and expanded[0] in ("numpy", "np")
            and expanded[-2] == "random"
            and expanded[-1] not in _NP_RANDOM_OK
        ):
            return f"np.random.{expanded[-1]}()"
        return None

    def nondet_in(self, node: ast.AST) -> str | None:
        """First nondeterministic primitive called anywhere inside ``node``."""
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                kind = self.nondet_call(child)
                if kind is not None:
                    return kind
        return None

    def classify_arg(self, node: ast.expr | None) -> str:
        """Provenance class of a call argument expression.

        ``"absent"`` / ``"none"`` / ``"literal"`` / ``"param:<name>"`` /
        ``"nondet:<what>"`` / ``"expr"`` (unknown: treated as fine).
        """
        if node is None:
            return "absent"
        if isinstance(node, ast.Constant):
            return "none" if node.value is None else "literal"
        kind = self.nondet_in(node)
        if kind is not None:
            return f"nondet:{kind}"
        names = {
            child.id
            for child in ast.walk(node)
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
        }
        via_param = names & (self.params | self.seed_pure)
        if via_param:
            # Deterministic arithmetic/wrapping over a parameter still
            # traces to that parameter (pick one stably).
            return f"param:{sorted(via_param)[0]}"
        return "expr"


def _literal_strings(node: ast.expr) -> dict[str, int] | None:
    """String keys/elements of a literal dict/tuple/list/set, with lines."""
    out: dict[str, int] = {}
    if isinstance(node, ast.Dict):
        items = node.keys
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        items = node.elts
    else:
        return None
    for item in items:
        if isinstance(item, ast.Constant) and isinstance(item.value, str):
            out[item.value] = item.lineno
        else:
            return None
    return out


def _walk_function(scope: ast.AST):
    """Walk a function body including nested defs/lambdas (facts roll up
    into the enclosing indexed function) but not nested class bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_data_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "data"


def _summarize_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    imports: dict[str, str],
    class_name: str | None,
) -> dict:
    args = fn.args
    all_args = list(args.posonlyargs) + list(args.args)
    params = [a.arg for a in all_args]
    kwonly = [a.arg for a in args.kwonlyargs]
    none_defaults: list[str] = []
    for name, default in zip(params[len(params) - len(args.defaults):], args.defaults):
        if isinstance(default, ast.Constant) and default.value is None:
            none_defaults.append(name)
    for name, default in zip(kwonly, args.kw_defaults):
        if isinstance(default, ast.Constant) and default.value is None:
            none_defaults.append(name)
    params += kwonly

    # Seed-pure local names: assigned directly from a parameter (or a
    # chain of such assignments) — lets `s = seed; default_rng(s)` trace.
    seed_pure: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in _walk_function(fn):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Name)):
                continue
            if node.value.id not in set(params) | seed_pure:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in seed_pure:
                    seed_pure.add(target.id)
                    changed = True

    facts = _ExprFacts(set(params), seed_pure, imports)
    out = {
        "line": fn.lineno,
        "params": params,
        "none_defaults": none_defaults,
        "has_varargs": bool(args.vararg or args.kwarg),
        "method": class_name is not None,
        "calls": [],
        "nondet": [],
        "rng": [],
        "mutations": [],
        "sites": [],
        "span_meta": False,
        "var_types": {},
    }

    for node in _walk_function(fn):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            iterable = node.iter
            if isinstance(iterable, (ast.Set, ast.SetComp)) or (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "set"
            ):
                line = getattr(node, "lineno", getattr(iterable, "lineno", fn.lineno))
                out["nondet"].append(["set iteration", line])
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if target is None:
                    continue
                # `self.data = ...` is the storage-owning constructor idiom
                # (Tensor.__init__); a *parameter* write always goes through
                # another receiver (`p.data = ...`, `w.data[...] = ...`).
                own_storage = (
                    _is_data_attr(target)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                )
                if not own_storage and (
                    _is_data_attr(target)
                    or (isinstance(target, ast.Subscript) and _is_data_attr(target.value))
                ):
                    out["mutations"].append([".data write", node.lineno, ""])
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "meta"
                ):
                    out["span_meta"] = True
            # Track `x = C(...)` for method-call resolution.
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                chain = _attribute_chain(node.value.func)
                if chain:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            out["var_types"][target.id] = ".".join(chain)
                        elif (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            out["var_types"]["self." + target.attr] = ".".join(chain)
        if not isinstance(node, ast.Call):
            continue

        nondet = facts.nondet_call(node)
        if nondet is not None:
            out["nondet"].append([nondet, node.lineno])

        chain = _attribute_chain(node.func)
        raw = ".".join(chain) if chain else None
        callee_last = chain[-1] if chain else None

        if callee_last in _RNG_CONSTRUCTORS:
            head = facts.imports.get(chain[0], chain[0]) if chain else ""
            expanded = head.split(".") + chain[1:]
            looks_like_rng = (
                callee_last in ("default_rng", "SeedSequence")
                or ("random" in expanded[:-1])
            )
            if looks_like_rng:
                seed_arg = node.args[0] if node.args else None
                if seed_arg is None:
                    for kw in node.keywords:
                        if kw.arg in ("seed", "entropy"):
                            seed_arg = kw.value
                            break
                out["rng"].append({
                    "line": node.lineno,
                    "callee": callee_last,
                    "arg": facts.classify_arg(seed_arg),
                    "splat": any(
                        isinstance(a, ast.Starred) for a in node.args
                    ) or any(kw.arg is None for kw in node.keywords),
                })

        if callee_last == "fit" and chain is not None and len(chain) > 1:
            out["mutations"].append([".fit() call", node.lineno, raw])
        elif callee_last == "backward" and chain is not None and len(chain) > 1:
            out["mutations"].append([".backward() call", node.lineno, raw])
        elif callee_last == "step" and chain is not None and len(chain) > 1:
            receiver = ".".join(chain[:-1]).lower()
            if any(hint in receiver for hint in _OPTIMIZER_HINTS):
                out["mutations"].append(["optimizer step", node.lineno, raw])
        elif (
            callee_last in _IN_PLACE_DATA_METHODS
            and isinstance(node.func, ast.Attribute)
            and _is_data_attr(node.func.value)
        ):
            out["mutations"].append([".data write", node.lineno, raw])

        if callee_last in ("inject", "inject_result") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                out["sites"].append([first.value, node.lineno])
        for kw in node.keywords:
            if (
                kw.arg == "site"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                out["sites"].append([kw.value.value, node.lineno])

        if callee_last == "span" and node.keywords:
            out["span_meta"] = True

        if chain:
            record = {
                "raw": raw,
                "line": node.lineno,
                "args": [facts.classify_arg(a) for a in node.args
                         if not isinstance(a, ast.Starred)],
                "kwargs": {
                    kw.arg: facts.classify_arg(kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                },
                "splat": any(isinstance(a, ast.Starred) for a in node.args)
                or any(kw.arg is None for kw in node.keywords),
            }
            out["calls"].append(record)
    return out


def summarize_module(tree: ast.Module, display: str) -> dict:
    """Extract the whole-program facts for one parsed file."""
    module = module_name_for(display)
    package = module
    if module is not None and not PurePosixPath(display).name == "__init__.py":
        package = module.rsplit(".", 1)[0] if "." in module else ""

    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    imports.setdefault(alias.name.split(".")[0], alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level and module is not None:
                anchor = (package or "").split(".") if package else []
                anchor = anchor[: len(anchor) - (node.level - 1)] if node.level > 1 else anchor
                base = ".".join([p for p in anchor if p] + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name

    classes: dict[str, dict] = {}
    functions: dict[str, dict] = {}
    site_constants: dict[str, dict[str, int]] = {}

    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            strings = _literal_strings(value)
            if strings is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    site_constants[target.id] = strings
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = _summarize_function(node, imports, None)
        elif isinstance(node, ast.ClassDef):
            info: dict = {"methods": [], "attr_types": {}, "line": node.lineno}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info["methods"].append(item.name)
                    fact = _summarize_function(item, imports, node.name)
                    functions[f"{node.name}.{item.name}"] = fact
                    for var, cls in fact["var_types"].items():
                        if var.startswith("self."):
                            info["attr_types"][var[len("self."):]] = cls
            classes[node.name] = info

    return {
        "version": SUMMARY_VERSION,
        "module": module,
        "display": display,
        "imports": imports,
        "classes": classes,
        "functions": functions,
        "site_constants": site_constants,
    }


@dataclass(frozen=True)
class CallEdge:
    """One resolved call-graph edge."""

    caller: str
    callee: str
    line: int
    record: dict


class ProjectContext:
    """The resolved whole-program graph the RL11xx rules run over.

    Function ids are ``"<module>::<func>"`` or ``"<module>::<Class>.<method>"``.
    """

    def __init__(self, summaries: dict[str, dict]):
        # display -> summary; module -> summary (first wins on collision).
        self.summaries = summaries
        self.modules: dict[str, dict] = {}
        for display in sorted(summaries):
            summary = summaries[display]
            module = summary.get("module")
            if module and module not in self.modules:
                self.modules[module] = summary
        self.functions: dict[str, dict] = {}
        for module, summary in self.modules.items():
            for fq, fact in summary["functions"].items():
                self.functions[f"{module}::{fq}"] = fact
        self.edges: dict[str, list[CallEdge]] = {}
        self.redges: dict[str, list[CallEdge]] = {}
        for fid in self.functions:
            self.edges[fid] = []
            self.redges.setdefault(fid, [])
        for fid, fact in self.functions.items():
            for record in fact["calls"]:
                callee = self._resolve_call(fid, record["raw"])
                if callee is None or callee == fid:
                    continue
                edge = CallEdge(fid, callee, record["line"], record)
                self.edges[fid].append(edge)
                self.redges.setdefault(callee, []).append(edge)

    # -- identity helpers ------------------------------------------------

    def display_of(self, fid: str) -> str:
        return self.modules[fid.split("::", 1)[0]]["display"]

    def line_of(self, fid: str) -> int:
        return self.functions[fid]["line"]

    def short(self, fid: str) -> str:
        """Human form of a function id: ``module.func``."""
        module, fq = fid.split("::", 1)
        return f"{module}.{fq}"

    def is_suppressed(self, display: str, rule_id: str, line: int) -> bool:
        summary = self.summaries.get(display)
        if summary is None:
            return False
        suppress = summary.get("suppress", {})
        file_rules = set(suppress.get("file", []))
        if "all" in file_rules or rule_id in file_rules:
            return True
        at_line = set(suppress.get("lines", {}).get(str(line), []))
        return "all" in at_line or rule_id in at_line

    # -- resolution ------------------------------------------------------

    def _lookup(self, dotted: str) -> str | None:
        """Resolve a fully-expanded dotted name to a function id."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            summary = self.modules.get(module)
            if summary is None:
                continue
            rest = parts[i:]
            if len(rest) == 1:
                name = rest[0]
                if name in summary["functions"]:
                    return f"{module}::{name}"
                if name in summary["classes"]:
                    init = f"{name}.__init__"
                    return f"{module}::{init}" if init in summary["functions"] else None
                # Re-exported name (`from x import f` in a package __init__).
                target = summary["imports"].get(name)
                if target is not None and target != dotted:
                    return self._lookup(target)
            elif len(rest) == 2:
                fq = f"{rest[0]}.{rest[1]}"
                if fq in summary["functions"]:
                    return f"{module}::{fq}"
            return None
        return None

    def _method_on(
        self, class_dotted: str, method: str, imports: dict, module: str | None = None
    ) -> str | None:
        """Resolve ``method`` on a class named by ``class_dotted`` (raw)."""
        if module is not None and "." not in class_dotted:
            info = self.modules[module]["classes"].get(class_dotted)
            if info is not None:
                if method in info.get("methods", ()):
                    return f"{module}::{class_dotted}.{method}"
                return None
        head = class_dotted.split(".")[0]
        expanded = imports.get(head, head).split(".") + class_dotted.split(".")[1:]
        return self._lookup(".".join(expanded + [method]))

    def _resolve_call(self, caller: str, raw: str) -> str | None:
        module, fq = caller.split("::", 1)
        summary = self.modules[module]
        imports = summary["imports"]
        fact = self.functions[caller]
        chain = raw.split(".")

        if chain[0] == "self" and "." in fq:
            class_name = fq.split(".", 1)[0]
            info = summary["classes"].get(class_name, {})
            if len(chain) == 2:
                if chain[1] in info.get("methods", ()):
                    return f"{module}::{class_name}.{chain[1]}"
                return None
            if len(chain) == 3:
                attr_cls = info.get("attr_types", {}).get(chain[1])
                if attr_cls is not None:
                    return self._method_on(attr_cls, chain[2], imports, module)
            return None

        if len(chain) == 1:
            name = chain[0]
            if name in summary["functions"]:
                return f"{module}::{name}"
            if name in summary["classes"]:
                init = f"{name}.__init__"
                return f"{module}::{init}" if init in summary["functions"] else None
            target = imports.get(name)
            return self._lookup(target) if target else None

        # obj.method() on a local whose class we tracked.
        var_cls = fact["var_types"].get(chain[0])
        if var_cls is not None and len(chain) == 2:
            return self._method_on(var_cls, chain[1], imports, module)

        head = imports.get(chain[0], chain[0])
        return self._lookup(".".join(head.split(".") + chain[1:]))

    # -- graph queries ---------------------------------------------------

    def reach_forward(self, roots, hit) -> dict[str, list]:
        """BFS from ``roots`` along call edges until ``hit(fid)`` matches.

        Returns ``{root: [edge, edge, ...]}`` — for each root that reaches
        a hit, the shortest witness path (list of :class:`CallEdge`).
        """
        out: dict[str, list] = {}
        for root in roots:
            if root not in self.functions:
                continue
            parent: dict[str, CallEdge] = {}
            seen = {root}
            queue: deque[str] = deque([root])
            found = None
            while queue and found is None:
                fid = queue.popleft()
                if fid != root and hit(fid):
                    found = fid
                    break
                for edge in self.edges.get(fid, ()):
                    if edge.callee not in seen:
                        seen.add(edge.callee)
                        parent[edge.callee] = edge
                        queue.append(edge.callee)
            if found is not None:
                path = []
                node = found
                while node != root:
                    edge = parent[node]
                    path.append(edge)
                    node = edge.caller
                out[root] = list(reversed(path))
        return out

    def taint_closure(self, direct: dict[str, tuple]) -> dict[str, tuple]:
        """Fixpoint backwards closure over the call graph.

        ``direct`` maps fid -> (witness line, what) for functions that are
        sources themselves.  The result adds every function with a call
        path to a source, mapped to (call line, callee fid) breadcrumbs so
        rules can reconstruct the chain.
        """
        tainted = dict(direct)
        queue = deque(direct)
        while queue:
            fid = queue.popleft()
            for edge in self.redges.get(fid, ()):
                if edge.caller not in tainted:
                    tainted[edge.caller] = (edge.line, fid)
                    queue.append(edge.caller)
        return tainted

    def chain_text(self, fid: str, tainted: dict[str, tuple]) -> str:
        """Render the breadcrumb chain from ``fid`` to its taint source."""
        hops = [self.short(fid)]
        node = fid
        for _ in range(32):
            _, nxt = tainted[node]
            if isinstance(nxt, str) and nxt in tainted:
                hops.append(self.short(nxt))
                node = nxt
            else:
                hops.append(str(nxt))
                break
        return " -> ".join(hops)
