"""Rule base classes, per-file context, and the global rule registry.

Every rule has a stable id (``RL###``) that appears in reports, in
suppression comments, and in the committed baseline; ids are never reused
once published.  Numbering groups the families:

* ``RL1xx`` — autograd contract
* ``RL2xx`` — in-place mutation
* ``RL3xx`` — determinism
* ``RL4xx`` — observability hot-path guard
* ``RL5xx`` — benchmark contract
* ``RL6xx`` — export hygiene
* ``RL7xx`` — parallel-substrate contract (explicit jobs/seed)
* ``RL8xx`` — fault-injection hygiene (no swallowed injected faults)
* ``RL9xx`` — serving read-only contract (no training in repro/serve)
* ``RL10xx`` — batched-kernel contract (no per-pair loops on hot paths)
* ``RL11xx`` — whole-program interprocedural contracts (call-graph
  taint/reachability over a :class:`~repro.lint.project.ProjectContext`)

Rules come in two scopes: ``file`` rules (:class:`Rule`) see one parsed
file at a time via :class:`FileContext`; ``project`` rules
(:class:`ProjectRule`) run once per lint invocation over the whole-program
:class:`~repro.lint.project.ProjectContext` the engine builds from every
collected file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.findings import SEVERITIES, Finding
from repro.lint.suppress import Suppressions

__all__ = [
    "FAMILIES",
    "FileContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "registry_table",
    "rule_family",
]

# Family names keyed by the RL number's hundreds digit(s): RL302 -> 3,
# RL1104 -> 11.  RL000 is the engine's own parse-error pseudo-rule.
FAMILIES = {
    0: "engine",
    1: "autograd",
    2: "mutation",
    3: "determinism",
    4: "obs-guard",
    5: "bench-contract",
    6: "exports",
    7: "par",
    8: "faults",
    9: "serve",
    10: "kernels",
    11: "interproc",
}


def rule_family(rule_id: str) -> str:
    """Family name for a stable rule id (``"RL1104"`` -> ``"interproc"``)."""
    try:
        return FAMILIES[int(rule_id[2:]) // 100]
    except (KeyError, ValueError):
        return "unknown"


@dataclass
class FileContext:
    """Everything a file-scope rule may inspect about one source file.

    ``display`` is the posix-style path used in reports and baseline
    fingerprints (relative to the lint invocation root when possible, so
    fingerprints are stable across checkouts).
    """

    path: Path
    display: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    root: Path | None = None
    _sibling_cache: dict = field(default_factory=dict)

    def finding(self, rule_id: str, node: ast.AST | None, message: str) -> Finding:
        """Build a finding anchored at ``node`` (module level when None)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(rule_id=rule_id, path=self.display, line=line, col=col + 1, message=message)

    def sibling_tree(self, name: str) -> ast.Module | None:
        """Parse (and cache) a file next to this one; None when unreadable.

        Cross-file rules (e.g. the bench-registration check) use this to
        look at a neighbour without the engine having to lint it.
        """
        if name not in self._sibling_cache:
            sibling = self.path.parent / name
            try:
                self._sibling_cache[name] = ast.parse(sibling.read_text())
            except (OSError, SyntaxError, ValueError):
                self._sibling_cache[name] = None
        return self._sibling_cache[name]


class Rule:
    """Base class for file-scope lint rules.

    Subclasses set ``id``/``name``/``description`` and implement
    :meth:`check`.  ``path_markers`` scopes the rule: the rule runs only
    on files whose posix path contains at least one marker (empty means
    every file).  ``severity`` is the default severity stamped onto the
    rule's findings (a rule may override per finding via
    :meth:`Finding.with_severity`).
    """

    id: str = ""
    name: str = ""
    description: str = ""
    path_markers: tuple[str, ...] = ()
    scope: str = "file"
    severity: str = "error"

    def applies(self, display: str) -> bool:
        """Whether this rule runs on the file at ``display`` path."""
        if not self.path_markers:
            return True
        probe = "/" + display.lstrip("/")
        return any(marker in probe for marker in self.path_markers)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; must not mutate the tree."""
        raise NotImplementedError
        yield  # pragma: no cover


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules never see individual :class:`FileContext` objects; the
    engine calls :meth:`check_project` exactly once per run with the
    :class:`~repro.lint.project.ProjectContext` built from every collected
    file.  ``path_markers`` is unused (the rule decides relevance from the
    program graph itself).
    """

    scope = "project"

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings over the whole-program context."""
        raise NotImplementedError
        yield  # pragma: no cover


_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``rule_cls`` to the registry."""
    rule = rule_cls()
    if not rule.id or not rule.id.startswith("RL"):
        raise ValueError(f"rule {rule_cls.__name__} has no stable RL id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.id} has unknown severity {rule.severity!r}")
    if rule.scope not in ("file", "project"):
        raise ValueError(f"rule {rule.id} has unknown scope {rule.scope!r}")
    _RULES[rule.id] = rule
    return rule_cls


def _id_key(rule_id: str) -> tuple[int, str]:
    try:
        return (int(rule_id[2:]), rule_id)
    except ValueError:
        return (10**9, rule_id)


def all_rules() -> list[Rule]:
    """Registered rules, ordered numerically by id (RL999 before RL1001)."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES, key=_id_key)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (KeyError when unknown)."""
    return _RULES[rule_id]


def registry_table() -> list[dict]:
    """One row per registered rule: id, family, scope, severity, doc.

    This is the single source of truth the ``--rules`` CLI listing prints,
    so README's rule inventory can be regenerated instead of hand-kept.
    """
    return [
        {
            "id": rule.id,
            "family": rule_family(rule.id),
            "scope": rule.scope,
            "severity": rule.severity,
            "name": rule.name,
            "doc": " ".join(rule.description.split()),
        }
        for rule in all_rules()
    ]


def iter_findings(rules: Iterable[Rule], ctx: FileContext) -> Iterator[Finding]:
    """Run every applicable file rule over ``ctx``, filtering suppressions."""
    for rule in rules:
        if rule.scope != "file" or not rule.applies(ctx.display):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.is_suppressed(finding.rule_id, finding.line):
                continue
            # Stamp the rule's default severity onto findings that did not
            # set one explicitly (ctx.finding() always yields "error").
            if rule.severity != "error" and finding.severity == "error":
                finding = finding.with_severity(rule.severity)
            yield finding
