"""Rule base class, per-file context, and the global rule registry.

Every rule has a stable id (``RL###``) that appears in reports, in
suppression comments, and in the committed baseline; ids are never reused
once published.  Numbering groups the families:

* ``RL1xx`` — autograd contract
* ``RL2xx`` — in-place mutation
* ``RL3xx`` — determinism
* ``RL4xx`` — observability hot-path guard
* ``RL5xx`` — benchmark contract
* ``RL6xx`` — export hygiene
* ``RL7xx`` — parallel-substrate contract (explicit jobs/seed)
* ``RL8xx`` — fault-injection hygiene (no swallowed injected faults)
* ``RL9xx`` — serving read-only contract (no training in repro/serve)
* ``RL10xx`` — batched-kernel contract (no per-pair loops on hot paths)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.suppress import Suppressions

__all__ = ["FileContext", "Rule", "all_rules", "get_rule", "register"]


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file.

    ``display`` is the posix-style path used in reports and baseline
    fingerprints (relative to the lint invocation root when possible, so
    fingerprints are stable across checkouts).
    """

    path: Path
    display: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    root: Path | None = None
    _sibling_cache: dict = field(default_factory=dict)

    def finding(self, rule_id: str, node: ast.AST | None, message: str) -> Finding:
        """Build a finding anchored at ``node`` (module level when None)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(rule_id=rule_id, path=self.display, line=line, col=col + 1, message=message)

    def sibling_tree(self, name: str) -> ast.Module | None:
        """Parse (and cache) a file next to this one; None when unreadable.

        Cross-file rules (e.g. the bench-registration check) use this to
        look at a neighbour without the engine having to lint it.
        """
        if name not in self._sibling_cache:
            sibling = self.path.parent / name
            try:
                self._sibling_cache[name] = ast.parse(sibling.read_text())
            except (OSError, SyntaxError, ValueError):
                self._sibling_cache[name] = None
        return self._sibling_cache[name]


class Rule:
    """Base class for all lint rules.

    Subclasses set ``id``/``name``/``description``/``invariant`` and
    implement :meth:`check`.  ``path_markers`` scopes the rule: the rule
    runs only on files whose posix path contains at least one marker
    (empty means every file).
    """

    id: str = ""
    name: str = ""
    description: str = ""
    path_markers: tuple[str, ...] = ()

    def applies(self, display: str) -> bool:
        """Whether this rule runs on the file at ``display`` path."""
        if not self.path_markers:
            return True
        probe = "/" + display.lstrip("/")
        return any(marker in probe for marker in self.path_markers)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; must not mutate the tree."""
        raise NotImplementedError
        yield  # pragma: no cover


_RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``rule_cls`` to the registry."""
    rule = rule_cls()
    if not rule.id or not rule.id.startswith("RL"):
        raise ValueError(f"rule {rule_cls.__name__} has no stable RL id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, ordered by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (KeyError when unknown)."""
    return _RULES[rule_id]


def iter_findings(rules: Iterable[Rule], ctx: FileContext) -> Iterator[Finding]:
    """Run every applicable rule over ``ctx``, filtering suppressions."""
    for rule in rules:
        if not rule.applies(ctx.display):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressions.is_suppressed(finding.rule_id, finding.line):
                yield finding
