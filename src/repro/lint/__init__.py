"""``repro.lint`` — whole-program invariant checker for the repro stack.

Generic linters cannot see the contracts this reproduction's correctness
rests on: every autograd op needs a proper ``backward`` closure, all
randomness must flow through seeded generators, observability must stay
off the hot path unless enabled, every benchmark must honour the
``BENCH_*.json`` contract — and the cross-file versions of those
contracts (seeds laundered through helpers, serving code reaching
training functions in other modules, fault-site strings drifting from
their catalog) need a program graph, not a per-file AST walk.  This
package checks both statically (see DESIGN.md § "Static analysis") with:

* a two-phase engine (:mod:`repro.lint.engine`): a cached, parallel
  per-file pass plus a whole-program pass,
* a :class:`~repro.lint.project.ProjectContext` import/call graph built
  from per-file summaries (:mod:`repro.lint.project`),
* a rule registry with stable ``RL###`` ids, severities, and file/project
  scopes (:mod:`repro.lint.registry`),
* per-line/per-file suppressions (:mod:`repro.lint.suppress`),
* a committed baseline for deliberate exceptions (:mod:`repro.lint.baseline`),
* text, JSON, and SARIF reporters (:mod:`repro.lint.report`), and
* a CLI: ``python -m repro.lint [--format text|json|sarif] [--jobs N]
  [--changed-only] [--baseline PATH] <paths>`` (bare ``--rules`` prints
  the registry table); also installed as ``repro-lint``.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LintResult, collect_files, lint_paths
from repro.lint.findings import Finding
from repro.lint.project import ProjectContext, module_name_for, summarize_module
from repro.lint.registry import (
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
    registry_table,
    rule_family,
)
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.suppress import Suppressions, parse_suppressions

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "all_rules",
    "apply_baseline",
    "collect_files",
    "get_rule",
    "lint_paths",
    "load_baseline",
    "module_name_for",
    "parse_suppressions",
    "register",
    "registry_table",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_family",
    "summarize_module",
    "write_baseline",
]
