"""``repro.lint`` — AST-based invariant checker for the repro stack.

Generic linters cannot see the contracts this reproduction's correctness
rests on: every autograd op needs a proper ``backward`` closure, all
randomness must flow through seeded generators, observability must stay
off the hot path unless enabled, and every benchmark must honour the
``BENCH_*.json`` contract.  This package checks those invariants
statically (see DESIGN.md § "Static analysis") with:

* an AST-walking engine (:mod:`repro.lint.engine`),
* a rule registry with stable ``RL###`` ids (:mod:`repro.lint.registry`),
* per-line/per-file suppressions (:mod:`repro.lint.suppress`),
* a committed baseline for deliberate exceptions (:mod:`repro.lint.baseline`),
* text and JSON reporters (:mod:`repro.lint.report`), and
* a CLI: ``python -m repro.lint [--json] [--baseline PATH] <paths>``.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LintResult, collect_files, lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, all_rules, get_rule, register
from repro.lint.report import render_json, render_text
from repro.lint.suppress import Suppressions, parse_suppressions

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "Suppressions",
    "all_rules",
    "apply_baseline",
    "collect_files",
    "get_rule",
    "lint_paths",
    "load_baseline",
    "parse_suppressions",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
