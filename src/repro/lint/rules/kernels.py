"""Batched-kernel contract rule (RL1001).

:mod:`repro.kernels` exists because per-pair Python loops over scoring
and embedding composition dominated the serving hot path (BENCH_E17).
Once rewritten, the regression vector is *re-introduction*: a
convenience ``for pair in pairs: matcher.predict_proba([pair])`` in a
review-sized diff quietly undoes an order-of-magnitude win and no
correctness test notices (answers are identical — that is the whole
kernel contract).  So the ban is static: inside ``repro/serve/`` and
``repro/er/``, the per-element primitives

* ``predict_proba`` (pair scoring),
* ``embed`` / ``embed_columns`` / ``token_matrix`` (embedding
  composition),
* ``_pair_feature_row`` (the loop reference itself)

must not be *called* from inside a ``for``/``while`` body or a
comprehension — batch them through the kernels
(:func:`repro.kernels.features.compose_pair_features`,
:func:`repro.kernels.score.score_pairs`,
:meth:`repro.serve.index.BlockingIndex.column_rows`) or fan the batch
out with :func:`repro.par.pmap`.

Kernel call sites stay legal by construction: passing a primitive *by
reference* (``pmap(partial(_pair_feature_row, ...), pairs)``) is not a
call, the kernels package itself is outside the rule's scope, and a
nested function or lambda defined inside a loop is a definition, not a
per-iteration call.  Only the first generator's iterable of a
comprehension is evaluated once — everything else in it is per-element
and therefore checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register

__all__ = ["PerPairLoopRule"]

# Per-element primitives whose repeated invocation is the anti-pattern.
_BANNED = {
    "predict_proba": "pair scoring",
    "embed": "tuple embedding",
    "embed_columns": "attribute-embedding composition",
    "token_matrix": "token-matrix composition",
    "_pair_feature_row": "pair featurisation",
}

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _called_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


@register
class PerPairLoopRule(Rule):
    """RL1001: no per-pair loops over scoring/composition primitives."""

    id = "RL1001"
    name = "kernels-no-per-pair-loops"
    description = (
        "code under repro/serve/ and repro/er/ must not call predict_proba "
        "or embedding-composition primitives inside loops or comprehensions; "
        "per-pair Python loops are the hot-path anti-pattern repro.kernels "
        "replaced — batch through compose_pair_features/score_pairs/"
        "column_rows or repro.par.pmap instead"
    )
    path_markers = ("/repro/serve/", "/repro/er/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._scan(ctx, ctx.tree, loop_depth=0)

    def _scan(
        self, ctx: FileContext, node: ast.AST, loop_depth: int
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            yield from self._visit(ctx, child, loop_depth)

    def _visit(
        self, ctx: FileContext, node: ast.AST, loop_depth: int
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A definition inside a loop runs its body elsewhere (or never);
            # per-iteration cost restarts from zero inside it.
            yield from self._scan(ctx, node, loop_depth=0)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            yield from self._visit(ctx, node.iter, loop_depth)
            for stmt in (*node.body, *node.orelse):
                yield from self._visit(ctx, stmt, loop_depth + 1)
            yield from self._visit(ctx, node.target, loop_depth)
        elif isinstance(node, ast.While):
            yield from self._visit(ctx, node.test, loop_depth + 1)
            for stmt in (*node.body, *node.orelse):
                yield from self._visit(ctx, stmt, loop_depth + 1)
        elif isinstance(node, _COMPREHENSIONS):
            yield from self._visit_comprehension(ctx, node, loop_depth)
        else:
            if isinstance(node, ast.Call) and loop_depth > 0:
                name = _called_name(node)
                if name in _BANNED:
                    yield ctx.finding(
                        self.id, node,
                        f"per-pair {_BANNED[name]} call '{name}(...)' inside "
                        "a loop on a kernel hot path; batch it through "
                        "repro.kernels (compose_pair_features / score_pairs "
                        "/ column_rows) or repro.par.pmap",
                    )
            yield from self._scan(ctx, node, loop_depth)

    def _visit_comprehension(
        self, ctx: FileContext, node: ast.AST, loop_depth: int
    ) -> Iterator[Finding]:
        generators = node.generators
        # The first generator's iterable is evaluated once, outside the
        # implicit loop; everything else runs per element.
        yield from self._visit(ctx, generators[0].iter, loop_depth)
        inner = loop_depth + 1
        for position, generator in enumerate(generators):
            if position > 0:
                yield from self._visit(ctx, generator.iter, inner)
            for condition in generator.ifs:
                yield from self._visit(ctx, condition, inner)
        if isinstance(node, ast.DictComp):
            yield from self._visit(ctx, node.key, inner)
            yield from self._visit(ctx, node.value, inner)
        else:
            yield from self._visit(ctx, node.elt, inner)
